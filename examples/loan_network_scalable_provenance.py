"""Scalable proportional provenance on a peer-to-peer loan network.

Full proportional provenance is expensive on networks with many vertices
(Section 4.3 of the paper), so Section 5 proposes four restricted variants.
This example runs all of them on a Prosper-Loans-like network and compares
their cost and the information they retain:

* selective  — track only the top-k lenders (largest generators of funds),
* grouped    — track provenance per lender group instead of per lender,
* windowed   — exact provenance only for recently generated funds,
* budget     — at most C tracked origins per account.

Run with::

    python examples/loan_network_scalable_provenance.py
"""

from __future__ import annotations

from repro import (
    BudgetProportionalPolicy,
    GroupedProportionalPolicy,
    ProportionalSparsePolicy,
    RunConfig,
    Runner,
    SelectiveProportionalPolicy,
    WindowedProportionalPolicy,
    datasets,
)
from repro.analysis.contributors import top_receivers
from repro.metrics.memory import format_bytes, policy_memory_bytes


def main() -> None:
    network = datasets.load_preset("prosper", scale=0.15)
    print(f"network: {network}")
    borrower = top_receivers(network, 1)[0]
    print(f"analysing the account receiving the most funds: {borrower}\n")

    window = max(200, network.num_interactions // 4)
    configurations = [
        ("full proportional (sparse)", ProportionalSparsePolicy()),
        ("selective (top-10 lenders)", SelectiveProportionalPolicy.for_top_contributors(network, 10)),
        ("grouped (8 lender groups)", GroupedProportionalPolicy.round_robin(network.vertices, 8)),
        (f"windowed (W={window})", WindowedProportionalPolicy(window=window)),
        ("budget (C=20 per account)", BudgetProportionalPolicy(capacity=20)),
    ]

    header = f"{'configuration':34s} {'runtime':>9s} {'memory':>10s} {'origins@target':>15s} {'known %':>8s}"
    print(header)
    print("-" * len(header))
    for label, policy in configurations:
        result = Runner(RunConfig(dataset=network, policy=policy)).run()
        stats = result.statistics
        origins = result.origins(borrower)
        known = origins.known_total / origins.total * 100 if origins.total else 100.0
        print(
            f"{label:34s} {stats.elapsed_seconds:8.3f}s "
            f"{format_bytes(policy_memory_bytes(policy)):>10s} "
            f"{len(origins):15d} {known:7.1f}%"
        )

    print(
        "\nEach restricted variant trades provenance detail for memory: selective "
        "and grouped keep exact quantities for the tracked slots, windowing is "
        "exact for recently generated funds, and the budget variant bounds the "
        "per-account list size while attributing the remainder to an unknown origin."
    )


if __name__ == "__main__":
    main()
