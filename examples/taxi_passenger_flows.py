"""Transportation use case: where do the passengers accumulating in a zone come from?

Reproduces the analysis of Figure 2 in the paper on a synthetic NYC-taxi
network: pick the zone that receives the most passengers (the stand-in for
East Village, vertex #79 in the paper), track its buffered passenger count
after every drop-off, and show how the provenance distribution (the pie
charts of Figure 2) evolves over the day.

Run with::

    python examples/taxi_passenger_flows.py
"""

from __future__ import annotations

from repro import FifoPolicy, RunConfig, Runner, datasets
from repro.analysis.contributors import top_receivers
from repro.analysis.distribution import AccumulationTracker


def render_distribution(distribution, width: int = 40) -> str:
    """Render a provenance distribution as a small ASCII bar."""
    parts = []
    for origin, fraction in sorted(distribution.items(), key=lambda item: -item[1])[:4]:
        bar = "#" * max(1, int(round(fraction * width)))
        parts.append(f"zone {origin}: {bar} {fraction * 100:4.1f}%")
    return "\n        ".join(parts)


def main() -> None:
    network = datasets.load_preset("taxis", scale=0.2)
    print(f"network: {network}")

    # The busiest drop-off zone plays the role of East Village (#79).
    watched = top_receivers(network, 1)[0]
    print(f"watching drop-off zone {watched} (largest total passenger inflow)")

    tracker = AccumulationTracker(watched=[watched])
    Runner(
        RunConfig(dataset=network, policy=FifoPolicy(), observers=[tracker])
    ).run()

    series = tracker.series(watched)
    print(f"{len(series.points)} drop-offs delivered passengers to zone {watched}")

    # Show the accumulation at a handful of evenly spaced points in time,
    # like the pie charts of Figure 2.
    stride = max(1, len(series.points) // 6)
    for point in series.points[::stride]:
        print(
            f"\n  after interaction #{point.interaction_index} (t={point.time:.1f}): "
            f"{point.buffered_quantity:.0f} passengers buffered, "
            f"{len(point.origins)} origin zones"
        )
        print(f"        {render_distribution(point.distribution())}")

    peak = series.peak()
    print(
        f"\npeak accumulation: {peak.buffered_quantity:.0f} passengers after "
        f"interaction #{peak.interaction_index}; {series.distinct_origins()} distinct "
        f"origin zones contributed over the whole day"
    )


if __name__ == "__main__":
    main()
