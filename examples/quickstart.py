"""Quickstart: provenance tracking on a hand-built temporal interaction network.

Replays the running example of the paper (Figure 3) under several selection
policies and shows how the origin decomposition of each buffer differs, then
runs the same API on a synthetic dataset preset.  All runs go through the
:class:`repro.Runner` pipeline — the single entry point for executing
policies over datasets, presets, CSV files or raw streams.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    FifoPolicy,
    Interaction,
    LeastRecentlyBornPolicy,
    LifoPolicy,
    ProportionalSparsePolicy,
    RunConfig,
    Runner,
    TemporalInteractionNetwork,
)


def paper_running_example() -> TemporalInteractionNetwork:
    """The six interactions of Figure 3 in the paper."""
    interactions = [
        Interaction("v1", "v2", 1, 3),
        Interaction("v2", "v0", 3, 5),
        Interaction("v0", "v1", 4, 3),
        Interaction("v1", "v2", 5, 7),
        Interaction("v2", "v1", 7, 2),
        Interaction("v2", "v0", 8, 1),
    ]
    return TemporalInteractionNetwork.from_interactions(interactions, name="paper-example")


def show_policy(network: TemporalInteractionNetwork, policy) -> None:
    """Run one policy over the network and print each buffer's provenance."""
    result = Runner(RunConfig(dataset=network, policy=policy)).run()
    print(f"\n--- {policy.describe()} ---")
    for vertex in sorted(network.vertices, key=str):
        total = result.buffer_total(vertex)
        origins = result.origins(vertex)
        decomposition = ", ".join(
            f"{origin}={quantity:g}" for origin, quantity in sorted(origins.items(), key=lambda i: str(i[0]))
        )
        print(f"  B_{vertex}: total={total:g}   origins: {decomposition or '(empty)'}")


def main() -> None:
    network = paper_running_example()
    print(f"network: {network}")

    # The same quantity flow, four different provenance interpretations.
    show_policy(network, FifoPolicy())
    show_policy(network, LifoPolicy())
    show_policy(network, LeastRecentlyBornPolicy())
    show_policy(network, ProportionalSparsePolicy())

    # The same Runner scales to the synthetic dataset presets; policies can
    # be referenced by registry name and execution is batched automatically.
    result = Runner(RunConfig(dataset="taxis", scale=0.1, policy="fifo")).run()
    stats = result.statistics
    busiest, buffered = result.top_buffers(1)[0]
    print(
        f"\nprocessed {stats.interactions} taxi interactions in "
        f"{stats.elapsed_seconds:.3f}s; busiest zone is {busiest} with "
        f"{buffered:.0f} buffered passengers from "
        f"{len(result.origins(busiest))} origin zones"
    )
    for origin, quantity in result.origins(busiest).top(5):
        print(f"  {quantity:7.1f} passengers originated at zone {origin}")


if __name__ == "__main__":
    main()
