"""Financial use case: smurfing alerts on a Bitcoin-like exchange network.

Reproduces the scenario of Section 7.6 / Figure 9 of the paper: a data
analyst wants to be alerted whenever an account accumulates a significant
amount whose origins are *not* the account's direct neighbours — the
neighbours merely relay funds generated elsewhere, a pattern associated with
money-mule ("smurfing") layering.

The example runs the proportional selection policy (financial balances mix)
over a synthetic Bitcoin-like network, registers the alert rule as an engine
observer, and reports every alert with its provenance decomposition.

Run with::

    python examples/financial_fraud_alerts.py
"""

from __future__ import annotations

from repro import ProportionalSparsePolicy, RunConfig, Runner, datasets
from repro.analysis.alerts import NeighbourOriginAlertRule


def main() -> None:
    network = datasets.load_preset("bitcoin", scale=1.0)
    print(f"network: {network}")

    # Alert when a vertex buffers more than the average transfer quantity and
    # none of it originates from a direct neighbour.  (The paper uses an
    # absolute threshold of 10K BTC; the synthetic network accumulates far
    # smaller balances, so the threshold is expressed relative to the average
    # interaction quantity instead.)
    threshold = network.average_quantity()
    rule = NeighbourOriginAlertRule(quantity_threshold=threshold)

    result = Runner(
        RunConfig(dataset=network, policy=ProportionalSparsePolicy(), observers=[rule])
    ).run()
    stats = result.statistics
    print(
        f"processed {stats.interactions} transactions in {stats.elapsed_seconds:.2f}s; "
        f"alert threshold = {threshold:.1f} units"
    )

    summary = rule.summary()
    print(
        f"\n{summary['alerts']} alerts raised "
        f"({summary['few_contributor_alerts']} from fewer than 5 contributors, "
        f"{summary['many_contributor_alerts']} from many contributors)"
    )

    for alert in rule.alerts[:10]:
        top_origins = ", ".join(
            f"account {origin} ({quantity:.1f})"
            for origin, quantity in alert.origins.top(3)
        )
        kind = "FEW sources" if alert.is_few_contributors() else "many sources"
        print(
            f"  interaction #{alert.interaction_index:6d}: account {alert.vertex} "
            f"accumulated {alert.buffered_quantity:9.1f} units from "
            f"{alert.contributing_vertices} accounts [{kind}]  top: {top_origins}"
        )

    if not rule.alerts:
        print("  (no alerts at this threshold; lower it to see the mechanism)")


if __name__ == "__main__":
    main()
