"""Streaming ingestion: follow a growing CSV feed with micro-batched runs.

A producer thread appends taxi interactions to a CSV file in bursts — the
file-system stand-in for a Kafka topic or websocket feed.  The consumer
follows the file with a :class:`repro.sources.CsvTailSource` driven through
the micro-batch scheduler (bounded in-flight queue, wall-clock flushes,
periodic checkpoints), then proves two properties the streaming subsystem
guarantees:

* **equivalence** — the provenance of the streamed run is bit-identical to
  an eager run over the same interactions;
* **resumability** — a second run restores the mid-stream checkpoint and
  processes only the remainder, landing on the same provenance again.

Run with::

    PYTHONPATH=src python examples/streaming_ingest.py
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path

from repro.datasets.catalog import load_preset
from repro.runtime import RunConfig, Runner

BURSTS = 20
BURST_PAUSE_SECONDS = 0.02
IDLE_TIMEOUT_SECONDS = 1.0


def produce(path: Path, interactions, bursts: int) -> None:
    """Append interactions to ``path`` in bursts, like a live feed would."""
    chunk = max(1, len(interactions) // bursts)
    with path.open("a") as handle:
        for start in range(0, len(interactions), chunk):
            rows = interactions[start:start + chunk]
            handle.writelines(
                f"{r.source},{r.destination},{r.time!r},{r.quantity!r}\n"
                for r in rows
            )
            handle.flush()
            time.sleep(BURST_PAUSE_SECONDS)


def snapshot_dict(result):
    snapshot = result.snapshot()
    return {vertex: snapshot[vertex].as_dict() for vertex in snapshot}


def main() -> None:
    network = load_preset("taxis", scale=0.05)
    interactions = network.interactions

    with tempfile.TemporaryDirectory(prefix="repro-streaming-") as tmp:
        feed = Path(tmp) / "feed.csv"
        feed.touch()
        checkpoint = Path(tmp) / "stream.ckpt"

        producer = threading.Thread(
            target=produce, args=(feed, interactions, BURSTS), daemon=True
        )
        producer.start()

        # Follow the growing file: micro-batches of 64, at most 256
        # interactions buffered between file and policy, a checkpoint every
        # 256 processed interactions, and an idle timeout so the run ends
        # once the producer stops.
        streamed = Runner(RunConfig(
            dataset=feed,
            follow=True,
            idle_timeout=IDLE_TIMEOUT_SECONDS,
            vertex_type=int,
            policy="fifo",
            micro_batch=64,
            max_in_flight=256,
            flush_interval=0.1,
            checkpoint_path=checkpoint,
            checkpoint_every=256,
        )).run()
        producer.join()

        print(
            f"followed {streamed.statistics.interactions} interactions from "
            f"the growing feed in {streamed.scheduler_stats['batches']} "
            f"micro-batches (flushes: {streamed.scheduler_stats['flushes']})"
        )

        eager = Runner(RunConfig(dataset=network, policy="fifo")).run()
        identical = snapshot_dict(eager) == snapshot_dict(streamed)
        print(f"streamed provenance identical to the eager run: {identical}")
        # The CI streaming-smoke job runs this script as its equivalence
        # proof: a mismatch must fail the job, not just print False.
        if not identical:
            raise SystemExit("streamed provenance diverged from the eager run")

        # Interrupt-and-resume: a first run stops halfway (as if the process
        # died), leaving its checkpoint on disk; the resumed run restores the
        # engine, skips what it already processed and finishes the stream.
        half = len(interactions) // 2
        interrupted = Runner(RunConfig(
            dataset=feed,
            follow=True,
            idle_timeout=IDLE_TIMEOUT_SECONDS,
            vertex_type=int,
            policy="fifo",
            micro_batch=64,
            limit=half,
            checkpoint_path=checkpoint,
            checkpoint_every=256,
        )).run()
        print(f"interrupted a second run after "
              f"{interrupted.statistics.interactions} interactions")
        resumed = Runner(RunConfig(
            dataset=feed,
            follow=True,
            idle_timeout=IDLE_TIMEOUT_SECONDS,
            vertex_type=int,
            policy="fifo",
            micro_batch=64,
            resume_from=checkpoint,
        )).run()
        total = resumed.engine.interactions_processed
        resumed_identical = snapshot_dict(eager) == snapshot_dict(resumed)
        print(
            f"resumed run processed {resumed.statistics.interactions} new "
            f"interactions ({total} total) and reached identical provenance: "
            f"{resumed_identical}"
        )
        if not resumed_identical or total != len(interactions):
            raise SystemExit("checkpoint resume diverged from the eager run")

        zone, buffered = streamed.top_buffers(1)[0]
        origins = streamed.origins(zone)
        print(f"busiest zone {zone}: {buffered:.1f} passengers buffered from "
              f"{len(origins)} origin zones")


if __name__ == "__main__":
    main()
