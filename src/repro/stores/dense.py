"""Dense numpy backend: fixed-dimension vectors packed into row blocks.

The dense proportional policy (Algorithm 3) and the reduced-vector policies
(Sections 5.1/5.2) keep one fixed-length float64 vector per touched vertex.
Storing each vector as an individual numpy array (the seed layout) pays an
object header and an allocation per vertex; ``DenseNumpyStore`` instead
packs them as rows of contiguous blocks — the layout the paper's C
implementation uses for its SIMD-friendly vector operations.

``get`` returns a *view* of the vector's row, so the in-place numpy
arithmetic of the policies (``destination_vector += source_vector``,
``source_vector[:] = 0.0``) operates directly on the block.  Growth
*appends* a new block rather than reallocating storage, so row views handed
out earlier remain valid for the lifetime of the store — policies may hold
a view across an allocation of another key (every ``process()`` step does).
Element-wise float64 operations are bit-identical whether operands are
standalone arrays or block rows, which is what the store-equivalence tests
rely on.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import StoreConfigurationError
from repro.stores.base import ProvenanceStore, StoreStats

__all__ = ["DenseNumpyStore"]

#: Rows per storage block.  A block is allocated whole, so this bounds both
#: the allocation granularity and the slack after the final touched vertex.
_BLOCK_ROWS = 256


class DenseNumpyStore(ProvenanceStore):
    """Row-per-key storage of fixed-dimension float64 vectors."""

    def __init__(self, dimension: int, *, block_rows: int = _BLOCK_ROWS):
        if dimension < 0:
            raise StoreConfigurationError(
                f"vector dimension must be >= 0, got {dimension!r}"
            )
        if block_rows < 1:
            raise StoreConfigurationError(
                f"block_rows must be >= 1, got {block_rows!r}"
            )
        self._dimension = int(dimension)
        self._block_rows = int(block_rows)
        self._blocks: List[np.ndarray] = []
        self._rows: Dict[Hashable, int] = {}
        self._free: List[int] = []
        self._next_row = 0
        self._evictions = 0
        #: Rows held by an adopted block 0 (see :meth:`adopt_packed`);
        #: ``None`` for stores built locally.  The adopted matrix keeps its
        #: exact size while growth past it appends ordinary
        #: ``block_rows``-granularity blocks.
        self._base_rows: Optional[int] = None
        #: Opaque lifetime anchor for adopted zero-copy state: when the
        #: blocks are views into a shared-memory segment (see
        #: :meth:`adopt_packed`), this holds the segment lease so the
        #: mapping outlives every row view handed out.
        self._owner: object = None
        #: Store-owned reusable ``(dimension,)`` scratch row (see
        #: :meth:`scratch_row`); allocated on first use.
        self._scratch: Optional[np.ndarray] = None

    def scratch_row(self) -> np.ndarray:
        """A reusable ``(dimension,)`` float64 scratch row.

        The dense proportional policy stages its per-split moved amounts
        here instead of allocating a fresh array per interaction.  The
        contents are garbage between uses; the buffer never aliases a
        stored row.
        """
        scratch = self._scratch
        if scratch is None:
            scratch = self._scratch = np.empty(self._dimension, dtype=np.float64)
        return scratch

    @property
    def dimension(self) -> int:
        """Length of every stored vector."""
        return self._dimension

    # ------------------------------------------------------------------
    # row allocation
    # ------------------------------------------------------------------
    def _view(self, row: int) -> np.ndarray:
        base = self._base_rows
        if base is not None:
            if row < base:
                return self._blocks[0][row]
            block, offset = divmod(row - base, self._block_rows)
            return self._blocks[1 + block][offset]
        block, offset = divmod(row, self._block_rows)
        return self._blocks[block][offset]

    def _allocate(self, key: Hashable) -> int:
        if self._free:
            row = self._free.pop()
            self._view(row)[:] = 0.0
        else:
            row = self._next_row
            self._next_row += 1
            base = self._base_rows
            grown_blocks = (
                len(self._blocks) if base is None else len(self._blocks) - 1
            )
            grown_row = row if base is None else row - base
            if grown_row // self._block_rows >= grown_blocks:
                # Blocks are only ever appended, never reallocated: views of
                # existing rows stay valid across growth.
                self._blocks.append(
                    np.zeros((self._block_rows, self._dimension), dtype=np.float64)
                )
        self._rows[key] = row
        return row

    # ------------------------------------------------------------------
    # point access
    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        row = self._rows.get(key)
        if row is None:
            return default
        return self._view(row)

    def get_or_create(self, key: Hashable, factory: Callable[[], Any] = None) -> Any:
        """The row view of ``key``, allocating a zeroed row on miss.

        ``factory`` is accepted for interface compatibility but ignored: a
        freshly allocated row is already the zero vector the policies'
        factories would produce.
        """
        row = self._rows.get(key)
        if row is None:
            row = self._allocate(key)
        return self._view(row)

    def put(self, key: Hashable, value: Any) -> None:
        row = self._rows.get(key)
        if row is None:
            row = self._allocate(key)
        self._view(row)[:] = value

    def merge(self, key: Hashable, amount: Any) -> None:
        row = self._rows.get(key)
        if row is None:
            row = self._allocate(key)
        self._view(row)[:] += amount

    def evict(self, key: Hashable) -> Any:
        row = self._rows.pop(key, None)
        if row is None:
            return None
        value = self._view(row).copy()
        self._free.append(row)
        self._evictions += 1
        return value

    # ------------------------------------------------------------------
    # iteration / bulk state
    # ------------------------------------------------------------------
    def items(self) -> Iterable[Tuple[Hashable, Any]]:
        return ((key, self._view(row)) for key, row in self._rows.items())

    def keys(self) -> Iterable[Hashable]:
        return self._rows.keys()

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._rows

    def snapshot(self) -> Dict[Hashable, Any]:
        return {key: self._view(row).copy() for key, row in self._rows.items()}

    def restore(self, mapping: Mapping[Hashable, Any]) -> None:
        self.clear()
        for key, value in mapping.items():
            self.put(key, value)

    def clear(self) -> None:
        self._blocks = []
        self._rows = {}
        self._free = []
        self._next_row = 0
        self._base_rows = None
        self._owner = None
        self._scratch = None

    # ------------------------------------------------------------------
    # zero-copy state transfer (shared-memory shard fabric)
    # ------------------------------------------------------------------
    def pack_rows(self, out: np.ndarray) -> List[Hashable]:
        """Copy every stored vector into ``out`` row by row, densely packed.

        ``out`` must be a float64 matrix of shape ``(len(self), dimension)``
        — typically a view into a shared-memory segment.  Rows are written
        in key-insertion order and the keys are returned in that same
        order, so ``adopt_packed(keys, out)`` on another process's store
        reproduces this store's contents exactly (free-list holes are
        compacted away; only live rows travel).
        """
        for position, (key, row) in enumerate(self._rows.items()):
            out[position] = self._view(row)
        return list(self._rows)

    def adopt_packed(
        self, keys: List[Hashable], matrix: np.ndarray, owner: object = None
    ) -> None:
        """Install a packed ``(len(keys), dimension)`` matrix as the contents.

        The matrix is adopted *as is* — no copy — so passing a view into a
        shared-memory segment makes every subsequent ``get`` a zero-copy
        view into that segment.  ``owner`` keeps the segment mapping alive
        for the lifetime of the store (see :mod:`repro.runtime.shm`).
        Growth past the adopted rows appends fresh heap blocks exactly like
        a store built locally.
        """
        rows = len(keys)
        if matrix.shape != (rows, self._dimension):
            raise StoreConfigurationError(
                f"packed matrix shape {matrix.shape} does not match "
                f"{rows} keys of dimension {self._dimension}"
            )
        self.clear()
        if rows == 0:
            return
        # Block 0 is the adopted matrix at its exact size (``_base_rows``);
        # rows past it address ordinary ``block_rows``-granularity appended
        # blocks, so growing an adopted store costs the same as growing a
        # local one (not another matrix-sized allocation).
        self._base_rows = rows
        self._blocks = [matrix]
        self._rows = {key: position for position, key in enumerate(keys)}
        self._next_row = rows
        self._owner = owner

    def __getstate__(self):
        """Detach from any shared segment before pickling.

        Adopted blocks are views into memory another process manages;
        pickling materialises them into ordinary heap arrays and drops the
        (unpicklable) segment lease, so checkpoints of adopted state are
        self-contained.  Locally built stores (no lease) pickle their
        blocks as-is — no extra copy on the ordinary checkpoint paths.
        """
        state = dict(self.__dict__)
        if state.get("_owner") is not None:
            state["_owner"] = None
            state["_blocks"] = [np.array(block) for block in self._blocks]
        # The scratch row's contents are garbage between uses; dropping it
        # keeps checkpoints deterministic and lean.
        state["_scratch"] = None
        return state

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        return StoreStats(
            backend="dense",
            entries=len(self._rows),
            resident_entries=len(self._rows),
            evictions=self._evictions,
            memory_bytes=self.memory_bytes(),
        )
