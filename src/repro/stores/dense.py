"""Dense numpy backend: a CSR-style flattened vector arena.

The dense proportional policy (Algorithm 3) and the reduced-vector policies
(Sections 5.1/5.2) keep one fixed-length float64 vector per touched vertex.
Storing each vector as an individual numpy array (the seed layout) pays an
object header and an allocation per vertex; ``DenseNumpyStore`` instead
packs every live vector as a row of **one contiguous row-major
``(capacity, dimension)`` float64 arena**, addressed through a key → row
index.  This is the layout the paper's C implementation uses for its
SIMD-friendly vector operations, and it is what the fused kernels
(:mod:`repro.core.kernels`) consume directly: a base pointer plus an
``int32`` row-position array, no per-row pointer chasing.

``get`` returns a *view* of the vector's row, so the in-place numpy
arithmetic of the policies (``destination_vector += source_vector``,
``source_vector[:] = 0.0``) operates directly on the arena.  Growth
*reallocates* the arena geometrically (one memcpy, amortised O(1) per
row), which keeps the buffer contiguous but means a row view fetched
before an allocation may go stale: callers that hold views across
allocations must reserve every row first via :meth:`ensure_rows` and fetch
the views afterwards — the pattern all library policies follow.
Element-wise float64 operations are bit-identical whether operands are
standalone arrays or arena rows, which is what the store-equivalence tests
rely on.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import StoreConfigurationError
from repro.stores.base import ProvenanceStore, StoreStats

__all__ = ["DenseNumpyStore"]

#: Initial arena capacity (and minimum growth quantum) in rows.  Growth is
#: geometric past this, so the value bounds the slack of tiny stores, not
#: the reallocation count of large ones.
_BLOCK_ROWS = 256


class DenseNumpyStore(ProvenanceStore):
    """Row-per-key storage of fixed-dimension float64 vectors in one arena."""

    #: Backend label reported by :meth:`stats` (subclasses override).
    backend_name = "dense"

    def __init__(self, dimension: int, *, block_rows: int = _BLOCK_ROWS):
        if dimension < 0:
            raise StoreConfigurationError(
                f"vector dimension must be >= 0, got {dimension!r}"
            )
        if block_rows < 1:
            raise StoreConfigurationError(
                f"block_rows must be >= 1, got {block_rows!r}"
            )
        self._dimension = int(dimension)
        self._block_rows = int(block_rows)
        #: The flattened vector arena: ``(capacity, dimension)`` C-contiguous
        #: float64, or ``None`` before the first allocation.  Live rows are
        #: ``[0, _next_row)`` minus the free list.
        self._arena: Optional[np.ndarray] = None
        self._rows: Dict[Hashable, int] = {}
        self._free: List[int] = []
        self._next_row = 0
        self._evictions = 0
        #: Opaque lifetime anchor for adopted zero-copy state: when the
        #: arena is a view into a shared-memory segment (see
        #: :meth:`adopt_packed`), this holds the segment lease so the
        #: mapping outlives every row view handed out — including views
        #: fetched before a later growth detached the arena to the heap.
        self._owner: object = None
        #: Store-owned reusable ``(dimension,)`` scratch row (see
        #: :meth:`scratch_row`); allocated on first use.
        self._scratch: Optional[np.ndarray] = None

    def scratch_row(self) -> np.ndarray:
        """A reusable ``(dimension,)`` float64 scratch row.

        The dense proportional policy stages its per-split moved amounts
        here instead of allocating a fresh array per interaction.  The
        contents are garbage between uses; the buffer never aliases a
        stored row.
        """
        scratch = self._scratch
        if scratch is None:
            scratch = self._scratch = np.empty(self._dimension, dtype=np.float64)
        return scratch

    @property
    def dimension(self) -> int:
        """Length of every stored vector."""
        return self._dimension

    @property
    def arena(self) -> Optional[np.ndarray]:
        """The backing ``(capacity, dimension)`` float64 arena (live object).

        Fused kernels index rows of this buffer directly via
        :meth:`row_of` positions.  The object identity changes on growth
        reallocation — callers caching it must re-check identity after any
        allocation (the columnar mirrors do).
        """
        return self._arena

    def row_of(self, key: Hashable) -> int:
        """The arena row index of ``key`` (``KeyError`` when absent)."""
        return self._rows[key]

    def row_items(self) -> Iterable[Tuple[Hashable, int]]:
        """Live ``(key, arena row index)`` pairs in insertion order."""
        return self._rows.items()

    # ------------------------------------------------------------------
    # row allocation
    # ------------------------------------------------------------------
    def _grow(self, rows: int) -> None:
        """Reallocate the arena to hold at least ``rows`` rows.

        Geometric doubling with a ``block_rows`` floor: one zeroed
        allocation plus one memcpy of the live prefix.  Views of the old
        arena stay readable (their buffer is kept alive by the views
        themselves) but are detached from the store — hence the
        :meth:`ensure_rows`-before-fetching discipline.
        """
        arena = self._arena
        capacity = 0 if arena is None else arena.shape[0]
        if rows <= capacity:
            return
        new_capacity = max(rows, capacity * 2, self._block_rows)
        grown = np.zeros((new_capacity, self._dimension), dtype=np.float64)
        if arena is not None and self._next_row:
            grown[: self._next_row] = arena[: self._next_row]
        self._arena = grown

    def _allocate(self, key: Hashable) -> int:
        if self._free:
            row = self._free.pop()
            self._arena[row] = 0.0
        else:
            row = self._next_row
            self._grow(row + 1)
            self._next_row = row + 1
        self._rows[key] = row
        return row

    def ensure_rows(self, keys: Iterable[Hashable]) -> None:
        """Allocate a zeroed row for every missing key, fetching nothing.

        The growth-safe prelude for callers that hold row views across
        allocations: reserve *all* the rows an operation touches first
        (growth, if any, happens here), then fetch the views — none of
        them can be invalidated by the operation's own allocations.
        """
        rows = self._rows
        for key in keys:
            if key not in rows:
                self._allocate(key)

    # ------------------------------------------------------------------
    # point access
    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        row = self._rows.get(key)
        if row is None:
            return default
        return self._arena[row]

    def get_or_create(self, key: Hashable, factory: Callable[[], Any] = None) -> Any:
        """The row view of ``key``, allocating a zeroed row on miss.

        ``factory`` is accepted for interface compatibility but ignored: a
        freshly allocated row is already the zero vector the policies'
        factories would produce.
        """
        row = self._rows.get(key)
        if row is None:
            row = self._allocate(key)
        return self._arena[row]

    def put(self, key: Hashable, value: Any) -> None:
        row = self._rows.get(key)
        if row is None:
            row = self._allocate(key)
        self._arena[row] = value

    def merge(self, key: Hashable, amount: Any) -> None:
        row = self._rows.get(key)
        if row is None:
            row = self._allocate(key)
        self._arena[row] += amount

    def evict(self, key: Hashable) -> Any:
        row = self._rows.pop(key, None)
        if row is None:
            return None
        value = self._arena[row].copy()
        self._free.append(row)
        self._evictions += 1
        return value

    # ------------------------------------------------------------------
    # iteration / bulk state
    # ------------------------------------------------------------------
    def items(self) -> Iterable[Tuple[Hashable, Any]]:
        arena = self._arena
        return ((key, arena[row]) for key, row in self._rows.items())

    def keys(self) -> Iterable[Hashable]:
        return self._rows.keys()

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._rows

    def _packed(self) -> Tuple[List[Hashable], np.ndarray]:
        """A freshly packed ``(keys, matrix)`` copy of the live contents."""
        packed = np.empty((len(self._rows), self._dimension), dtype=np.float64)
        keys = self.pack_rows(packed)
        return keys, packed

    def snapshot(self) -> Dict[Hashable, Any]:
        """One vectorised arena gather instead of a copy per key.

        The returned per-key values are rows of a single freshly packed
        matrix — detached from the live arena, but sharing one allocation,
        so checkpointing a dense run no longer allocates an ndarray per
        vertex.
        """
        keys, packed = self._packed()
        return {key: packed[position] for position, key in enumerate(keys)}

    def restore(self, mapping: Mapping[Hashable, Any]) -> None:
        self.clear()
        for key, value in mapping.items():
            self.put(key, value)

    def clear(self) -> None:
        self._arena = None
        self._rows = {}
        self._free = []
        self._next_row = 0
        self._owner = None
        self._scratch = None

    # ------------------------------------------------------------------
    # zero-copy state transfer (shared-memory shard fabric, snapshots)
    # ------------------------------------------------------------------
    def pack_rows(self, out: np.ndarray) -> List[Hashable]:
        """Gather every stored vector into ``out``, densely packed.

        ``out`` must be a float64 matrix of shape ``(len(self), dimension)``
        — typically a view into a shared-memory segment.  Rows are written
        in key-insertion order with one fancy-indexed arena gather and the
        keys are returned in that same order, so ``adopt_packed(keys, out)``
        on another process's store reproduces this store's contents exactly
        (free-list holes are compacted away; only live rows travel).
        """
        keys = list(self._rows)
        if keys:
            index = np.fromiter(
                self._rows.values(), dtype=np.intp, count=len(keys)
            )
            np.take(self._arena, index, axis=0, out=out)
        return keys

    def adopt_packed(
        self, keys: List[Hashable], matrix: np.ndarray, owner: object = None
    ) -> None:
        """Install a packed ``(len(keys), dimension)`` matrix as the contents.

        The matrix is adopted *as the arena* — an O(1) pointer swap, no
        copy — so passing a view into a shared-memory segment (or a
        memory-mapped snapshot) makes every subsequent ``get`` a zero-copy
        view into that mapping.  ``owner`` keeps the mapping alive for the
        lifetime of the store (see :mod:`repro.runtime.shm`).  Growth past
        the adopted rows reallocates onto the heap like any other growth
        (the adopted buffer is left untouched from then on); a non-float64
        or non-contiguous matrix is copied once instead of adopted.
        """
        rows = len(keys)
        if matrix.shape != (rows, self._dimension):
            raise StoreConfigurationError(
                f"packed matrix shape {matrix.shape} does not match "
                f"{rows} keys of dimension {self._dimension}"
            )
        self.clear()
        if rows == 0:
            return
        if matrix.dtype != np.float64 or not matrix.flags["C_CONTIGUOUS"]:
            matrix = np.ascontiguousarray(matrix, dtype=np.float64)
            owner = None
        self._arena = matrix
        self._rows = {key: position for position, key in enumerate(keys)}
        self._next_row = rows
        self._owner = owner

    def __getstate__(self):
        """Pickle a compact packed arena, detached from any shared segment.

        The live arena may be a view into memory another process manages
        (an adopted segment, a memory-mapped snapshot) and carries capacity
        slack and free-list holes; pickling repacks the live rows into an
        exact-size heap matrix with rows renumbered ``0..n-1`` and drops
        the (unpicklable) segment lease, so checkpoints are self-contained
        and hole-free regardless of the store's history.
        """
        keys, packed = self._packed()
        state = dict(self.__dict__)
        state["_arena"] = packed
        state["_rows"] = {key: position for position, key in enumerate(keys)}
        state["_free"] = []
        state["_next_row"] = len(keys)
        state["_owner"] = None
        # The scratch row's contents are garbage between uses; dropping it
        # keeps checkpoints deterministic and lean.
        state["_scratch"] = None
        return state

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        return StoreStats(
            backend=self.backend_name,
            entries=len(self._rows),
            resident_entries=len(self._rows),
            evictions=self._evictions,
            memory_bytes=self.memory_bytes(),
        )
