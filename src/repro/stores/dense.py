"""Dense numpy backend: fixed-dimension vectors packed into row blocks.

The dense proportional policy (Algorithm 3) and the reduced-vector policies
(Sections 5.1/5.2) keep one fixed-length float64 vector per touched vertex.
Storing each vector as an individual numpy array (the seed layout) pays an
object header and an allocation per vertex; ``DenseNumpyStore`` instead
packs them as rows of contiguous blocks — the layout the paper's C
implementation uses for its SIMD-friendly vector operations.

``get`` returns a *view* of the vector's row, so the in-place numpy
arithmetic of the policies (``destination_vector += source_vector``,
``source_vector[:] = 0.0``) operates directly on the block.  Growth
*appends* a new block rather than reallocating storage, so row views handed
out earlier remain valid for the lifetime of the store — policies may hold
a view across an allocation of another key (every ``process()`` step does).
Element-wise float64 operations are bit-identical whether operands are
standalone arrays or block rows, which is what the store-equivalence tests
rely on.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, List, Mapping, Tuple

import numpy as np

from repro.exceptions import StoreConfigurationError
from repro.stores.base import ProvenanceStore, StoreStats

__all__ = ["DenseNumpyStore"]

#: Rows per storage block.  A block is allocated whole, so this bounds both
#: the allocation granularity and the slack after the final touched vertex.
_BLOCK_ROWS = 256


class DenseNumpyStore(ProvenanceStore):
    """Row-per-key storage of fixed-dimension float64 vectors."""

    def __init__(self, dimension: int, *, block_rows: int = _BLOCK_ROWS):
        if dimension < 0:
            raise StoreConfigurationError(
                f"vector dimension must be >= 0, got {dimension!r}"
            )
        if block_rows < 1:
            raise StoreConfigurationError(
                f"block_rows must be >= 1, got {block_rows!r}"
            )
        self._dimension = int(dimension)
        self._block_rows = int(block_rows)
        self._blocks: List[np.ndarray] = []
        self._rows: Dict[Hashable, int] = {}
        self._free: List[int] = []
        self._next_row = 0
        self._evictions = 0

    @property
    def dimension(self) -> int:
        """Length of every stored vector."""
        return self._dimension

    # ------------------------------------------------------------------
    # row allocation
    # ------------------------------------------------------------------
    def _view(self, row: int) -> np.ndarray:
        block, offset = divmod(row, self._block_rows)
        return self._blocks[block][offset]

    def _allocate(self, key: Hashable) -> int:
        if self._free:
            row = self._free.pop()
            self._view(row)[:] = 0.0
        else:
            row = self._next_row
            self._next_row += 1
            if row // self._block_rows >= len(self._blocks):
                # Blocks are only ever appended, never reallocated: views of
                # existing rows stay valid across growth.
                self._blocks.append(
                    np.zeros((self._block_rows, self._dimension), dtype=np.float64)
                )
        self._rows[key] = row
        return row

    # ------------------------------------------------------------------
    # point access
    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        row = self._rows.get(key)
        if row is None:
            return default
        return self._view(row)

    def get_or_create(self, key: Hashable, factory: Callable[[], Any] = None) -> Any:
        """The row view of ``key``, allocating a zeroed row on miss.

        ``factory`` is accepted for interface compatibility but ignored: a
        freshly allocated row is already the zero vector the policies'
        factories would produce.
        """
        row = self._rows.get(key)
        if row is None:
            row = self._allocate(key)
        return self._view(row)

    def put(self, key: Hashable, value: Any) -> None:
        row = self._rows.get(key)
        if row is None:
            row = self._allocate(key)
        self._view(row)[:] = value

    def merge(self, key: Hashable, amount: Any) -> None:
        row = self._rows.get(key)
        if row is None:
            row = self._allocate(key)
        self._view(row)[:] += amount

    def evict(self, key: Hashable) -> Any:
        row = self._rows.pop(key, None)
        if row is None:
            return None
        value = self._view(row).copy()
        self._free.append(row)
        self._evictions += 1
        return value

    # ------------------------------------------------------------------
    # iteration / bulk state
    # ------------------------------------------------------------------
    def items(self) -> Iterable[Tuple[Hashable, Any]]:
        return ((key, self._view(row)) for key, row in self._rows.items())

    def keys(self) -> Iterable[Hashable]:
        return self._rows.keys()

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._rows

    def snapshot(self) -> Dict[Hashable, Any]:
        return {key: self._view(row).copy() for key, row in self._rows.items()}

    def restore(self, mapping: Mapping[Hashable, Any]) -> None:
        self.clear()
        for key, value in mapping.items():
            self.put(key, value)

    def clear(self) -> None:
        self._blocks = []
        self._rows = {}
        self._free = []
        self._next_row = 0

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        return StoreStats(
            backend="dense",
            entries=len(self._rows),
            resident_entries=len(self._rows),
            evictions=self._evictions,
            memory_bytes=self.memory_bytes(),
        )
