"""Zero-copy mmap snapshot tier over the dense vector arena.

:class:`MmapDenseStore` behaves exactly like
:class:`~repro.stores.dense.DenseNumpyStore` while a run is live — same
arena layout, same row views, bit-identical arithmetic — and adds a
file-snapshot seam built on that layout:

* :meth:`snapshot_to` writes the packed arena plus its key index to one
  flat file (``tmp + fsync + os.replace``, the atomicity discipline of the
  checkpoint writer), so persisting a dense store is a single sequential
  matrix write instead of one pickled ndarray per key;
* :meth:`restore_from` memory-maps the arena region back
  **read-copy-on-write** (``numpy.memmap(mode="c")``) and adopts the
  mapping as the live arena — resume touches no vector bytes until the
  run actually writes them, and file pages are shared across concurrent
  resumes of the same snapshot.

The engine checkpointer (:mod:`repro.core.checkpoint`) routes stores of
this class through sidecar files automatically: the pickled checkpoint
carries only a content-addressed reference (CRC token) and the arena
travels in ``<checkpoint>.<role>.<crc>.arena`` next to it.

File layout (little-endian)::

    0   8   magic  b"RPRARENA"
    8   8   uint64 header length H
    16  4   uint32 CRC-32 of the arena bytes
    20  4   zero padding
    24  H   pickled header {dimension, rows, keys}
    -   -   zero padding to the next 64-byte boundary
    ..      arena bytes: rows x dimension float64, C order

Portability caveats: the arena is written in native float64/little-endian
layout and the key index is a pickle — snapshots are a checkpoint format
for same-platform resume, not an interchange format.  A mapped snapshot
must outlive the store that adopted it; deleting the file while mapped is
safe on POSIX (the mapping keeps the inode alive) but not portable.
"""

from __future__ import annotations

import os
import pickle
import zlib
from pathlib import Path
from typing import Union

import numpy as np

from repro.exceptions import CheckpointCorruptedError
from repro.stores.dense import DenseNumpyStore

__all__ = ["MmapDenseStore", "ARENA_MAGIC"]

ARENA_MAGIC = b"RPRARENA"

_HEADER_PREFIX = 24  # magic + header length + crc + padding
_ARENA_ALIGN = 64

#: Pickle protocol for the key-index header (matches the checkpoint writer).
_PROTOCOL = 4


def _arena_offset(header_len: int) -> int:
    unaligned = _HEADER_PREFIX + header_len
    return (unaligned + _ARENA_ALIGN - 1) // _ARENA_ALIGN * _ARENA_ALIGN


class MmapDenseStore(DenseNumpyStore):
    """Dense arena store with atomic file snapshots and mmap resume."""

    backend_name = "mmap"

    def __init__(self, dimension: int, *, block_rows: int = 256):
        super().__init__(dimension, block_rows=block_rows)
        #: When True, ``__getstate__`` pickles an *empty* store: the engine
        #: checkpointer sets this transiently after writing the arena to a
        #: sidecar file, so the pickled checkpoint stays small and the
        #: vector payload travels in the snapshot format instead.
        self._pickle_stub = False

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def snapshot_to(self, path: Union[str, Path]) -> dict:
        """Write the packed live contents to ``path`` atomically.

        Returns ``{"crc": <uint32>, "rows": <count>}`` — the CRC is the
        content token a checkpoint records so :meth:`restore_from` can
        reject a state/sidecar pairing broken by a crash between writes.
        """
        path = Path(path)
        keys, packed = self._packed()
        arena_bytes = packed.tobytes()
        crc = zlib.crc32(arena_bytes)
        header = pickle.dumps(
            {"dimension": self._dimension, "rows": len(keys), "keys": keys},
            protocol=_PROTOCOL,
        )
        offset = _arena_offset(len(header))
        payload = bytearray(offset + len(arena_bytes))
        payload[0:8] = ARENA_MAGIC
        payload[8:16] = len(header).to_bytes(8, "little")
        payload[16:20] = crc.to_bytes(4, "little")
        payload[_HEADER_PREFIX : _HEADER_PREFIX + len(header)] = header
        payload[offset:] = arena_bytes
        self._atomic_write(path, bytes(payload))
        return {"crc": crc, "rows": len(keys)}

    @staticmethod
    def _atomic_write(path: Path, payload: bytes) -> None:
        # Same discipline (and fault-injection seam) as the checkpoint
        # writer: a crash leaves the previous snapshot intact or a stray
        # temp sibling, never a torn file under the real name.
        from repro.runtime import faults

        torn = faults.torn_checkpoint_bytes(payload)
        if torn is not None:
            path.write_bytes(torn)
            return
        tmp_path = path.parent / f".{path.name}.tmp.{os.getpid()}"
        try:
            with tmp_path.open("wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                tmp_path.unlink()
            except OSError:
                pass
            raise

    def restore_from(
        self,
        path: Union[str, Path],
        *,
        expected_crc: Union[int, None] = None,
        verify: bool = False,
    ) -> None:
        """Adopt the snapshot at ``path`` as the live contents (zero-copy).

        The arena region is mapped read-copy-on-write: the file is never
        modified, pages are faulted in on first touch, and writes land in
        private memory.  ``expected_crc`` (the token :meth:`snapshot_to`
        returned when the snapshot was written) guards against a checkpoint
        paired with the wrong sidecar generation; ``verify=True``
        additionally checksums the arena bytes themselves, trading a full
        sequential read for bit-level certainty.

        Raises :class:`~repro.exceptions.CheckpointCorruptedError` for a
        missing, torn, truncated or mismatched snapshot.
        """
        path = Path(path)
        try:
            size = path.stat().st_size
            with path.open("rb") as handle:
                prefix = handle.read(_HEADER_PREFIX)
                if len(prefix) < _HEADER_PREFIX or prefix[0:8] != ARENA_MAGIC:
                    raise CheckpointCorruptedError(
                        path, "not an arena snapshot (bad magic)"
                    )
                header_len = int.from_bytes(prefix[8:16], "little")
                stored_crc = int.from_bytes(prefix[16:20], "little")
                header_bytes = handle.read(header_len)
        except OSError as error:
            raise CheckpointCorruptedError(
                path, f"{type(error).__name__}: {error}"
            ) from error
        if len(header_bytes) < header_len:
            raise CheckpointCorruptedError(path, "truncated snapshot header")
        try:
            header = pickle.loads(header_bytes)
            dimension = int(header["dimension"])
            rows = int(header["rows"])
            keys = header["keys"]
        except Exception as error:
            raise CheckpointCorruptedError(
                path, f"unreadable snapshot header ({type(error).__name__}: {error})"
            ) from error
        if dimension != self._dimension:
            raise CheckpointCorruptedError(
                path,
                f"snapshot dimension {dimension} does not match store "
                f"dimension {self._dimension}",
            )
        if len(keys) != rows:
            raise CheckpointCorruptedError(path, "snapshot key index is inconsistent")
        offset = _arena_offset(header_len)
        expected_size = offset + rows * dimension * 8
        if size != expected_size:
            raise CheckpointCorruptedError(
                path,
                f"truncated arena snapshot ({size} bytes, expected {expected_size})",
            )
        if expected_crc is not None and stored_crc != expected_crc:
            raise CheckpointCorruptedError(
                path,
                "arena sidecar does not match the checkpoint that references "
                f"it (crc {stored_crc:#010x}, expected {expected_crc:#010x})",
            )
        if rows == 0:
            self.clear()
            return
        matrix = np.memmap(
            path, dtype=np.float64, mode="c", offset=offset, shape=(rows, dimension)
        )
        if verify and zlib.crc32(matrix.tobytes()) != stored_crc:
            raise CheckpointCorruptedError(path, "arena bytes fail their checksum")
        # mode="c" keeps the file read-only while making the mapping
        # writable, so the adopted arena supports in-place arithmetic; the
        # memmap object itself is the arena, keeping the mapping alive.
        self.adopt_packed(keys, matrix)

    # ------------------------------------------------------------------
    # pickling
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Self-contained by default; an empty stub in sidecar mode.

        Outside the engine checkpointer this store pickles exactly like
        its parent (full packed arena — shard workers and streaming
        manifests stay self-contained).  While ``_pickle_stub`` is set the
        vector payload is omitted entirely: the checkpointer has already
        written it through :meth:`snapshot_to`.
        """
        if self._pickle_stub:
            state = dict(self.__dict__)
            state.update(
                _arena=None,
                _rows={},
                _free=[],
                _next_row=0,
                _owner=None,
                _scratch=None,
                _pickle_stub=False,
            )
            return state
        state = super().__getstate__()
        state["_pickle_stub"] = False
        return state
