"""Pluggable provenance stores: where a policy's annotation state lives.

The selection policies of the paper differ precisely in how much annotation
state they keep per vertex buffer; this package decouples that state from
the policies through the :class:`ProvenanceStore` interface and three
interchangeable backends:

* :class:`DictStore` — plain in-memory dicts (the seed behaviour, default);
* :class:`DenseNumpyStore` — fixed-dimension vectors packed as rows of one
  contiguous arena matrix (backs the dense proportional policy and feeds
  the fused kernels directly);
* :class:`MmapDenseStore` — the dense arena plus zero-copy file snapshots:
  checkpoints write the arena to a sidecar file, resume memory-maps it
  back copy-on-write;
* :class:`SqliteStore` — bounded resident entries with LRU spill to an
  SQLite file, enabling larger-than-memory runs.

Select a backend per run with ``RunConfig(store="sqlite")``, per policy
with ``FifoPolicy(store="sqlite")``, or globally via the
``REPRO_DEFAULT_STORE`` environment variable.  All backends are equivalence
-tested to produce bit-identical provenance.
"""

from repro.stores.base import ProvenanceStore, StoreStats, merge_store_stats
from repro.stores.dense import DenseNumpyStore
from repro.stores.dict_store import DictStore
from repro.stores.mmap_store import MmapDenseStore
from repro.stores.spec import (
    DEFAULT_STORE_ENV,
    StoreSpec,
    available_store_backends,
    resolve_store_spec,
)
from repro.stores.sqlite_store import DEFAULT_HOT_CAPACITY, SqliteStore

__all__ = [
    "ProvenanceStore",
    "StoreStats",
    "merge_store_stats",
    "DictStore",
    "DenseNumpyStore",
    "MmapDenseStore",
    "SqliteStore",
    "StoreSpec",
    "resolve_store_spec",
    "available_store_backends",
    "DEFAULT_STORE_ENV",
    "DEFAULT_HOT_CAPACITY",
]
