"""The provenance-store interface shared by every backend.

The paper frames provenance tracking as a *memory-bound* problem: selection
policies differ precisely in how much annotation state they keep per vertex
buffer (Tables 7 and 8).  A :class:`ProvenanceStore` abstracts that state —
a keyed map from vertices to per-vertex annotation values (scalar totals,
entry buffers, sparse dict vectors or dense numpy vectors) — so a policy's
*algorithm* is decoupled from *where its state lives*:

* :class:`~repro.stores.dict_store.DictStore` keeps everything in a plain
  Python dict (the seed behaviour, and the default);
* :class:`~repro.stores.dense.DenseNumpyStore` packs fixed-dimension numpy
  vectors into one contiguous matrix (backing the dense proportional
  policy);
* :class:`~repro.stores.sqlite_store.SqliteStore` bounds the resident
  entries and spills the overflow to an SQLite file, so runs whose
  annotation state exceeds memory can still complete.

Backends are *semantically interchangeable*: a run on any backend must
produce bit-identical origin decompositions and buffer totals to a run on
``DictStore`` (the equivalence tests under ``tests/stores/`` enforce this
for every registered policy, per-interaction and batched).

Store values may be mutated in place by policies (buffers are drained,
vectors updated) — backends therefore treat every *resident* value as
dirty.  The only protocol requirement on policies is that all values used
inside one ``process()`` step are fetched before any of them is mutated;
spilling backends guarantee that fetching a value never displaces either of
the two most recently fetched entries.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

__all__ = ["ProvenanceStore", "StoreStats", "merge_store_stats"]


@dataclass
class StoreStats:
    """Accounting snapshot of one provenance store.

    ``entries`` counts every stored key (resident plus spilled);
    ``resident_entries`` only those held in memory.  ``evictions`` counts
    spill events, ``spilled_bytes`` the serialized bytes written to the
    cold tier, and ``spill_reads`` the number of entries faulted back in.
    In-memory backends report ``entries == resident_entries`` and zeros for
    the spill counters.
    """

    backend: str = "dict"
    entries: int = 0
    resident_entries: int = 0
    evictions: int = 0
    spilled_bytes: int = 0
    spill_reads: int = 0
    memory_bytes: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form used by JSON exports."""
        return {
            "backend": self.backend,
            "entries": self.entries,
            "resident_entries": self.resident_entries,
            "evictions": self.evictions,
            "spilled_bytes": self.spilled_bytes,
            "spill_reads": self.spill_reads,
            "memory_bytes": self.memory_bytes,
        }


def merge_store_stats(
    per_store: Iterable[Mapping[str, StoreStats]]
) -> Dict[str, StoreStats]:
    """Aggregate role-keyed store stats over several policies (e.g. shards).

    Counters are summed per role; the backend label is taken from the first
    occurrence (shards of one run always share a backend).
    """
    merged: Dict[str, StoreStats] = {}
    for stats_by_role in per_store:
        for role, stats in stats_by_role.items():
            existing = merged.get(role)
            if existing is None:
                merged[role] = StoreStats(**stats.to_dict())
            else:
                existing.entries += stats.entries
                existing.resident_entries += stats.resident_entries
                existing.evictions += stats.evictions
                existing.spilled_bytes += stats.spilled_bytes
                existing.spill_reads += stats.spill_reads
                existing.memory_bytes += stats.memory_bytes
    return merged


class ProvenanceStore(abc.ABC):
    """Keyed storage of per-vertex provenance state (see module docstring).

    Keys are vertices (any hashable with deterministic pickling); values are
    whatever annotation the owning policy keeps per vertex.  ``merge`` and
    ``merge_many`` implement *numeric* accumulation (``existing + amount``
    with a missing entry treated as absent, not zero-filled) — they are
    defined for value types supporting ``+`` (floats, numpy vectors).
    """

    # ------------------------------------------------------------------
    # point access
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def get(self, key: Hashable, default: Any = None) -> Any:
        """The value stored under ``key`` (``default`` when absent)."""

    @abc.abstractmethod
    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """The value under ``key``, creating and storing ``factory()`` on miss."""

    @abc.abstractmethod
    def put(self, key: Hashable, value: Any) -> None:
        """Store ``value`` under ``key``, replacing any previous value."""

    @abc.abstractmethod
    def merge(self, key: Hashable, amount: Any) -> None:
        """Accumulate ``amount`` into ``key``: ``existing + amount``, or
        ``amount`` alone when the key is absent."""

    def merge_many(self, items: Iterable[Tuple[Hashable, Any]]) -> None:
        """Apply :meth:`merge` to every ``(key, amount)`` pair, in order.

        Bulk entry point for batched execution; the default implementation
        loops, backends may override with a tighter loop.  Application order
        is part of the contract — floating-point accumulation must match a
        sequence of individual merges bit for bit.
        """
        merge = self.merge
        for key, amount in items:
            merge(key, amount)

    @abc.abstractmethod
    def evict(self, key: Hashable) -> Any:
        """Remove ``key`` from the store entirely; returns the removed value
        (``None`` when the key was absent)."""

    # ------------------------------------------------------------------
    # iteration / bulk state
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def items(self) -> Iterable[Tuple[Hashable, Any]]:
        """Iterate over all ``(key, value)`` pairs (resident and spilled)."""

    @abc.abstractmethod
    def keys(self) -> Iterable[Hashable]:
        """Iterate over all stored keys."""

    def values(self) -> Iterable[Any]:
        """Iterate over all stored values."""
        return (value for _key, value in self.items())

    def entry_total(self, measure: Callable[[Any], int] = len) -> int:
        """Sum of ``measure(value)`` over every stored value.

        This is how the entry-buffer and sparse-vector policies count their
        provenance entries (``measure`` defaults to ``len``: entries per
        buffer, non-zero components per vector).  The default implementation
        scans every value; spilling backends override it with an
        incremental counter so counting does not deserialise the cold tier
        (see :meth:`repro.stores.SqliteStore.entry_total`).
        """
        return sum(measure(value) for value in self.values())

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self.keys())

    def __contains__(self, key: Hashable) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of stored keys (resident plus spilled)."""

    @abc.abstractmethod
    def snapshot(self) -> Dict[Hashable, Any]:
        """A plain-dict materialisation of the full store contents.

        Spilled entries are deserialised; resident values are returned
        as-is (shallow), except where the backend must copy (the dense
        store copies its matrix rows so the snapshot outlives the store).
        """

    @abc.abstractmethod
    def restore(self, mapping: Mapping[Hashable, Any]) -> None:
        """Replace the store contents with ``mapping`` (checkpoint restore)."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Drop every stored entry (spill counters are cumulative and kept)."""

    # ------------------------------------------------------------------
    # accounting / lifecycle
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def stats(self) -> StoreStats:
        """Current accounting snapshot (see :class:`StoreStats`)."""

    def memory_bytes(self) -> int:
        """Estimated *resident* bytes (spilled entries excluded)."""
        from repro.metrics.memory import deep_sizeof

        return deep_sizeof(self)

    def raw_dict(self) -> Optional[dict]:
        """The backing dict when the store is a plain in-memory dict.

        Fast-path hook for the batched ``process_many`` implementations:
        when non-``None``, policies may read and write the returned dict
        directly (bypassing the method interface, not the semantics).
        Spilling and dense backends return ``None``.
        """
        return None

    def close(self) -> None:
        """Release external resources (files, connections); idempotent."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(entries={len(self)})"
