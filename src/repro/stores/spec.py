"""Store specification and resolution: which backend a run's policies use.

A :class:`StoreSpec` names a backend (``"dict"``, ``"dense"``, ``"mmap"``,
``"sqlite"``)
plus backend options and acts as the *store factory* policies use to build
their per-role state (``policy._make_store(role, ...)``).  Resolution order
for an unspecified store is: the ``REPRO_DEFAULT_STORE`` environment
variable, then ``"dict"`` — so an entire test or CI run can be pushed onto
the spill backend by exporting ``REPRO_DEFAULT_STORE=sqlite`` without
touching any call site.

Roles are short labels for a policy's state components (``"buffers"``,
``"vectors"``, ``"totals"``, ``"generated"``, ``"odd"``/``"even"``).  The
dense and mmap backends apply only to fixed-dimension vector roles (the
policy passes ``dimension=``); other roles fall back to the dict backend,
so ``store="dense"`` / ``store="mmap"`` are always safe to request.  The
mmap backend is the dense arena plus zero-copy file snapshots: engine
checkpoints write the arena to a sidecar file and resume memory-maps it
back copy-on-write (see :mod:`repro.stores.mmap_store`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Tuple, Union

from repro.exceptions import StoreConfigurationError
from repro.stores.base import ProvenanceStore
from repro.stores.dense import DenseNumpyStore
from repro.stores.dict_store import DictStore
from repro.stores.mmap_store import MmapDenseStore
from repro.stores.sqlite_store import DEFAULT_HOT_CAPACITY, SqliteStore

__all__ = [
    "StoreSpec",
    "resolve_store_spec",
    "available_store_backends",
    "DEFAULT_STORE_ENV",
]

#: Environment variable consulted when no store is specified explicitly.
DEFAULT_STORE_ENV = "REPRO_DEFAULT_STORE"

_BACKENDS: Tuple[str, ...] = ("dict", "dense", "mmap", "sqlite")

#: Option keys each backend understands.  Validation is per backend so a
#: spill option paired with an in-memory backend fails loudly instead of
#: being silently ignored (e.g. ``--hot-capacity`` without ``--store
#: sqlite`` would otherwise drop the memory bound the caller asked for).
_BACKEND_OPTIONS = {
    "dict": frozenset(),
    "dense": frozenset({"block_rows"}),
    "mmap": frozenset({"block_rows"}),
    "sqlite": frozenset({"hot_capacity", "hot_bytes", "spill_batch", "directory"}),
}


def available_store_backends() -> Tuple[str, ...]:
    """Names of the provenance-store backends, in documentation order."""
    return _BACKENDS


@dataclass(frozen=True)
class StoreSpec:
    """A backend name plus its options; the store factory given to policies.

    Options understood per backend (anything else is rejected, per backend,
    so a spill option paired with an in-memory backend fails loudly):

    * ``sqlite`` — ``hot_capacity`` (resident entries per store, default
      4096), ``hot_bytes`` (optional serialized-byte budget for the
      resident tier; size-aware LRU eviction), ``spill_batch`` (LRU
      entries spilled per overflow, batched into one SQL write; default 1)
      and ``directory`` (where spill files are created; defaults to the
      system temp directory).
    * ``dense`` / ``mmap`` — ``block_rows`` (initial arena capacity and
      growth floor in rows, default 256).
    * ``dict`` — no options.
    """

    backend: str = "dict"
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.backend not in _BACKENDS:
            raise StoreConfigurationError(
                f"unknown store backend {self.backend!r}; "
                f"available backends: {', '.join(_BACKENDS)}"
            )
        unknown = set(self.options) - _BACKEND_OPTIONS[self.backend]
        if unknown:
            raise StoreConfigurationError(
                f"options {sorted(unknown)!r} do not apply to the "
                f"{self.backend!r} store backend"
            )

    def create(self, role: str, *, dimension: Optional[int] = None) -> ProvenanceStore:
        """Build a fresh store for one policy state component.

        ``dimension`` is the fixed vector length of dense-vector roles
        (``None`` for everything else); only the dense backend uses it.
        """
        if self.backend == "sqlite":
            hot_bytes = self.options.get("hot_bytes")
            return SqliteStore(
                hot_capacity=int(self.options.get("hot_capacity", DEFAULT_HOT_CAPACITY)),
                hot_bytes=int(hot_bytes) if hot_bytes is not None else None,
                spill_batch=int(self.options.get("spill_batch", 1)),
                directory=self.options.get("directory"),
            )
        if self.backend in ("dense", "mmap") and dimension is not None:
            store_class = MmapDenseStore if self.backend == "mmap" else DenseNumpyStore
            if "block_rows" in self.options:
                return store_class(
                    dimension, block_rows=int(self.options["block_rows"])
                )
            return store_class(dimension)
        return DictStore()


def resolve_store_spec(
    spec: Union[str, StoreSpec, None] = None,
    *,
    options: Optional[Mapping[str, Any]] = None,
) -> StoreSpec:
    """Normalise a store specification into a :class:`StoreSpec`.

    ``spec`` may be a ready spec (returned as-is, with ``options`` layered
    on top when given), a backend name, or ``None`` — which consults the
    ``REPRO_DEFAULT_STORE`` environment variable and falls back to the dict
    backend.

    Raises
    ------
    StoreConfigurationError
        For unknown backend names or option keys.
    """
    if isinstance(spec, StoreSpec):
        if options:
            return StoreSpec(spec.backend, {**dict(spec.options), **dict(options)})
        return spec
    if spec is None:
        spec = os.environ.get(DEFAULT_STORE_ENV, "").strip() or "dict"
    if not isinstance(spec, str):
        raise StoreConfigurationError(
            f"store must be a backend name or a StoreSpec, got {type(spec).__name__}"
        )
    return StoreSpec(spec.lower(), dict(options or {}))
