"""The in-memory dict backend: the seed behaviour, and the default.

``DictStore`` *is* a ``dict`` — policies that held raw dicts before the
store refactor keep exactly their old data layout and performance.  The
point lookups (``get``, ``__contains__``, ``__len__``, iteration) are the C
implementations inherited from ``dict``; only the store-protocol extensions
(``merge``, ``snapshot`` ...) are Python-level.  The batched fast paths ask
for :meth:`raw_dict` and then run their tight loops directly against the
dict, which is the same object.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, Mapping, Tuple

from repro.stores.base import ProvenanceStore, StoreStats

__all__ = ["DictStore"]


class DictStore(dict, ProvenanceStore):
    """Plain-dict provenance store (current behaviour, default backend)."""

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        value = dict.get(self, key)
        if value is None:
            value = factory()
            self[key] = value
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self[key] = value

    def merge(self, key: Hashable, amount: Any) -> None:
        existing = dict.get(self, key)
        self[key] = amount if existing is None else existing + amount

    def merge_many(self, items: Iterable[Tuple[Hashable, Any]]) -> None:
        get = dict.get
        for key, amount in items:
            existing = get(self, key)
            self[key] = amount if existing is None else existing + amount

    def evict(self, key: Hashable) -> Any:
        return self.pop(key, None)

    def snapshot(self) -> Dict[Hashable, Any]:
        return dict(self)

    def restore(self, mapping: Mapping[Hashable, Any]) -> None:
        self.clear()
        self.update(mapping)

    def stats(self) -> StoreStats:
        return StoreStats(
            backend="dict",
            entries=len(self),
            resident_entries=len(self),
            memory_bytes=self.memory_bytes(),
        )

    def raw_dict(self) -> dict:
        return self
