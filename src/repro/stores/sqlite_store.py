"""SQLite spill backend: bounded resident state, overflow on disk.

The paper reports configurations whose provenance state exceeds available
memory as infeasible (the ``--`` entries of Tables 7 and 8).  ``SqliteStore``
turns those configurations into *slow but feasible* runs: at most
``hot_capacity`` entries stay resident in an LRU dict, and the least
recently used entries are spilled (pickled) into an SQLite file, faulting
back in on access.

Design notes
------------
* **Single-tier invariant** — every key lives in exactly one tier (hot dict
  or cold table); promoting an entry deletes its cold row.  The cold *key*
  set is kept in memory so misses, membership tests and ``len()`` never
  touch SQL — only values are spilled, which is where the memory goes.
* **Lazy file creation** — the database file (a temp file unless a
  ``directory`` is configured) is only created at the first spill, so
  stores that never exceed ``hot_capacity`` cost no I/O at all.  This keeps
  ``REPRO_DEFAULT_STORE=sqlite`` runs of small workloads cheap.
* **Mutation-in-place safety** — policies mutate fetched values in place
  and fetch all values of one step before mutating (see
  :mod:`repro.stores.base`); eviction is strictly least-recently-used, so
  with ``hot_capacity >= 2`` a fetch can never displace the other value of
  the current step.
* **Exactness** — pickling round-trips floats, dicts, buffer objects and
  numpy arrays bit for bit, so spilled-and-faulted state is
  indistinguishable from resident state; the store-equivalence tests run
  every policy with a tiny ``hot_capacity`` to force heavy spilling.
* **Pickle/deepcopy** — checkpointing and per-shard deep copies serialise
  the *full* contents (hot and cold) and rebuild a fresh spill file on
  restore, so shards and restored checkpoints never share a database.
* **Full-scan accounting** — ``items()``/``values()``/``snapshot()``
  deserialise the whole cold tier; policies whose ``entry_count()``
  inspects every value therefore pay a cold-tier scan per call.  The
  engine bounds peak-tracking to O(log n) such calls per run; ``sample_every``
  makes the cost explicit and opt-in.  (Incremental per-store counters are
  a known follow-up, see ROADMAP.)
"""

from __future__ import annotations

import os
import pickle
import sqlite3
import tempfile
from typing import Any, Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from repro.exceptions import StoreConfigurationError
from repro.stores.base import ProvenanceStore, StoreStats

__all__ = ["SqliteStore", "DEFAULT_HOT_CAPACITY"]

#: Default number of resident entries.  Large enough that small runs never
#: spill; bound it explicitly (or via ``store_options={"hot_capacity": n}``)
#: to cap resident memory on big runs.
DEFAULT_HOT_CAPACITY = 4096

_PROTOCOL = 4
_MISSING = object()


class SqliteStore(ProvenanceStore):
    """LRU-resident provenance store spilling cold entries to SQLite."""

    def __init__(
        self,
        *,
        hot_capacity: int = DEFAULT_HOT_CAPACITY,
        directory: Optional[str] = None,
    ) -> None:
        if hot_capacity < 2:
            raise StoreConfigurationError(
                f"hot_capacity must be >= 2 (one step touches two vertices), "
                f"got {hot_capacity!r}"
            )
        self._hot_capacity = int(hot_capacity)
        self._directory = str(directory) if directory is not None else None
        #: Resident tier; insertion order doubles as recency (oldest first).
        self._hot: Dict[Hashable, Any] = {}
        #: Keys currently spilled to the cold tier (values live in SQLite).
        self._cold_keys = set()
        self._conn: Optional[sqlite3.Connection] = None
        self._path: Optional[str] = None
        self._evictions = 0
        self._spilled_bytes = 0
        self._spill_reads = 0

    @property
    def hot_capacity(self) -> int:
        """Maximum number of resident entries before spilling starts."""
        return self._hot_capacity

    @property
    def spill_path(self) -> Optional[str]:
        """Path of the spill database (``None`` before the first spill)."""
        return self._path

    # ------------------------------------------------------------------
    # cold tier plumbing
    # ------------------------------------------------------------------
    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            handle, path = tempfile.mkstemp(
                prefix="repro-store-", suffix=".sqlite", dir=self._directory
            )
            os.close(handle)
            self._path = path
            # check_same_thread=False: shard runs fetch from pool threads;
            # each store is still used by one thread at a time.
            conn = sqlite3.connect(path, check_same_thread=False)
            # The spill file is a cache, not a database of record: skip
            # journaling and fsyncs entirely.
            conn.execute("PRAGMA journal_mode=OFF")
            conn.execute("PRAGMA synchronous=OFF")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS kv (key BLOB PRIMARY KEY, value BLOB NOT NULL)"
            )
            self._conn = conn
        return self._conn

    @staticmethod
    def _encode_key(key: Hashable) -> bytes:
        # Pickle is deterministic for the vertex types the library uses
        # (str, int, tuples thereof), so byte equality == key equality.
        return pickle.dumps(key, protocol=_PROTOCOL)

    def _spill_one(self) -> None:
        hot = self._hot
        key = next(iter(hot))  # least recently used
        value = hot.pop(key)
        key_blob = self._encode_key(key)
        value_blob = pickle.dumps(value, protocol=_PROTOCOL)
        self._connection().execute(
            "INSERT OR REPLACE INTO kv (key, value) VALUES (?, ?)",
            (key_blob, value_blob),
        )
        self._cold_keys.add(key)
        self._evictions += 1
        self._spilled_bytes += len(key_blob) + len(value_blob)

    def _admit(self, key: Hashable, value: Any) -> None:
        self._hot[key] = value
        if len(self._hot) > self._hot_capacity:
            self._spill_one()

    def _fault_in(self, key: Hashable) -> Any:
        key_blob = self._encode_key(key)
        conn = self._connection()
        row = conn.execute(
            "SELECT value FROM kv WHERE key = ?", (key_blob,)
        ).fetchone()
        value = pickle.loads(row[0])
        conn.execute("DELETE FROM kv WHERE key = ?", (key_blob,))
        self._cold_keys.discard(key)
        self._spill_reads += 1
        self._admit(key, value)
        return value

    # ------------------------------------------------------------------
    # point access
    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        hot = self._hot
        if key in hot:
            value = hot.pop(key)  # refresh recency
            hot[key] = value
            return value
        if key in self._cold_keys:
            return self._fault_in(key)
        return default

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        value = self.get(key, _MISSING)
        if value is _MISSING:
            value = factory()
            self._admit(key, value)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        hot = self._hot
        if key in hot:
            hot.pop(key)
        elif key in self._cold_keys:
            self._connection().execute(
                "DELETE FROM kv WHERE key = ?", (self._encode_key(key),)
            )
            self._cold_keys.discard(key)
        self._admit(key, value)

    def merge(self, key: Hashable, amount: Any) -> None:
        existing = self.get(key, _MISSING)
        self.put(key, amount if existing is _MISSING else existing + amount)

    def evict(self, key: Hashable) -> Any:
        if key in self._hot:
            return self._hot.pop(key)
        if key in self._cold_keys:
            key_blob = self._encode_key(key)
            conn = self._connection()
            row = conn.execute(
                "SELECT value FROM kv WHERE key = ?", (key_blob,)
            ).fetchone()
            conn.execute("DELETE FROM kv WHERE key = ?", (key_blob,))
            self._cold_keys.discard(key)
            return pickle.loads(row[0])
        return None

    # ------------------------------------------------------------------
    # iteration / bulk state
    # ------------------------------------------------------------------
    def _cold_rows(self) -> List[Tuple[Any, Any]]:
        """All cold ``(key, value)`` pairs, materialised before iteration so
        callers may touch the store (and thus the table) while consuming."""
        if not self._cold_keys or self._conn is None:
            return []
        rows = self._conn.execute("SELECT key, value FROM kv").fetchall()
        return [(pickle.loads(k), pickle.loads(v)) for k, v in rows]

    def items(self) -> Iterable[Tuple[Hashable, Any]]:
        resident = list(self._hot.items())
        return resident + self._cold_rows()

    def keys(self) -> Iterable[Hashable]:
        return list(self._hot.keys()) + list(self._cold_keys)

    def values(self) -> Iterable[Any]:
        return [value for _key, value in self.items()]

    def __len__(self) -> int:
        return len(self._hot) + len(self._cold_keys)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._hot or key in self._cold_keys

    def snapshot(self) -> Dict[Hashable, Any]:
        return dict(self.items())

    def restore(self, mapping: Mapping[Hashable, Any]) -> None:
        self.clear()
        for key, value in mapping.items():
            self._admit(key, value)

    def clear(self) -> None:
        self._hot.clear()
        self._cold_keys.clear()
        if self._conn is not None:
            self._conn.execute("DELETE FROM kv")

    # ------------------------------------------------------------------
    # accounting / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        return StoreStats(
            backend="sqlite",
            entries=len(self),
            resident_entries=len(self._hot),
            evictions=self._evictions,
            spilled_bytes=self._spilled_bytes,
            spill_reads=self._spill_reads,
            memory_bytes=self.memory_bytes(),
        )

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except Exception:  # pragma: no cover - best effort
                pass
            self._conn = None
        if self._path is not None:
            try:
                os.unlink(self._path)
            except OSError:  # pragma: no cover - already gone
                pass
            self._path = None

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown varies
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # pickling / deep copies (checkpoints, per-shard store instances)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        return {
            "hot_capacity": self._hot_capacity,
            "directory": self._directory,
            "entries": self.snapshot(),
            "counters": (self._evictions, self._spilled_bytes, self._spill_reads),
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self._hot_capacity = state["hot_capacity"]
        self._directory = state.get("directory")
        self._hot = {}
        self._cold_keys = set()
        self._conn = None
        self._path = None
        self._evictions = 0
        self._spilled_bytes = 0
        self._spill_reads = 0
        for key, value in state["entries"].items():
            self._admit(key, value)
        # Loading re-spills anything beyond the hot capacity; report the
        # counters of the original store, not the reload churn.
        self._evictions, self._spilled_bytes, self._spill_reads = state["counters"]
