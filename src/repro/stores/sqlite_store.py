"""SQLite spill backend: bounded resident state, overflow on disk.

The paper reports configurations whose provenance state exceeds available
memory as infeasible (the ``--`` entries of Tables 7 and 8).  ``SqliteStore``
turns those configurations into *slow but feasible* runs: at most
``hot_capacity`` entries stay resident in an LRU dict, and the least
recently used entries are spilled (pickled) into an SQLite file, faulting
back in on access.

Design notes
------------
* **Single-tier invariant** — every key lives in exactly one tier (hot dict
  or cold table); promoting an entry deletes its cold row.  The cold *key*
  set is kept in memory so misses, membership tests and ``len()`` never
  touch SQL — only values are spilled, which is where the memory goes.
* **Lazy file creation** — the database file (a temp file unless a
  ``directory`` is configured) is only created at the first spill, so
  stores that never exceed ``hot_capacity`` cost no I/O at all.  This keeps
  ``REPRO_DEFAULT_STORE=sqlite`` runs of small workloads cheap.
* **Mutation-in-place safety** — policies mutate fetched values in place
  and fetch all values of one step before mutating (see
  :mod:`repro.stores.base`); eviction is strictly least-recently-used, so
  with ``hot_capacity >= 2`` a fetch can never displace the other value of
  the current step.
* **Exactness** — pickling round-trips floats, dicts, buffer objects and
  numpy arrays bit for bit, so spilled-and-faulted state is
  indistinguishable from resident state; the store-equivalence tests run
  every policy with a tiny ``hot_capacity`` to force heavy spilling.
* **Pickle/deepcopy** — checkpointing and per-shard deep copies serialise
  the *full* contents (hot and cold) and rebuild a fresh spill file on
  restore, so shards and restored checkpoints never share a database.
* **Incremental entry counters** — the length (``len``) of every value is
  recorded when it is spilled, so :meth:`SqliteStore.entry_total` — the
  call behind ``entry_count()`` on entry-buffer and sparse-vector policies
  — sums resident lengths plus a running cold-tier total instead of
  deserialising the whole cold tier.  Cold values cannot change while cold
  (policies only mutate resident values), so the recorded lengths stay
  exact until fault-in.  ``items()``/``values()``/``snapshot()`` still
  materialise everything, but sampling (``sample_every``) and the engine's
  O(log n) peak checks no longer pay a cold-tier scan per call.
* **Size-aware eviction** — an optional ``hot_bytes`` budget bounds the
  *serialized* size of the resident tier: entry sizes are measured at
  admission and fault-in (exact blob lengths where available), re-measured
  periodically because resident values are mutated in place (one amortised
  pickling per access, see ``_refresh_hot_sizes``), and the least recently
  used entries are spilled in one batched ``executemany`` until the tier
  fits.  The budget is approximate by one refresh interval.
  ``spill_batch`` independently batches capacity-triggered spills
  (evicting a few extra LRU entries per overflow, amortising the SQL
  round-trips on skewed workloads).
"""

from __future__ import annotations

import os
import pickle
import sqlite3
import tempfile
from typing import Any, Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from repro.exceptions import StoreConfigurationError
from repro.stores.base import ProvenanceStore, StoreStats

__all__ = ["SqliteStore", "DEFAULT_HOT_CAPACITY"]

#: Default number of resident entries.  Large enough that small runs never
#: spill; bound it explicitly (or via ``store_options={"hot_capacity": n}``)
#: to cap resident memory on big runs.
DEFAULT_HOT_CAPACITY = 4096

_PROTOCOL = 4
_MISSING = object()


class SqliteStore(ProvenanceStore):
    """LRU-resident provenance store spilling cold entries to SQLite."""

    def __init__(
        self,
        *,
        hot_capacity: int = DEFAULT_HOT_CAPACITY,
        hot_bytes: Optional[int] = None,
        spill_batch: int = 1,
        directory: Optional[str] = None,
    ) -> None:
        if hot_capacity < 2:
            raise StoreConfigurationError(
                f"hot_capacity must be >= 2 (one step touches two vertices), "
                f"got {hot_capacity!r}"
            )
        if hot_bytes is not None and hot_bytes < 1:
            raise StoreConfigurationError(
                f"hot_bytes must be a positive byte budget, got {hot_bytes!r}"
            )
        if spill_batch < 1:
            raise StoreConfigurationError(
                f"spill_batch must be >= 1, got {spill_batch!r}"
            )
        self._hot_capacity = int(hot_capacity)
        self._hot_bytes = int(hot_bytes) if hot_bytes is not None else None
        self._spill_batch = int(spill_batch)
        self._directory = str(directory) if directory is not None else None
        #: Resident tier; insertion order doubles as recency (oldest first).
        self._hot: Dict[Hashable, Any] = {}
        #: Keys currently spilled to the cold tier (values live in SQLite).
        self._cold_keys = set()
        #: len(value) recorded at spill time per cold key (None: unsized
        #: value), kept in sync so entry_total() never scans the cold tier.
        self._cold_lengths: Dict[Hashable, Optional[int]] = {}
        self._cold_len_total = 0
        self._cold_unsized = 0
        #: Last measured serialized size per resident key (hot_bytes mode).
        self._hot_sizes: Dict[Hashable, int] = {}
        self._hot_bytes_total = 0
        self._ops_since_refresh = 0
        self._conn: Optional[sqlite3.Connection] = None
        self._path: Optional[str] = None
        self._evictions = 0
        self._spilled_bytes = 0
        self._spill_reads = 0

    @property
    def hot_capacity(self) -> int:
        """Maximum number of resident entries before spilling starts."""
        return self._hot_capacity

    @property
    def hot_bytes(self) -> Optional[int]:
        """Serialized-byte budget of the resident tier (None: count-only)."""
        return self._hot_bytes

    @property
    def resident_bytes_estimate(self) -> int:
        """Estimated serialized size of the resident tier (hot_bytes mode).

        0 when no ``hot_bytes`` budget is configured — sizes are only
        measured when the budget needs them.
        """
        return self._hot_bytes_total

    @property
    def spill_path(self) -> Optional[str]:
        """Path of the spill database (``None`` before the first spill)."""
        return self._path

    # ------------------------------------------------------------------
    # cold tier plumbing
    # ------------------------------------------------------------------
    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            handle, path = tempfile.mkstemp(
                prefix="repro-store-", suffix=".sqlite", dir=self._directory
            )
            os.close(handle)
            self._path = path
            # check_same_thread=False: shard runs fetch from pool threads;
            # each store is still used by one thread at a time.
            conn = sqlite3.connect(path, check_same_thread=False)
            # The spill file is a cache, not a database of record: skip
            # journaling and fsyncs entirely.
            conn.execute("PRAGMA journal_mode=OFF")
            conn.execute("PRAGMA synchronous=OFF")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS kv (key BLOB PRIMARY KEY, value BLOB NOT NULL)"
            )
            self._conn = conn
        return self._conn

    @staticmethod
    def _encode_key(key: Hashable) -> bytes:
        # Pickle is deterministic for the vertex types the library uses
        # (str, int, tuples thereof), so byte equality == key equality.
        return pickle.dumps(key, protocol=_PROTOCOL)

    def _record_cold(self, key: Hashable, value: Any) -> None:
        """Cache ``len(value)`` for a key entering the cold tier."""
        try:
            length: Optional[int] = len(value)
        except TypeError:
            length = None
        self._cold_lengths[key] = length
        if length is None:
            self._cold_unsized += 1
        else:
            self._cold_len_total += length

    def _forget_cold(self, key: Hashable) -> None:
        """Drop the cached length of a key leaving the cold tier."""
        if key not in self._cold_lengths:
            return
        length = self._cold_lengths.pop(key)
        if length is None:
            self._cold_unsized -= 1
        else:
            self._cold_len_total -= length

    def _spill_lru(self, count: int) -> None:
        """Move the ``count`` least recently used entries to the cold tier.

        One ``executemany`` per call — batching spills cuts the SQL
        round-trips on workloads that overflow the hot tier continuously.
        At least two entries always stay resident so a fetch can never
        displace the other value of the current step (see module notes).
        """
        hot = self._hot
        count = min(count, len(hot) - 2)
        if count <= 0:
            return
        rows = []
        for _ in range(count):
            key = next(iter(hot))  # least recently used
            value = hot.pop(key)
            key_blob = self._encode_key(key)
            value_blob = pickle.dumps(value, protocol=_PROTOCOL)
            rows.append((key_blob, value_blob))
            self._cold_keys.add(key)
            self._record_cold(key, value)
            self._evictions += 1
            self._spilled_bytes += len(key_blob) + len(value_blob)
            if self._hot_bytes is not None:
                self._hot_bytes_total -= self._hot_sizes.pop(key, 0)
                # The exact blob length corrects the admission-time estimate
                # retroactively: what leaves the budget is what was counted.
        self._connection().executemany(
            "INSERT OR REPLACE INTO kv (key, value) VALUES (?, ?)", rows
        )

    def _over_budget_count(self) -> int:
        """How many LRU entries must spill to fit the ``hot_bytes`` budget."""
        excess = self._hot_bytes_total - self._hot_bytes
        if excess <= 0:
            return 0
        count = 0
        for key in self._hot:  # oldest first
            if excess <= 0:
                break
            excess -= self._hot_sizes.get(key, 0)
            count += 1
        return count

    def _refresh_hot_sizes(self) -> None:
        """Re-measure every resident value (they are mutated in place).

        Values grow between store writes — a buffer gains entries through
        the reference ``get()`` handed out — so admission-time sizes go
        stale.  Budget mode re-measures the whole hot tier every
        ``max(64, len(hot))`` touches: one amortised pickling per touch,
        which keeps the budget honest without pickling on every access.
        """
        total = 0
        sizes: Dict[Hashable, int] = {}
        for key, value in self._hot.items():
            size = len(pickle.dumps(value, protocol=_PROTOCOL))
            sizes[key] = size
            total += size
        self._hot_sizes = sizes
        self._hot_bytes_total = total
        self._ops_since_refresh = 0

    def _touch_budget(self) -> None:
        """Count a budget-mode access; refresh sizes and spill when due."""
        self._ops_since_refresh += 1
        if self._ops_since_refresh >= max(64, len(self._hot)):
            self._refresh_hot_sizes()
            if self._hot_bytes_total > self._hot_bytes:
                self._spill_lru(self._over_budget_count())

    def _admit(self, key: Hashable, value: Any, *, size: Optional[int] = None) -> None:
        self._hot[key] = value
        if self._hot_bytes is not None:
            if size is None:
                size = len(pickle.dumps(value, protocol=_PROTOCOL))
            self._hot_bytes_total += size - self._hot_sizes.get(key, 0)
            self._hot_sizes[key] = size
        overflow = len(self._hot) - self._hot_capacity
        if overflow > 0:
            # Spill at least the overflow; with spill_batch > 1 a few extra
            # LRU entries ride along so the next overflows are free.
            self._spill_lru(max(overflow, self._spill_batch))
        if self._hot_bytes is not None and self._hot_bytes_total > self._hot_bytes:
            self._spill_lru(self._over_budget_count())

    def _fault_in(self, key: Hashable) -> Any:
        key_blob = self._encode_key(key)
        conn = self._connection()
        row = conn.execute(
            "SELECT value FROM kv WHERE key = ?", (key_blob,)
        ).fetchone()
        value = pickle.loads(row[0])
        conn.execute("DELETE FROM kv WHERE key = ?", (key_blob,))
        self._cold_keys.discard(key)
        self._forget_cold(key)
        self._spill_reads += 1
        self._admit(key, value, size=len(row[0]))
        return value

    # ------------------------------------------------------------------
    # point access
    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        hot = self._hot
        if key in hot:
            value = hot.pop(key)  # refresh recency
            hot[key] = value
            if self._hot_bytes is not None:
                self._touch_budget()
            return value
        if key in self._cold_keys:
            return self._fault_in(key)
        return default

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        value = self.get(key, _MISSING)
        if value is _MISSING:
            value = factory()
            self._admit(key, value)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        hot = self._hot
        if key in hot:
            hot.pop(key)
        elif key in self._cold_keys:
            self._connection().execute(
                "DELETE FROM kv WHERE key = ?", (self._encode_key(key),)
            )
            self._cold_keys.discard(key)
            self._forget_cold(key)
        self._admit(key, value)

    def merge(self, key: Hashable, amount: Any) -> None:
        existing = self.get(key, _MISSING)
        self.put(key, amount if existing is _MISSING else existing + amount)

    def evict(self, key: Hashable) -> Any:
        if key in self._hot:
            if self._hot_bytes is not None:
                self._hot_bytes_total -= self._hot_sizes.pop(key, 0)
            return self._hot.pop(key)
        if key in self._cold_keys:
            key_blob = self._encode_key(key)
            conn = self._connection()
            row = conn.execute(
                "SELECT value FROM kv WHERE key = ?", (key_blob,)
            ).fetchone()
            conn.execute("DELETE FROM kv WHERE key = ?", (key_blob,))
            self._cold_keys.discard(key)
            self._forget_cold(key)
            return pickle.loads(row[0])
        return None

    # ------------------------------------------------------------------
    # iteration / bulk state
    # ------------------------------------------------------------------
    def _cold_rows(self) -> List[Tuple[Any, Any]]:
        """All cold ``(key, value)`` pairs, materialised before iteration so
        callers may touch the store (and thus the table) while consuming."""
        if not self._cold_keys or self._conn is None:
            return []
        rows = self._conn.execute("SELECT key, value FROM kv").fetchall()
        return [(pickle.loads(k), pickle.loads(v)) for k, v in rows]

    def items(self) -> Iterable[Tuple[Hashable, Any]]:
        resident = list(self._hot.items())
        return resident + self._cold_rows()

    def keys(self) -> Iterable[Hashable]:
        return list(self._hot.keys()) + list(self._cold_keys)

    def values(self) -> Iterable[Any]:
        return [value for _key, value in self.items()]

    def __len__(self) -> int:
        return len(self._hot) + len(self._cold_keys)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._hot or key in self._cold_keys

    def entry_total(self, measure: Callable[[Any], int] = len) -> int:
        """Sum of ``measure(value)`` without deserialising the cold tier.

        For the default ``len`` measure the cold contribution comes from
        the running counter maintained at spill/fault time (cold values
        cannot change while cold, so it is exact); only unsized cold values
        or a custom ``measure`` fall back to the full materialising scan.
        """
        if measure is len and not self._cold_unsized:
            resident = sum(len(value) for value in self._hot.values())
            return resident + self._cold_len_total
        return super().entry_total(measure)

    def snapshot(self) -> Dict[Hashable, Any]:
        return dict(self.items())

    def restore(self, mapping: Mapping[Hashable, Any]) -> None:
        self.clear()
        for key, value in mapping.items():
            self._admit(key, value)

    def clear(self) -> None:
        self._hot.clear()
        self._cold_keys.clear()
        self._cold_lengths.clear()
        self._cold_len_total = 0
        self._cold_unsized = 0
        self._hot_sizes.clear()
        self._hot_bytes_total = 0
        if self._conn is not None:
            self._conn.execute("DELETE FROM kv")

    # ------------------------------------------------------------------
    # accounting / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        return StoreStats(
            backend="sqlite",
            entries=len(self),
            resident_entries=len(self._hot),
            evictions=self._evictions,
            spilled_bytes=self._spilled_bytes,
            spill_reads=self._spill_reads,
            memory_bytes=self.memory_bytes(),
        )

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except Exception:  # pragma: no cover - best effort
                pass
            self._conn = None
        if self._path is not None:
            try:
                os.unlink(self._path)
            except OSError:  # pragma: no cover - already gone
                pass
            self._path = None

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown varies
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # pickling / deep copies (checkpoints, per-shard store instances)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        return {
            "hot_capacity": self._hot_capacity,
            "hot_bytes": self._hot_bytes,
            "spill_batch": self._spill_batch,
            "directory": self._directory,
            "entries": self.snapshot(),
            "counters": (self._evictions, self._spilled_bytes, self._spill_reads),
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self._hot_capacity = state["hot_capacity"]
        self._hot_bytes = state.get("hot_bytes")
        self._spill_batch = state.get("spill_batch", 1)
        self._directory = state.get("directory")
        self._hot = {}
        self._cold_keys = set()
        self._cold_lengths = {}
        self._cold_len_total = 0
        self._cold_unsized = 0
        self._hot_sizes = {}
        self._hot_bytes_total = 0
        self._ops_since_refresh = 0
        self._conn = None
        self._path = None
        self._evictions = 0
        self._spilled_bytes = 0
        self._spill_reads = 0
        for key, value in state["entries"].items():
            self._admit(key, value)
        # Loading re-spills anything beyond the hot capacity; report the
        # counters of the original store, not the reload churn.
        self._evictions, self._spilled_bytes, self._spill_reads = state["counters"]
