"""Named dataset presets mirroring the paper's five real TINs (Table 6).

The real datasets are not redistributable (and at full scale are too large
for a pure-Python run), so each preset reproduces the *structural signature*
of its real counterpart at a laptop-friendly scale: the interactions-per-
vertex density, the quantity distribution and the participation skew.  The
``paper_statistics`` field keeps the original numbers for reference.

Presets are deterministic; ``load_preset(name, scale=...)`` lets experiments
grow or shrink a preset while keeping its density.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.network import TemporalInteractionNetwork
from repro.datasets.schema import DatasetSpec, QuantityModel
from repro.datasets.synthetic import generate_network
from repro.exceptions import DatasetError

__all__ = ["PRESETS", "available_presets", "get_spec", "load_preset"]

#: The five dataset presets.  Vertex and interaction counts are scaled down
#: from the paper (by roughly 1000x for Bitcoin/CTU/Prosper/Flights and 10x
#: for Taxis) while keeping each dataset's interactions-per-vertex density
#: and quantity scale, which drive the experimental behaviour.
PRESETS: Dict[str, DatasetSpec] = {
    "bitcoin": DatasetSpec(
        name="bitcoin",
        num_vertices=12_000,
        num_interactions=45_000,
        quantity_model=QuantityModel(kind="lognormal", mean=34.4, sigma=2.0),
        participation_skew=1.2,
        edge_reuse_probability=0.25,
        seed=101,
        description=(
            "Financial exchange network: many vertices, sparse traffic "
            "(|R|/|V| ~ 3.8), heavy-tailed BTC amounts."
        ),
        paper_statistics=(12_000_000, 45_500_000, 34.4e9),
    ),
    "ctu": DatasetSpec(
        name="ctu",
        num_vertices=6_000,
        num_interactions=28_000,
        quantity_model=QuantityModel(kind="pareto", mean=19_200.0, alpha=1.6),
        participation_skew=1.1,
        edge_reuse_probability=0.35,
        seed=102,
        description=(
            "Botnet traffic network: IP addresses exchanging bytes, "
            "moderate density (|R|/|V| ~ 4.6), Pareto-tailed flow sizes."
        ),
        paper_statistics=(608_000, 2_800_000, 19_200.0),
    ),
    "prosper": DatasetSpec(
        name="prosper",
        num_vertices=1_000,
        num_interactions=31_000,
        quantity_model=QuantityModel(kind="lognormal", mean=76.0, sigma=1.0),
        participation_skew=0.9,
        edge_reuse_probability=0.3,
        seed=103,
        description=(
            "Peer-to-peer loan network: denser than Bitcoin/CTU "
            "(|R|/|V| ~ 31), moderate loan amounts."
        ),
        paper_statistics=(100_000, 3_080_000, 76.0),
    ),
    "flights": DatasetSpec(
        name="flights",
        num_vertices=63,
        num_interactions=28_000,
        quantity_model=QuantityModel(kind="uniform_int", low=50, high=200),
        participation_skew=0.8,
        edge_reuse_probability=0.6,
        seed=104,
        description=(
            "Flights network: very few vertices with heavy traffic between "
            "them (|R|/|V| in the thousands), 50-200 passengers per flight."
        ),
        paper_statistics=(629, 5_700_000, 125.0),
    ),
    "taxis": DatasetSpec(
        name="taxis",
        num_vertices=255,
        num_interactions=23_000,
        quantity_model=QuantityModel(kind="uniform_int", low=1, high=4),
        participation_skew=0.7,
        edge_reuse_probability=0.5,
        seed=105,
        description=(
            "NYC yellow-taxi network: taxi zones exchanging passengers, "
            "small integer quantities (avg ~1.5 passengers)."
        ),
        paper_statistics=(255, 231_000, 1.53),
    ),
}


def available_presets() -> List[str]:
    """Names of the built-in dataset presets."""
    return sorted(PRESETS)


def get_spec(name: str, *, scale: float = 1.0, seed: Optional[int] = None) -> DatasetSpec:
    """The spec of a preset, optionally rescaled and reseeded.

    Raises
    ------
    DatasetError
        If ``name`` is not a known preset.
    """
    try:
        spec = PRESETS[name]
    except KeyError:
        known = ", ".join(available_presets())
        raise DatasetError(f"unknown dataset preset {name!r}; available: {known}") from None
    if scale != 1.0:
        spec = spec.scaled(scale)
    if seed is not None:
        spec = DatasetSpec(
            name=spec.name,
            num_vertices=spec.num_vertices,
            num_interactions=spec.num_interactions,
            quantity_model=spec.quantity_model,
            participation_skew=spec.participation_skew,
            edge_reuse_probability=spec.edge_reuse_probability,
            seed=seed,
            description=spec.description,
            paper_statistics=spec.paper_statistics,
        )
    return spec


def load_preset(
    name: str, *, scale: float = 1.0, seed: Optional[int] = None
) -> TemporalInteractionNetwork:
    """Generate the synthetic network of a preset.

    Parameters
    ----------
    name:
        One of :func:`available_presets` (``"bitcoin"``, ``"ctu"``,
        ``"prosper"``, ``"flights"``, ``"taxis"``).
    scale:
        Multiplier applied to the preset's vertex and interaction counts;
        the density |R|/|V| is preserved.
    seed:
        Override the preset's random seed.
    """
    return generate_network(get_spec(name, scale=scale, seed=seed))
