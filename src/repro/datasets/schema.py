"""Dataset specifications for the synthetic TIN generators.

Each of the paper's five real datasets (Table 6) is described here by a
:class:`DatasetSpec` capturing its *structural signature*: the number of
vertices, the number of interactions, the quantity distribution and the
skew of vertex participation.  The synthetic generator
(:mod:`repro.datasets.synthetic`) turns a spec into a concrete
:class:`~repro.core.network.TemporalInteractionNetwork`; the spec also
records the original (paper-scale) statistics so reports can show both.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.exceptions import DatasetError

__all__ = ["QuantityModel", "DatasetSpec"]


@dataclass(frozen=True)
class QuantityModel:
    """How interaction quantities are drawn.

    ``kind`` is one of:

    * ``"lognormal"`` — heavy-tailed positive quantities with the given
      ``mean`` (e.g. financial transfers); ``sigma`` controls the tail.
    * ``"uniform_int"`` — integers drawn uniformly from ``[low, high]``
      (e.g. passengers per flight).
    * ``"pareto"`` — Pareto-tailed quantities with shape ``alpha`` scaled to
      the given ``mean`` (e.g. bytes per network flow).
    """

    kind: str = "lognormal"
    mean: float = 1.0
    sigma: float = 1.0
    low: int = 1
    high: int = 10
    alpha: float = 1.5

    def __post_init__(self) -> None:
        if self.kind not in {"lognormal", "uniform_int", "pareto"}:
            raise DatasetError(f"unknown quantity model kind {self.kind!r}")
        if self.kind == "uniform_int" and self.low > self.high:
            raise DatasetError(
                f"uniform_int quantity model needs low <= high, got [{self.low}, {self.high}]"
            )
        if self.mean <= 0:
            raise DatasetError(f"quantity model mean must be positive, got {self.mean!r}")


@dataclass(frozen=True)
class DatasetSpec:
    """A reproducible recipe for a synthetic temporal interaction network."""

    #: Short preset name ("bitcoin", "taxis", ...).
    name: str
    #: Number of vertices in the synthetic network.
    num_vertices: int
    #: Number of interactions to generate.
    num_interactions: int
    #: Distribution of interaction quantities.
    quantity_model: QuantityModel = field(default_factory=QuantityModel)
    #: Zipf-like skew of vertex participation (0 = uniform; larger = heavier hubs).
    participation_skew: float = 1.0
    #: Probability that an interaction reuses an existing edge rather than
    #: sampling fresh endpoints (controls edge-set density / repeated edges).
    edge_reuse_probability: float = 0.3
    #: Random seed for full determinism.
    seed: int = 7
    #: Free-text description shown in reports.
    description: str = ""
    #: Statistics of the real dataset the preset mimics (for documentation
    #: and the Table 6 bench): (vertices, interactions, average quantity).
    paper_statistics: Optional[Tuple[int, int, float]] = None

    def __post_init__(self) -> None:
        if self.num_vertices < 2:
            raise DatasetError(
                f"a TIN needs at least 2 vertices, got {self.num_vertices!r}"
            )
        if self.num_interactions < 1:
            raise DatasetError(
                f"a TIN needs at least 1 interaction, got {self.num_interactions!r}"
            )
        if self.participation_skew < 0:
            raise DatasetError(
                f"participation_skew must be non-negative, got {self.participation_skew!r}"
            )
        if not 0.0 <= self.edge_reuse_probability <= 1.0:
            raise DatasetError(
                "edge_reuse_probability must be within [0, 1], got "
                f"{self.edge_reuse_probability!r}"
            )

    @property
    def density(self) -> float:
        """Interactions per vertex, the key scale parameter of the paper."""
        return self.num_interactions / self.num_vertices

    def scaled(self, factor: float, *, min_vertices: int = 10,
               min_interactions: int = 100) -> "DatasetSpec":
        """A copy of the spec with vertices and interactions scaled by ``factor``.

        Scaling preserves the interactions-per-vertex density that drives the
        experimental behaviour; lower bounds keep tiny factors usable.
        """
        if factor <= 0:
            raise DatasetError(f"scale factor must be positive, got {factor!r}")
        return replace(
            self,
            num_vertices=max(min_vertices, int(round(self.num_vertices * factor))),
            num_interactions=max(
                min_interactions, int(round(self.num_interactions * factor))
            ),
        )
