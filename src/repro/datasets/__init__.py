"""Dataset generation, presets, and CSV import/export."""

from repro.datasets.catalog import PRESETS, available_presets, get_spec, load_preset
from repro.datasets.io import read_interactions_csv, read_network_csv, write_interactions_csv
from repro.datasets.schema import DatasetSpec, QuantityModel
from repro.datasets.synthetic import generate_interactions, generate_network

__all__ = [
    "PRESETS",
    "available_presets",
    "get_spec",
    "load_preset",
    "read_interactions_csv",
    "read_network_csv",
    "write_interactions_csv",
    "DatasetSpec",
    "QuantityModel",
    "generate_interactions",
    "generate_network",
]
