"""CSV import/export of interaction data.

Real TIN datasets (e.g. the preprocessed Bitcoin data or NYC taxi trips)
typically arrive as CSV files with one interaction per row.  This module
reads and writes the simple ``source,destination,time,quantity`` format so
the library can be used on the paper's original data when available, and so
synthetic datasets can be persisted for external tools.

All readers stream: :func:`read_interactions_csv` yields rows one at a time
without materialising the file, so :class:`repro.runtime.Runner` (with
``stream=True``) can drive a policy over CSV files larger than memory, and
:func:`read_network_csv` feeds the network builder incrementally instead of
building an intermediate list.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, Union

from repro.core.blocks import InteractionBlock, VertexInterner
from repro.core.interaction import Interaction
from repro.core.network import TemporalInteractionNetwork
from repro.exceptions import DatasetError

__all__ = [
    "write_interactions_csv",
    "read_interactions_csv",
    "read_interaction_block",
    "read_network_csv",
    "parse_interaction_row",
    "is_header_row",
]

_HEADER = ("source", "destination", "time", "quantity")


def parse_interaction_row(
    row: Sequence[str],
    *,
    vertex_type: type = str,
    path: object = "<csv>",
    line_number: int = 0,
) -> Interaction:
    """Parse one ``source,destination,time,quantity`` CSV row.

    Shared by the eager readers here and the tailing
    :class:`repro.sources.CsvTailSource`, so both accept exactly the same
    format and raise the same :class:`~repro.exceptions.DatasetError` with a
    ``path:line`` prefix.
    """
    if len(row) < 4:
        raise DatasetError(
            f"{path}:{line_number}: expected 4 columns "
            f"(source, destination, time, quantity), got {len(row)}"
        )
    try:
        return Interaction(
            source=vertex_type(row[0].strip()),
            destination=vertex_type(row[1].strip()),
            time=float(row[2]),
            quantity=float(row[3]),
        )
    except (TypeError, ValueError) as exc:
        raise DatasetError(
            f"{path}:{line_number}: cannot parse row {row!r}: {exc}"
        ) from exc


def write_interactions_csv(
    interactions: Iterable[Interaction],
    path: Union[str, Path],
    *,
    include_header: bool = True,
) -> int:
    """Write interactions to ``path``; returns the number of rows written."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        if include_header:
            writer.writerow(_HEADER)
        for interaction in interactions:
            writer.writerow(
                [
                    interaction.source,
                    interaction.destination,
                    repr(interaction.time),
                    repr(interaction.quantity),
                ]
            )
            count += 1
    return count


def read_interactions_csv(
    path: Union[str, Path],
    *,
    vertex_type: type = str,
    limit: Optional[int] = None,
) -> Iterator[Interaction]:
    """Lazily yield interactions from a CSV file.

    The file must have columns ``source, destination, time, quantity``
    (header optional).  ``vertex_type`` converts the vertex columns (use
    ``int`` when vertex identifiers are integers).  Rows are parsed on
    demand — the file is never materialised, so arbitrarily large files can
    be streamed; ``limit`` stops after that many interactions without
    reading the rest.

    Raises
    ------
    DatasetError
        If a row cannot be parsed (raised when the offending row is
        reached, not at call time).
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"interaction file {path} does not exist")
    yielded = 0
    with path.open("r", newline="") as handle:
        reader = csv.reader(handle)
        for line_number, row in enumerate(reader, start=1):
            if limit is not None and yielded >= limit:
                return
            if not row or all(not cell.strip() for cell in row):
                continue
            if line_number == 1 and _is_header(row):
                continue
            yield parse_interaction_row(
                row, vertex_type=vertex_type, path=path, line_number=line_number
            )
            yielded += 1


def read_interaction_block(
    path: Union[str, Path],
    *,
    vertex_type: type = str,
    interner: Optional[VertexInterner] = None,
    limit: Optional[int] = None,
) -> InteractionBlock:
    """Parse a CSV file straight into a columnar :class:`InteractionBlock`.

    The block-native ingest path: rows become four growing columns (interned
    ``int32`` vertex ids, ``float64`` time and quantity) without ever
    building an object list or a network — peak ingest memory is the column
    arrays (24 bytes per row) plus the interner, reported as
    ``block.nbytes``.  Vertices are interned source before destination, row
    by row, so the interner's vertex order equals the registration order
    :func:`read_network_csv` would produce — policies that take their
    universe from the interner see identical state.

    Each row is parsed and validated by the same
    :func:`parse_interaction_row` every other reader uses (the transient
    per-row object is discarded immediately), so format handling and
    errors can never diverge between the object and columnar ingests.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"interaction file {path} does not exist")
    if interner is None:
        interner = VertexInterner()
    intern = interner.intern
    src_ids: list = []
    dst_ids: list = []
    times: list = []
    quantities: list = []
    with path.open("r", newline="") as handle:
        reader = csv.reader(handle)
        for line_number, row in enumerate(reader, start=1):
            if limit is not None and len(times) >= limit:
                break
            if not row or all(not cell.strip() for cell in row):
                continue
            if line_number == 1 and _is_header(row):
                continue
            interaction = parse_interaction_row(
                row, vertex_type=vertex_type, path=path, line_number=line_number
            )
            src_ids.append(intern(interaction.source))
            dst_ids.append(intern(interaction.destination))
            times.append(interaction.time)
            quantities.append(interaction.quantity)
    return InteractionBlock.from_columns(src_ids, dst_ids, times, quantities, interner)


def is_header_row(row: Sequence[str]) -> bool:
    """True when a CSV row looks like the canonical header."""
    normalised = tuple(cell.strip().lower() for cell in row[:4])
    return normalised == _HEADER


_is_header = is_header_row


def read_network_csv(
    path: Union[str, Path],
    *,
    name: Optional[str] = None,
    vertex_type: type = str,
) -> TemporalInteractionNetwork:
    """Read a CSV file into a :class:`TemporalInteractionNetwork`.

    Rows stream straight into the network builder — no intermediate list —
    so peak memory is the network itself, not twice the file.
    """
    path = Path(path)
    return TemporalInteractionNetwork.from_interactions(
        read_interactions_csv(path, vertex_type=vertex_type),
        name=name or path.stem,
    )
