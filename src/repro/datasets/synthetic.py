"""Deterministic synthetic TIN generation.

The generator turns a :class:`~repro.datasets.schema.DatasetSpec` into a
:class:`~repro.core.network.TemporalInteractionNetwork` whose structure
mirrors the real dataset the spec describes:

* vertex participation follows a Zipf-like distribution so a few hubs send
  and receive most of the traffic (financial exchanges, popular airports);
* a fraction of interactions reuses an already existing edge, reproducing
  the repeated-edge histories of Figure 3;
* quantities are drawn from the spec's quantity model (heavy-tailed for
  Bitcoin/CTU, small integers for Taxis/Flights);
* timestamps are strictly increasing, so interaction order equals time
  order, exactly as the propagation algorithms require.

Generation is fully deterministic given the spec's seed.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.interaction import Interaction
from repro.core.network import TemporalInteractionNetwork
from repro.datasets.schema import DatasetSpec, QuantityModel

__all__ = ["generate_interactions", "generate_network"]


def _zipf_weights(count: int, skew: float) -> np.ndarray:
    """Normalised Zipf-like weights for ``count`` items with exponent ``skew``."""
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks ** (-skew) if skew > 0 else np.ones(count, dtype=np.float64)
    return weights / weights.sum()


def _draw_quantities(
    model: QuantityModel, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``count`` interaction quantities from the spec's quantity model."""
    if model.kind == "uniform_int":
        return rng.integers(model.low, model.high + 1, size=count).astype(np.float64)
    if model.kind == "pareto":
        # A Pareto(alpha) variable has mean alpha/(alpha-1) for alpha > 1;
        # rescale so the sample mean matches the requested mean.
        raw = 1.0 + rng.pareto(model.alpha, size=count)
        scale = model.mean / (model.alpha / (model.alpha - 1.0)) if model.alpha > 1 else model.mean
        return raw * scale
    # lognormal: choose mu so that the distribution mean equals model.mean.
    sigma = model.sigma
    mu = np.log(model.mean) - 0.5 * sigma * sigma
    return rng.lognormal(mean=mu, sigma=sigma, size=count)


def generate_interactions(spec: DatasetSpec) -> List[Interaction]:
    """Generate the time-ordered interaction list described by ``spec``."""
    rng = np.random.default_rng(spec.seed)
    vertex_count = spec.num_vertices
    interaction_count = spec.num_interactions

    source_weights = _zipf_weights(vertex_count, spec.participation_skew)
    # Shuffle destination popularity independently so hubs for sending and
    # receiving are not the same vertices (as in real exchange networks).
    destination_weights = source_weights[rng.permutation(vertex_count)]

    sources = rng.choice(vertex_count, size=interaction_count, p=source_weights)
    destinations = rng.choice(vertex_count, size=interaction_count, p=destination_weights)
    quantities = _draw_quantities(spec.quantity_model, interaction_count, rng)
    # Strictly increasing timestamps with exponential gaps.
    gaps = rng.exponential(scale=1.0, size=interaction_count)
    times = np.cumsum(gaps)

    reuse_draws = rng.random(interaction_count)
    reuse_edges: List[Tuple[int, int]] = []

    interactions: List[Interaction] = []
    for index in range(interaction_count):
        source = int(sources[index])
        destination = int(destinations[index])
        if reuse_edges and reuse_draws[index] < spec.edge_reuse_probability:
            source, destination = reuse_edges[
                int(rng.integers(0, len(reuse_edges)))
            ]
        if source == destination:
            destination = (destination + 1) % vertex_count
        reuse_edges.append((source, destination))
        interactions.append(
            Interaction(
                source=source,
                destination=destination,
                time=float(times[index]),
                quantity=float(max(quantities[index], 1e-9)),
            )
        )
    return interactions


def generate_network(spec: DatasetSpec) -> TemporalInteractionNetwork:
    """Generate the full network (vertices 0..n-1 plus interactions).

    All ``spec.num_vertices`` vertices are registered even if some never
    appear in an interaction, so dense provenance vectors have the intended
    dimensionality.
    """
    network = TemporalInteractionNetwork.from_interactions(
        generate_interactions(spec),
        name=spec.name,
        vertices=range(spec.num_vertices),
    )
    return network
