"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by the library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidInteractionError",
    "UnknownVertexError",
    "PolicyConfigurationError",
    "PolicyNotRegisteredError",
    "DatasetError",
    "MemoryBudgetExceededError",
    "RunConfigurationError",
    "StoreConfigurationError",
    "CheckpointCorruptedError",
    "SegmentAllocationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidInteractionError(ReproError, ValueError):
    """An interaction record violates the TIN model.

    Raised when a quantity is negative, a timestamp is not a finite real
    number, or a source vertex equals its destination when self-loops are
    disallowed.
    """


class UnknownVertexError(ReproError, KeyError):
    """A vertex referenced in a query or interaction is not part of the TIN."""


class PolicyConfigurationError(ReproError, ValueError):
    """A selection policy was constructed with invalid parameters."""


class PolicyNotRegisteredError(ReproError, KeyError):
    """A policy name passed to the registry does not match any known policy."""


class DatasetError(ReproError, ValueError):
    """A dataset file or generator specification could not be interpreted."""


class RunConfigurationError(ReproError, ValueError):
    """A :class:`repro.runtime.RunConfig` combines incompatible options."""


class StoreConfigurationError(ReproError, ValueError):
    """A provenance store was requested with an unknown backend or options."""


class CheckpointCorruptedError(ReproError, ValueError):
    """A checkpoint file is truncated or not unpicklable as a checkpoint.

    Raised by :func:`repro.core.checkpoint.read_checkpoint` instead of a raw
    ``EOFError``/``UnpicklingError`` so a resume attempt against a torn file
    fails with the offending path and a recovery hint.
    """

    def __init__(self, path, detail: str = ""):
        self.path = str(path)
        message = (
            f"checkpoint file {self.path} is corrupted"
            + (f" ({detail})" if detail else "")
            + "; the file is truncated or is not a checkpoint written by this "
            "library — re-run without --resume-from (or restore an intact "
            "checkpoint file)"
        )
        super().__init__(message)


class SegmentAllocationError(ReproError, OSError):
    """A shared-memory segment could not be allocated (e.g. /dev/shm full).

    Infrastructure failure, not a logic error: under
    ``RunConfig(degradation="auto")`` the runner reacts by demoting the run
    from the shm fabric to the pickled process pool (and ultimately serial).
    """


class MemoryBudgetExceededError(ReproError, MemoryError):
    """The memory ceiling configured for an experiment run was exceeded.

    The benchmark harness uses this to reproduce the "infeasible" (``--``)
    entries of Tables 7 and 8 of the paper without exhausting physical RAM.
    """

    def __init__(self, used_bytes: int, ceiling_bytes: int, context: str = ""):
        self.used_bytes = used_bytes
        self.ceiling_bytes = ceiling_bytes
        self.context = context
        message = (
            f"provenance state uses {used_bytes} bytes which exceeds the "
            f"configured ceiling of {ceiling_bytes} bytes"
        )
        if context:
            message = f"{message} ({context})"
        super().__init__(message)
