"""Selection policies for quantity propagation and provenance tracking."""

from repro.policies.base import SelectionPolicy
from repro.policies.entry_based import EntryBufferPolicy
from repro.policies.generation_time import LeastRecentlyBornPolicy, MostRecentlyBornPolicy
from repro.policies.no_provenance import NoProvenancePolicy
from repro.policies.proportional import ProportionalDensePolicy, ProportionalSparsePolicy
from repro.policies.receipt_order import FifoPolicy, LifoPolicy
from repro.policies.registry import POLICY_FACTORIES, available_policies, make_policy

__all__ = [
    "SelectionPolicy",
    "EntryBufferPolicy",
    "LeastRecentlyBornPolicy",
    "MostRecentlyBornPolicy",
    "NoProvenancePolicy",
    "ProportionalDensePolicy",
    "ProportionalSparsePolicy",
    "FifoPolicy",
    "LifoPolicy",
    "POLICY_FACTORIES",
    "available_policies",
    "make_policy",
]
