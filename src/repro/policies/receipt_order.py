"""Selection based on order of receipt (Section 4.2).

Buffers are organised by insertion order: FIFO queues relay the least
recently added quantities first, LIFO stacks the most recently added ones.
Compared to the generation-time policies, these avoid heap maintenance and
do not need to store birth timestamps, which the paper shows to be both
faster and more space-economic (Tables 7 and 8).

Applications (from the paper): FIFO fits pipelines and traffic networks
whose buffers naturally are queues; LIFO fits stack-like accumulation such
as cash registers and wallets.
"""

from __future__ import annotations

from repro.core.buffer import FifoBuffer, LifoBuffer, QuantityBuffer
from repro.policies.entry_based import EntryBufferPolicy

__all__ = ["FifoPolicy", "LifoPolicy"]


class FifoPolicy(EntryBufferPolicy):
    """Relay the least recently received quantities first (FIFO queues)."""

    name = "fifo"

    def make_buffer(self) -> QuantityBuffer:
        return FifoBuffer()


class LifoPolicy(EntryBufferPolicy):
    """Relay the most recently received quantities first (LIFO stacks)."""

    name = "lifo"

    def make_buffer(self) -> QuantityBuffer:
        return LifoBuffer()
