"""Name-based construction of selection policies.

The CLI, the benchmark harness and configuration files refer to policies by
short names (``"fifo"``, ``"lrb"``, ``"proportional-sparse"`` ...).  The
registry maps those names to factories and documents per-policy parameters.
Policies with mandatory structural parameters (selective, grouped, windowed,
budget) expose factories that accept keyword arguments.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.exceptions import PolicyNotRegisteredError
from repro.lazy.replay import ReplayProvenance
from repro.policies.base import SelectionPolicy
from repro.policies.generation_time import LeastRecentlyBornPolicy, MostRecentlyBornPolicy
from repro.policies.no_provenance import NoProvenancePolicy
from repro.policies.proportional import ProportionalDensePolicy, ProportionalSparsePolicy
from repro.policies.receipt_order import FifoPolicy, LifoPolicy
from repro.scalable.budget import BudgetProportionalPolicy
from repro.scalable.grouped import GroupedProportionalPolicy
from repro.scalable.selective import SelectiveProportionalPolicy
from repro.scalable.time_window import TimeWindowedProportionalPolicy
from repro.scalable.windowing import WindowedProportionalPolicy

__all__ = ["POLICY_FACTORIES", "available_policies", "make_policy"]

#: Factories keyed by policy name.  Each factory accepts the keyword
#: arguments documented by the corresponding policy class.
POLICY_FACTORIES: Dict[str, Callable[..., SelectionPolicy]] = {
    NoProvenancePolicy.name: NoProvenancePolicy,
    LeastRecentlyBornPolicy.name: LeastRecentlyBornPolicy,
    MostRecentlyBornPolicy.name: MostRecentlyBornPolicy,
    FifoPolicy.name: FifoPolicy,
    LifoPolicy.name: LifoPolicy,
    ProportionalDensePolicy.name: ProportionalDensePolicy,
    ProportionalSparsePolicy.name: ProportionalSparsePolicy,
    SelectiveProportionalPolicy.name: SelectiveProportionalPolicy,
    GroupedProportionalPolicy.name: GroupedProportionalPolicy,
    WindowedProportionalPolicy.name: WindowedProportionalPolicy,
    TimeWindowedProportionalPolicy.name: TimeWindowedProportionalPolicy,
    BudgetProportionalPolicy.name: BudgetProportionalPolicy,
    ReplayProvenance.name: ReplayProvenance,
}


def available_policies() -> List[str]:
    """Names of all registered policies, alphabetically sorted."""
    return sorted(POLICY_FACTORIES)


def make_policy(name: str, **kwargs) -> SelectionPolicy:
    """Instantiate the policy registered under ``name``.

    Keyword arguments are forwarded to the policy constructor, e.g.
    ``make_policy("proportional-budget", capacity=100)`` or
    ``make_policy("fifo", track_paths=True)``.

    Raises
    ------
    PolicyNotRegisteredError
        If ``name`` does not match any registered policy.
    """
    try:
        factory = POLICY_FACTORIES[name]
    except KeyError:
        known = ", ".join(available_policies())
        raise PolicyNotRegisteredError(
            f"unknown policy {name!r}; available policies: {known}"
        ) from None
    return factory(**kwargs)
