"""Abstract interface shared by every selection policy.

A *selection policy* decides which buffered quantity elements an interaction
relays out of the source buffer (Section 4 of the paper) and maintains
whatever annotation state is needed to answer provenance queries.  Policies
are driven by :class:`repro.core.engine.ProvenanceEngine`, which feeds them
interactions in time order and exposes their provenance state uniformly.

The minimal contract is:

* :meth:`SelectionPolicy.reset` — prepare empty buffers for a run.  Policies
  that need to know the full vertex universe up front (the dense
  proportional policy) receive it here.
* :meth:`SelectionPolicy.process` — apply one interaction.
* :meth:`SelectionPolicy.buffer_total` — the scalar ``|B_v|``.
* :meth:`SelectionPolicy.origins` — the decomposition ``O(t, B_v)``.
* :meth:`SelectionPolicy.tracked_vertices` — vertices with non-empty buffers.
* :meth:`SelectionPolicy.entry_count` — number of stored provenance entries,
  used by the memory accounting of the benchmark harness.

Annotation state itself lives in pluggable :mod:`repro.stores` backends:
every policy builds its per-role state through :meth:`_make_store` instead
of raw dicts, so a run can keep provenance in plain dicts (default), packed
numpy matrices, or an SQLite spill store — with bit-identical results.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, ClassVar, Dict, Iterable, Iterator, Optional, Sequence, Union

from repro.core.interaction import Interaction, Vertex
from repro.core.provenance import OriginSet
from repro.stores import ProvenanceStore, StoreSpec, StoreStats, resolve_store_spec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.blocks import InteractionBlock

__all__ = ["SelectionPolicy"]

#: How callers select a store backend: a spec, a backend name, or ``None``
#: (environment default, then plain dicts).
StoreArgument = Union[str, StoreSpec, None]


class SelectionPolicy(abc.ABC):
    """Base class of all quantity-selection / provenance-propagation policies."""

    #: Registry name of the policy (e.g. ``"fifo"``); set by subclasses.
    name: ClassVar[str] = ""

    #: Whether the policy maintains provenance annotations at all.  Only the
    #: NoProv baseline (Algorithm 1) sets this to False.
    tracks_provenance: ClassVar[bool] = True

    #: Whether the policy can also record transfer paths (how-provenance).
    supports_paths: ClassVar[bool] = False

    def __init__(self, *, store: StoreArgument = None) -> None:
        self._store_spec = resolve_store_spec(store)
        self._stores: Dict[str, ProvenanceStore] = {}

    # ------------------------------------------------------------------
    # provenance stores
    # ------------------------------------------------------------------
    @property
    def store_spec(self) -> StoreSpec:
        """The store specification this policy builds its state with."""
        spec = getattr(self, "_store_spec", None)
        return spec if spec is not None else resolve_store_spec(None)

    def _make_store(
        self, role: str, *, dimension: Optional[int] = None
    ) -> ProvenanceStore:
        """Build (and register) a fresh store for one state component.

        Called from ``__init__`` and ``reset``; the previous store of the
        same role, if any, is closed so spill files are released promptly.
        Subclasses that skip ``super().__init__`` still work — the spec
        falls back to the environment default.
        """
        registry = getattr(self, "_stores", None)
        if registry is None:
            registry = self._stores = {}
        old = registry.get(role)
        if old is not None:
            old.close()
        store = self.store_spec.create(role, dimension=dimension)
        registry[role] = store
        return store

    def stores(self) -> Dict[str, ProvenanceStore]:
        """The policy's provenance stores, keyed by state-component role.

        Any columnar mirror state is flushed first, so the returned stores
        are always authoritative (checkpoints, store statistics and
        cross-backend migration see identical state no matter how the
        policy was driven).
        """
        self._decolumnarise()
        return dict(getattr(self, "_stores", {}))

    def store_stats(self) -> Dict[str, StoreStats]:
        """Accounting snapshot of every store (entries, evictions, spill)."""
        return {role: store.stats() for role, store in self.stores().items()}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def reset(self, vertices: Sequence[Vertex] = ()) -> None:
        """Clear all buffers and prepare for a fresh run.

        Parameters
        ----------
        vertices:
            The vertex universe of the network, when known.  Policies with
            per-vertex dense state require it; entry-based policies ignore it
            and discover vertices lazily.
        """

    @abc.abstractmethod
    def process(self, interaction: Interaction) -> None:
        """Apply a single interaction to the policy state."""

    def process_many(self, interactions: Sequence[Interaction]) -> None:
        """Apply a batch of interactions, in order.

        Semantically equivalent to calling :meth:`process` once per element;
        the default implementation does exactly that (with the method lookup
        hoisted out of the loop).  Policies with dense or dict-based state
        override this with chunked implementations that amortise attribute
        lookups and bookkeeping over the whole batch — the same provenance
        state must result either way, bit for bit.
        """
        process = self.process
        for interaction in interactions:
            process(interaction)

    # ------------------------------------------------------------------
    # columnar execution
    # ------------------------------------------------------------------
    def process_block(self, block: "InteractionBlock") -> None:
        """Apply one columnar block of interactions, in order.

        Semantically equivalent to :meth:`process_many` over the block's
        rows.  The default adapter materialises the interaction objects so
        every policy works under columnar runs; the hot policies (noprov,
        proportional-dense, the entry-buffer family) override it with
        array kernels that never box a row — bit-identical to the object
        path, enforced by the equivalence suite under ``tests/columnar/``.
        """
        self.process_many(block.to_interactions())

    def process_run(self, block: "InteractionBlock") -> None:
        """Apply one whole-run (or large-chunk) columnar span, in order.

        The fused tier: the engine hands over the entire clip span between
        two sample/peak/checkpoint boundaries and the policy runs its inner
        loop without returning to Python between batches.  Semantically
        equivalent — bit for bit — to :meth:`process_block` over the same
        span; the default simply delegates there, which already *is* the
        pure fused backend (whole-span array kernels, preallocated
        scratch, no per-batch allocation).  Policies with compiled kernels
        (:mod:`repro.core.kernels`) override this to run the span through
        a numba- or C-compiled loop when one resolved, falling back to
        ``process_block`` otherwise.
        """
        self.process_block(block)

    def prepare_fused(self, block: "InteractionBlock" = None) -> None:
        """Resolve (and compile) any fused kernel backend ahead of time.

        The engine calls this before starting its run timer so backend
        compilation is measured outside the timed region.  The default is
        a no-op; kernel policies trigger :func:`repro.core.kernels.get_kernel`
        here.
        """

    def fused_backend(self) -> str:
        """Which backend :meth:`process_run` would use *right now*.

        ``"numba"`` / ``"cc"`` when a compiled kernel resolved, ``"numpy"``
        for the always-available pure fused path (array kernels driven over
        whole spans), ``"object"`` when the policy has no columnar kernel
        and spans go through the materialising adapter.
        """
        return "numpy" if self.has_columnar_kernel() else "object"

    def has_columnar_kernel(self) -> bool:
        """Whether :meth:`process_block` runs a real array kernel *right now*.

        Instance-level because kernels require direct access to the state
        (a dict-backed store): a policy whose annotation state lives in a
        spilling backend answers False and keeps the object fast paths.
        The engine's automatic columnar mode only engages when this is
        True; forcing ``columnar=True`` still works through the
        materialising adapter.
        """
        return False

    def _kernel_consistent(self, owner: type) -> bool:
        """Whether ``owner``'s columnar kernel is safe for this instance.

        A subclass that overrides ``process``/``process_many`` without also
        overriding ``process_block`` would be silently bypassed by the
        inherited kernel; in that case the kernel must report itself
        unavailable so such subclasses keep their object semantics (the
        materialising adapter calls the overridden methods).
        """
        cls = type(self)
        if cls.process_block is not owner.process_block:
            # The subclass ships its own kernel; nothing is bypassed.
            return True
        return cls.process is owner.process and cls.process_many is owner.process_many

    def _decolumnarise(self) -> None:
        """Flush any columnar mirror state back into the stores (no-op here).

        Kernel policies keep parts of their state in id-indexed arrays
        while blocks are flowing; every object-level entry point (``process``,
        ``process_many``, store access, pickling) calls this first so the
        dict-backed stores are always authoritative once object-level code
        looks at them.
        """

    def __getstate__(self):
        """Pickle the object-form state only (columnar mirrors are flushed).

        Checkpoints taken mid-columnar-run are therefore identical to
        checkpoints of an object run; transient array mirrors are rebuilt
        from the stores when the next block arrives.
        """
        self._decolumnarise()
        return dict(self.__dict__)

    def process_all(self, interactions: Iterable[Interaction]) -> int:
        """Apply every interaction of an iterable; returns the count processed.

        Convenience wrapper used by tests and small scripts; the benchmark
        harness drives policies through :class:`repro.core.engine.ProvenanceEngine`
        instead, which adds instrumentation.
        """
        count = 0
        for interaction in interactions:
            self.process(interaction)
            count += 1
        return count

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def buffer_total(self, vertex: Vertex) -> float:
        """The buffered quantity ``|B_v|`` of ``vertex`` (0.0 if untouched)."""

    @abc.abstractmethod
    def origins(self, vertex: Vertex) -> OriginSet:
        """The origin decomposition ``O(t, B_v)`` of ``vertex``'s buffer.

        Policies that do not track provenance return an empty set.
        """

    @abc.abstractmethod
    def tracked_vertices(self) -> Iterator[Vertex]:
        """Vertices whose buffers currently hold a positive quantity."""

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def entry_count(self) -> int:
        """Total number of provenance entries currently stored.

        For entry-based policies this is the number of buffered triples or
        pairs; for vector-based policies the number of non-zero vector
        positions (or ``|V|``-times-vertices for dense vectors).
        """

    def describe(self) -> str:
        """A short human-readable description used in reports."""
        return self.name or type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
