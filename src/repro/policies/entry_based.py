"""Shared machinery for entry-based selection policies.

The generation-time policies (Section 4.1) and the receipt-order policies
(Section 4.2) run exactly the same propagation loop (Algorithm 2): drain the
source buffer in the policy's selection order until the interaction quantity
is satisfied, then generate a newborn entry for any residue.  They differ
only in the buffer data structure (heap vs. FIFO queue vs. LIFO stack).
:class:`EntryBufferPolicy` captures the shared loop; concrete policies just
provide a buffer factory.

Both families optionally track transfer paths (how-provenance, Section 6):
with ``track_paths=True`` every buffer entry carries the sequence of vertices
it has travelled through, starting at its origin.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.core.blocks import InteractionBlock, VertexInterner
from repro.core.buffer import BufferEntry, QuantityBuffer
from repro.core.interaction import Interaction, Vertex
from repro.core.provenance import OriginSet
from repro.policies.base import SelectionPolicy, StoreArgument

__all__ = ["EntryBufferPolicy"]


class _ColumnarBuffers:
    """Id-indexed view of the per-vertex buffers during columnar runs.

    Unlike the scalar policies, no values are mirrored: ``buffers[i]`` is
    the *same* :class:`QuantityBuffer` object the store holds for the
    vertex with interner id ``i`` (buffers are mutated in place, so the
    store stays authoritative at all times).  The list only replaces the
    per-interaction dict hashing with integer indexing.
    """

    __slots__ = ("interner", "buffers")

    def __init__(self, interner: VertexInterner) -> None:
        self.interner = interner
        self.buffers: List[Optional[QuantityBuffer]] = [None] * len(interner)

    def grow(self, size: int) -> None:
        shortfall = size - len(self.buffers)
        if shortfall > 0:
            self.buffers.extend([None] * shortfall)


class EntryBufferPolicy(SelectionPolicy):
    """Algorithm 2 parameterised by the buffer organisation.

    Subclasses provide :meth:`make_buffer`, returning an empty
    :class:`~repro.core.buffer.QuantityBuffer` in the desired selection
    order.  Everything else — the residue loop, entry splitting, newborn
    generation and optional path extension — lives here.  The per-vertex
    buffers live in a :mod:`repro.stores` backend, so runs whose entry
    state outgrows memory can spill buffers to disk.
    """

    supports_paths = True

    def __init__(self, *, track_paths: bool = False, store: StoreArgument = None) -> None:
        super().__init__(store=store)
        self.track_paths = track_paths
        self._buffers = self._make_store("buffers")
        self._col: Optional[_ColumnarBuffers] = None

    # ------------------------------------------------------------------
    # to implement
    # ------------------------------------------------------------------
    def make_buffer(self) -> QuantityBuffer:
        """Return an empty buffer in this policy's selection order."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(self, vertices: Sequence[Vertex] = ()) -> None:
        self._col = None
        self._buffers = self._make_store("buffers")
        for vertex in vertices:
            self._buffers.put(vertex, self.make_buffer())

    def _buffer(self, vertex: Vertex) -> QuantityBuffer:
        return self._buffers.get_or_create(vertex, self.make_buffer)

    def process(self, interaction: Interaction) -> None:
        self._decolumnarise()
        source_buffer = self._buffer(interaction.source)
        destination_buffer = self._buffer(interaction.destination)

        # Drain the source buffer in selection order (Algorithm 2, lines 6-17).
        transferred = source_buffer.drain(interaction.quantity)
        relayed_quantity = sum(entry.quantity for entry in transferred)
        for entry in transferred:
            if self.track_paths:
                entry.path = self._extend_path(entry.path, interaction.source)
            destination_buffer.push(entry)

        # Generate a newborn entry for the residue (lines 18-21).
        residue = interaction.quantity - relayed_quantity
        if residue > 1e-12:
            newborn = BufferEntry(
                origin=interaction.source,
                quantity=residue,
                birth_time=interaction.time,
                path=(interaction.source,) if self.track_paths else None,
            )
            destination_buffer.push(newborn)

    def process_many(self, interactions: Sequence[Interaction]) -> None:
        """Batched Algorithm 2: the propagation loop with hoisted lookups.

        Bit-identical to repeated :meth:`process` calls — the relayed
        quantity accumulates left to right exactly like the ``sum()`` of
        the per-interaction path.  With a dict-backed store the loop runs
        against the raw dict; spilling backends run the same loop through
        the store interface.
        """
        self._decolumnarise()
        raw = self._buffers.raw_dict()
        make_buffer = self.make_buffer
        track_paths = self.track_paths
        extend_path = self._extend_path
        if raw is not None:
            get = raw.get
            for interaction in interactions:
                source = interaction.source
                destination = interaction.destination
                source_buffer = get(source)
                if source_buffer is None:
                    source_buffer = make_buffer()
                    raw[source] = source_buffer
                destination_buffer = get(destination)
                if destination_buffer is None:
                    destination_buffer = make_buffer()
                    raw[destination] = destination_buffer

                transferred = source_buffer.drain(interaction.quantity)
                push = destination_buffer.push
                relayed_quantity = 0.0
                for entry in transferred:
                    relayed_quantity += entry.quantity
                    if track_paths:
                        entry.path = extend_path(entry.path, source)
                    push(entry)

                residue = interaction.quantity - relayed_quantity
                if residue > 1e-12:
                    push(
                        BufferEntry(
                            origin=source,
                            quantity=residue,
                            birth_time=interaction.time,
                            path=(source,) if track_paths else None,
                        )
                    )
            return
        get_or_create = self._buffers.get_or_create
        for interaction in interactions:
            source = interaction.source
            source_buffer = get_or_create(source, make_buffer)
            destination_buffer = get_or_create(interaction.destination, make_buffer)

            transferred = source_buffer.drain(interaction.quantity)
            push = destination_buffer.push
            relayed_quantity = 0.0
            for entry in transferred:
                relayed_quantity += entry.quantity
                if track_paths:
                    entry.path = extend_path(entry.path, source)
                push(entry)

            residue = interaction.quantity - relayed_quantity
            if residue > 1e-12:
                push(
                    BufferEntry(
                        origin=source,
                        quantity=residue,
                        birth_time=interaction.time,
                        path=(source,) if track_paths else None,
                    )
                )

    # ------------------------------------------------------------------
    # columnar execution
    # ------------------------------------------------------------------
    def has_columnar_kernel(self) -> bool:
        return (
            self._kernel_consistent(EntryBufferPolicy)
            and self._buffers.raw_dict() is not None
        )

    def _ensure_columnar(self, interner: VertexInterner) -> _ColumnarBuffers:
        col = self._col
        if col is not None and col.interner is interner:
            col.grow(len(interner))
            return col
        # Seeding is lazy: the kernel consults the store dict on a list
        # miss before creating a buffer, so a large pre-registered universe
        # costs one lookup per *touched* vertex instead of an upfront
        # interning pass over every store key.
        col = _ColumnarBuffers(interner)
        self._col = col
        return col

    def _decolumnarise(self) -> None:
        # The store holds the same live buffer objects the id-list points
        # at (new buffers are registered on creation), so there is nothing
        # to flush — only the id-indexed view to drop.
        self._col = None

    #: Internal span size of the fused entry-buffer drive.  The kernel is a
    #: sequential Python pass, so splitting a clip span is invisible to the
    #: results — but ``column_lists`` materialises the span as Python lists,
    #: and list-sized working sets beyond the cache cost more than the
    #: per-call overhead they save.  2**16 rows keeps the lists cache-warm.
    _FUSED_SPAN = 65536

    def process_run(self, block: InteractionBlock) -> None:
        """Fused Algorithm 2: whole clip spans through the Python kernel.

        The entry-buffer kernel is a single sequential pass with every
        lookup hoisted, so fusion here is driving it over clip spans
        instead of fixed-size batches.  Spans are walked in cache-sized
        sub-slices (``_FUSED_SPAN``) — a pure iteration-order no-op, so
        results stay bit-identical to any other chunking of the same span.
        """
        span = self._FUSED_SPAN
        total = len(block)
        if total <= span:
            self.process_block(block)
            return
        for start in range(0, total, span):
            self.process_block(block.slice(start, min(start + span, total)))

    def process_block(self, block: InteractionBlock) -> None:
        """Columnar Algorithm 2: id-keyed buffer list, run-grouped lookups.

        Bit-identical to the batched object path; the representation-level
        savings are interned ids instead of vertex hashing and a cached
        source buffer across runs of consecutive interactions sharing a
        source (common in edge-reuse-heavy streams).  Falls back to the
        object adapter when the buffer store is not dict-backed.
        """
        if not self.has_columnar_kernel():
            super().process_block(block)
            return
        col = self._ensure_columnar(block.interner)
        buffers = col.buffers
        raw = self._buffers.raw_dict()
        raw_get = raw.get
        vertices = block.interner.vertices
        make_buffer = self.make_buffer
        track_paths = self.track_paths
        extend_path = self._extend_path
        sources, destinations, times, quantities = block.column_lists()
        previous_source = -1
        source_buffer: Optional[QuantityBuffer] = None
        for source, destination, quantity, time in zip(
            sources, destinations, quantities, times
        ):
            if source != previous_source:
                source_buffer = buffers[source]
                if source_buffer is None:
                    vertex = vertices[source]
                    source_buffer = raw_get(vertex)
                    if source_buffer is None:
                        source_buffer = make_buffer()
                        raw[vertex] = source_buffer
                    buffers[source] = source_buffer
                previous_source = source
            destination_buffer = buffers[destination]
            if destination_buffer is None:
                vertex = vertices[destination]
                destination_buffer = raw_get(vertex)
                if destination_buffer is None:
                    destination_buffer = make_buffer()
                    raw[vertex] = destination_buffer
                buffers[destination] = destination_buffer

            # An empty source buffer (zero total and no entries) relays
            # nothing; skipping its drain call is branch-for-branch what
            # drain() itself would decide.
            if source_buffer._total > 0.0 or len(source_buffer) > 0:
                transferred = source_buffer.drain(quantity)
                push = destination_buffer.push
                relayed_quantity = 0.0
                if track_paths:
                    source_vertex = vertices[source]
                    for entry in transferred:
                        relayed_quantity += entry.quantity
                        entry.path = extend_path(entry.path, source_vertex)
                        push(entry)
                else:
                    for entry in transferred:
                        relayed_quantity += entry.quantity
                        push(entry)
                residue = quantity - relayed_quantity
            else:
                residue = quantity
            if residue > 1e-12:
                source_vertex = vertices[source]
                destination_buffer.push(
                    BufferEntry(
                        origin=source_vertex,
                        quantity=residue,
                        birth_time=time,
                        path=(source_vertex,) if track_paths else None,
                    )
                )

    @staticmethod
    def _extend_path(path: Tuple[Vertex, ...], transmitter: Vertex) -> Tuple[Vertex, ...]:
        """Append the transmitting vertex to an entry's path."""
        if path is None:
            # Entries created before path tracking was enabled: start a path
            # at the transmitter so downstream statistics stay consistent.
            return (transmitter,)
        return path + (transmitter,)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def buffer_total(self, vertex: Vertex) -> float:
        buffer = self._buffers.get(vertex)
        return buffer.total if buffer is not None else 0.0

    def origins(self, vertex: Vertex) -> OriginSet:
        buffer = self._buffers.get(vertex)
        return buffer.origins() if buffer is not None else OriginSet()

    def entries(self, vertex: Vertex) -> List[BufferEntry]:
        """The raw buffer entries of ``vertex`` (copy; order unspecified)."""
        buffer = self._buffers.get(vertex)
        if buffer is None:
            return []
        return [entry.copy() for entry in buffer.entries()]

    def paths(self, vertex: Vertex) -> List[Tuple[Tuple[Vertex, ...], float]]:
        """``(path, quantity)`` pairs for every entry buffered at ``vertex``.

        Only meaningful when the policy was created with ``track_paths=True``;
        otherwise every path is ``None``-free but trivially short.
        """
        buffer = self._buffers.get(vertex)
        if buffer is None:
            return []
        result = []
        for entry in buffer.entries():
            path = entry.path if entry.path is not None else (entry.origin,)
            result.append((path, entry.quantity))
        return result

    def tracked_vertices(self) -> Iterator[Vertex]:
        return (
            vertex for vertex, buffer in self._buffers.items() if buffer.total > 0
        )

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        # entry_total(len) is incremental on spilling backends: counting
        # entries does not deserialise the cold tier.
        return self._buffers.entry_total()

    def path_length_total(self) -> Tuple[int, int]:
        """``(total hops, entry count)`` over all buffered entries.

        A path's hop count is ``len(path) - 1``: the number of relays the
        entry experienced after being generated.  Used for the average path
        length column of Table 10.
        """
        hops = 0
        entries = 0
        for buffer in self._buffers.values():
            for entry in buffer.entries():
                entries += 1
                if entry.path is not None:
                    hops += max(len(entry.path) - 1, 0)
        return hops, entries
