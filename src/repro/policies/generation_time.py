"""Selection based on generation time (Section 4.1, Algorithm 2).

Buffers are organised as heaps of ``(origin, birth_time, quantity)`` triples
keyed by birth time.  The *least recently born* policy selects the oldest
quantities first (min-heap); the *most recently born* policy selects the
newest first (max-heap).

Applications (from the paper): least-recently-born fits scenarios where
quantities lose value or expire over time, so vertices prefer to keep the
most recently generated data; most-recently-born fits scenarios where
quantities gain antiquity value.
"""

from __future__ import annotations

from repro.core.buffer import HeapBuffer, QuantityBuffer
from repro.policies.entry_based import EntryBufferPolicy

__all__ = ["LeastRecentlyBornPolicy", "MostRecentlyBornPolicy"]


class LeastRecentlyBornPolicy(EntryBufferPolicy):
    """Relay the oldest-born quantities first (min-heap buffers)."""

    name = "lrb"

    def make_buffer(self) -> QuantityBuffer:
        return HeapBuffer(oldest_first=True)


class MostRecentlyBornPolicy(EntryBufferPolicy):
    """Relay the most recently born quantities first (max-heap buffers)."""

    name = "mrb"

    def make_buffer(self) -> QuantityBuffer:
        return HeapBuffer(oldest_first=False)
