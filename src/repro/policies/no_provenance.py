"""The NoProv baseline: quantity propagation without provenance (Algorithm 1).

This policy only maintains the scalar buffer totals ``|B_v|``.  It is the
reference point of Tables 7 and 8 in the paper (column "No Provenance") and
is also reused internally to compute per-vertex generated quantities (for
top-k selection) and as the ground truth for the quantity-conservation
invariant checked by the test suite.

Both scalar maps (buffer totals and generated quantities) live in
:mod:`repro.stores` backends; the batched path keeps its raw-dict fast loop
whenever the configured backend is dict-based, and the columnar path
(:meth:`NoProvenancePolicy.process_block`) replaces the dicts entirely with
id-indexed total arrays while blocks are flowing.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.core.blocks import InteractionBlock, VertexInterner
from repro.core.interaction import Interaction, Vertex
from repro.core.provenance import OriginSet
from repro.policies.base import SelectionPolicy, StoreArgument

__all__ = ["NoProvenancePolicy"]


class _ColumnarTotals:
    """Id-indexed mirror of the two scalar stores during columnar runs.

    ``buffers``/``generated`` are plain Python lists indexed by interner id
    (list indexing by int is the cheapest keyed access in CPython — faster
    than dict hashing and much faster than boxing numpy scalars).
    ``touched`` marks ids that the object path would have inserted into the
    buffer dict; ``generated_order`` records the first-newborn order so the
    flush reproduces the object path's dict insertion order exactly.
    """

    __slots__ = (
        "interner",
        "buffers",
        "generated",
        "touched",
        "generated_order",
        "buffers_arr",
        "generated_arr",
        "array_mode",
    )

    def __init__(self, interner: VertexInterner) -> None:
        self.interner = interner
        size = len(interner)
        self.buffers: List[float] = [0.0] * size
        self.generated: List[float] = [0.0] * size
        self.touched = np.zeros(size, dtype=bool)
        self.generated_order: List[int] = []
        # Compiled fused kernels operate on float64 arrays instead of the
        # Python lists; the mirror converts once per representation switch
        # (not per chunk) and tracks which side is authoritative.
        self.buffers_arr: Optional[np.ndarray] = None
        self.generated_arr: Optional[np.ndarray] = None
        self.array_mode = False

    def to_arrays(self) -> tuple:
        """Make the float64 array representation authoritative (idempotent)."""
        if not self.array_mode:
            self.buffers_arr = np.array(self.buffers, dtype=np.float64)
            self.generated_arr = np.array(self.generated, dtype=np.float64)
            self.array_mode = True
        return self.buffers_arr, self.generated_arr

    def to_lists(self) -> None:
        """Make the Python-list representation authoritative (idempotent).

        ``tolist()`` round-trips float64 values exactly, so switching
        representations never perturbs a bit.
        """
        if self.array_mode:
            self.buffers = self.buffers_arr.tolist()
            self.generated = self.generated_arr.tolist()
            self.buffers_arr = None
            self.generated_arr = None
            self.array_mode = False

    def grow(self, size: int) -> None:
        current = len(self.buffers_arr) if self.array_mode else len(self.buffers)
        shortfall = size - current
        if shortfall > 0:
            self.to_lists()
            self.buffers.extend([0.0] * shortfall)
            self.generated.extend([0.0] * shortfall)
            touched = np.zeros(size, dtype=bool)
            touched[: len(self.touched)] = self.touched
            self.touched = touched


class NoProvenancePolicy(SelectionPolicy):
    """Algorithm 1: relay quantities and track only buffer totals."""

    name = "noprov"
    tracks_provenance = False
    supports_paths = False

    def __init__(self, *, store: StoreArgument = None) -> None:
        super().__init__(store=store)
        self._buffers = self._make_store("buffers")
        self._generated = self._make_store("generated")
        self._col: Optional[_ColumnarTotals] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(self, vertices: Sequence[Vertex] = ()) -> None:
        self._col = None
        self._buffers = self._make_store("buffers")
        self._generated = self._make_store("generated")
        for vertex in vertices:
            self._buffers.put(vertex, 0.0)

    def process(self, interaction: Interaction) -> None:
        self._decolumnarise()
        buffers = self._buffers
        source = interaction.source
        quantity = interaction.quantity
        available = buffers.get(source)
        if available is None:
            available = 0.0
        relayed = min(quantity, available)
        newborn = quantity - relayed
        buffers.put(source, available - relayed)
        buffers.merge(interaction.destination, quantity)
        if newborn > 0:
            self._generated.merge(source, newborn)

    def process_many(self, interactions: Sequence[Interaction]) -> None:
        """Batched Algorithm 1: the per-interaction arithmetic inlined.

        Produces exactly the state :meth:`process` would (same operations in
        the same order); only the Python-level overhead — attribute lookups
        and the call per interaction — is amortised over the batch.  With a
        dict-backed store the loop runs against the raw dicts; other
        backends run the same arithmetic through the store interface.
        """
        self._decolumnarise()
        buffers = self._buffers.raw_dict()
        generated = self._generated.raw_dict()
        if buffers is None or generated is None:
            buffers_get = self._buffers.get
            buffers_put = self._buffers.put
            buffers_merge = self._buffers.merge
            generated_merge = self._generated.merge
            for interaction in interactions:
                source = interaction.source
                quantity = interaction.quantity
                available = buffers_get(source)
                if available is None:
                    available = 0.0
                relayed = min(quantity, available)
                newborn = quantity - relayed
                buffers_put(source, available - relayed)
                buffers_merge(interaction.destination, quantity)
                if newborn > 0:
                    generated_merge(source, newborn)
            return
        for interaction in interactions:
            source = interaction.source
            quantity = interaction.quantity
            available = buffers.get(source, 0.0)
            relayed = min(quantity, available)
            newborn = quantity - relayed
            buffers[source] = available - relayed
            destination = interaction.destination
            buffers[destination] = buffers.get(destination, 0.0) + quantity
            if newborn > 0:
                generated[source] = generated.get(source, 0.0) + newborn

    # ------------------------------------------------------------------
    # columnar execution
    # ------------------------------------------------------------------
    def has_columnar_kernel(self) -> bool:
        return (
            self._kernel_consistent(NoProvenancePolicy)
            and self._buffers.raw_dict() is not None
            and self._generated.raw_dict() is not None
        )

    def _ensure_columnar(self, interner: VertexInterner) -> _ColumnarTotals:
        col = self._col
        if col is not None and col.interner is interner:
            col.grow(len(interner))
            return col
        if col is not None:
            self._decolumnarise()
        intern = interner.intern
        # Interning the existing store keys (reset universe, resumed state)
        # may grow the table; size the arrays afterwards.
        buffer_items = [(intern(v), value) for v, value in self._buffers.raw_dict().items()]
        generated_items = [
            (intern(v), value) for v, value in self._generated.raw_dict().items()
        ]
        col = _ColumnarTotals(interner)
        for vertex_id, value in buffer_items:
            col.buffers[vertex_id] = value
            col.touched[vertex_id] = True
        for vertex_id, value in generated_items:
            col.generated[vertex_id] = value
            col.generated_order.append(vertex_id)
        self._col = col
        return col

    def _decolumnarise(self) -> None:
        col = self._col
        if col is None:
            return
        self._col = None
        col.to_lists()
        vertices = col.interner.vertices
        raw = self._buffers.raw_dict()
        buffers = col.buffers
        # Ascending id order equals first-appearance order (sources before
        # destinations, row by row), which is exactly the insertion order of
        # the object path's dict — iteration-order-sensitive consumers see
        # identical state.
        for vertex_id in np.flatnonzero(col.touched).tolist():
            raw[vertices[vertex_id]] = buffers[vertex_id]
        raw_generated = self._generated.raw_dict()
        generated = col.generated
        for vertex_id in col.generated_order:
            raw_generated[vertices[vertex_id]] = generated[vertex_id]

    def process_block(self, block: InteractionBlock) -> None:
        """Columnar Algorithm 1: id-indexed total arrays, no dict hashing.

        Bit-identical to :meth:`process` (same arithmetic in the same
        order); only the representation changes — vertex keys become
        interned ids, the two dicts become flat lists.  Falls back to the
        object adapter when the stores are not dict-backed (spilling
        backends own their state).
        """
        if not self.has_columnar_kernel():
            super().process_block(block)
            return
        col = self._ensure_columnar(block.interner)
        col.to_lists()
        buffers = col.buffers
        generated = col.generated
        generated_order = col.generated_order
        col.touched[block.src_ids] = True
        col.touched[block.dst_ids] = True
        sources, destinations, _times, quantities = block.column_lists()
        for source, destination, quantity in zip(sources, destinations, quantities):
            available = buffers[source]
            if quantity < available:
                buffers[source] = available - quantity
            else:
                buffers[source] = 0.0
                if quantity > available:
                    if generated[source] == 0.0:
                        generated_order.append(source)
                    generated[source] += quantity - available
            buffers[destination] += quantity

    # ------------------------------------------------------------------
    # fused execution
    # ------------------------------------------------------------------
    def _fused_handle(self):
        """The compiled whole-run kernel, or ``None`` for the pure path.

        ``None`` also when a subclass ships its own ``process_block``: the
        compiled loop replicates *this class's* kernel, and bypassing an
        override would silently change subclass semantics — the fused
        drive then routes through ``self.process_block`` instead.
        """
        if type(self).process_block is not NoProvenancePolicy.process_block:
            return None
        if not self.has_columnar_kernel():
            return None
        from repro.core import kernels

        return kernels.get_kernel("noprov")

    def prepare_fused(self, block: Optional[InteractionBlock] = None) -> None:
        self._fused_handle()

    def fused_backend(self) -> str:
        if not self.has_columnar_kernel():
            return "object"
        handle = self._fused_handle()
        return "numpy" if handle is None else handle.backend

    def process_run(self, block: InteractionBlock) -> None:
        """Fused Algorithm 1: the whole clip span in one compiled call.

        Bit-identical to :meth:`process_block` over the same span — the
        compiled loop replicates its arithmetic operation for operation
        (verified against a pure reference at build time).  Falls back to
        the per-block kernel when no compiled backend resolved or the
        stores are not dict-backed.
        """
        handle = self._fused_handle()
        if handle is None:
            self.process_block(block)
            return
        col = self._ensure_columnar(block.interner)
        src_ids = np.ascontiguousarray(block.src_ids, dtype=np.int32)
        dst_ids = np.ascontiguousarray(block.dst_ids, dtype=np.int32)
        quantities = np.ascontiguousarray(block.quantities, dtype=np.float64)
        col.touched[src_ids] = True
        col.touched[dst_ids] = True
        buffers_arr, generated_arr = col.to_arrays()
        # Every vertex enters generated_order at most once, so the span can
        # append at most the whole universe.
        order_out = np.empty(len(buffers_arr), dtype=np.int64)
        appended = handle.fn(
            src_ids, dst_ids, quantities, buffers_arr, generated_arr, order_out
        )
        if appended:
            col.generated_order.extend(order_out[:appended].tolist())

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def buffer_total(self, vertex: Vertex) -> float:
        col = self._col
        if col is not None:
            vertex_id = col.interner.get_id(vertex)
            if vertex_id < 0:
                return 0.0
            if col.array_mode:
                return float(col.buffers_arr[vertex_id])
            return col.buffers[vertex_id]
        return self._buffers.get(vertex, 0.0)

    def origins(self, vertex: Vertex) -> OriginSet:
        """NoProv stores no provenance; always returns an empty set."""
        return OriginSet()

    def tracked_vertices(self) -> Iterator[Vertex]:
        self._decolumnarise()
        return (vertex for vertex, total in self._buffers.items() if total > 0)

    def generated_quantity(self, vertex: Vertex) -> float:
        col = self._col
        if col is not None:
            vertex_id = col.interner.get_id(vertex)
            if vertex_id < 0:
                return 0.0
            if col.array_mode:
                return float(col.generated_arr[vertex_id])
            return col.generated[vertex_id]
        return self._generated.get(vertex, 0.0)

    def generated_quantities(self) -> Dict[Vertex, float]:
        """Mapping of every generating vertex to its total newborn quantity."""
        self._decolumnarise()
        return self._generated.snapshot()

    def total_generated(self) -> float:
        """Total newborn quantity injected into the network so far."""
        self._decolumnarise()
        return sum(self._generated.values())

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        col = self._col
        if col is not None:
            return int(np.count_nonzero(col.touched))
        return len(self._buffers)
