"""The NoProv baseline: quantity propagation without provenance (Algorithm 1).

This policy only maintains the scalar buffer totals ``|B_v|``.  It is the
reference point of Tables 7 and 8 in the paper (column "No Provenance") and
is also reused internally to compute per-vertex generated quantities (for
top-k selection) and as the ground truth for the quantity-conservation
invariant checked by the test suite.

Both scalar maps (buffer totals and generated quantities) live in
:mod:`repro.stores` backends; the batched path keeps its raw-dict fast loop
whenever the configured backend is dict-based.
"""

from __future__ import annotations

from typing import Dict, Iterator, Sequence

from repro.core.interaction import Interaction, Vertex
from repro.core.provenance import OriginSet
from repro.policies.base import SelectionPolicy, StoreArgument

__all__ = ["NoProvenancePolicy"]


class NoProvenancePolicy(SelectionPolicy):
    """Algorithm 1: relay quantities and track only buffer totals."""

    name = "noprov"
    tracks_provenance = False
    supports_paths = False

    def __init__(self, *, store: StoreArgument = None) -> None:
        super().__init__(store=store)
        self._buffers = self._make_store("buffers")
        self._generated = self._make_store("generated")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(self, vertices: Sequence[Vertex] = ()) -> None:
        self._buffers = self._make_store("buffers")
        self._generated = self._make_store("generated")
        for vertex in vertices:
            self._buffers.put(vertex, 0.0)

    def process(self, interaction: Interaction) -> None:
        buffers = self._buffers
        source = interaction.source
        quantity = interaction.quantity
        available = buffers.get(source)
        if available is None:
            available = 0.0
        relayed = min(quantity, available)
        newborn = quantity - relayed
        buffers.put(source, available - relayed)
        buffers.merge(interaction.destination, quantity)
        if newborn > 0:
            self._generated.merge(source, newborn)

    def process_many(self, interactions: Sequence[Interaction]) -> None:
        """Batched Algorithm 1: the per-interaction arithmetic inlined.

        Produces exactly the state :meth:`process` would (same operations in
        the same order); only the Python-level overhead — attribute lookups
        and the call per interaction — is amortised over the batch.  With a
        dict-backed store the loop runs against the raw dicts; other
        backends run the same arithmetic through the store interface.
        """
        buffers = self._buffers.raw_dict()
        generated = self._generated.raw_dict()
        if buffers is None or generated is None:
            buffers_get = self._buffers.get
            buffers_put = self._buffers.put
            buffers_merge = self._buffers.merge
            generated_merge = self._generated.merge
            for interaction in interactions:
                source = interaction.source
                quantity = interaction.quantity
                available = buffers_get(source)
                if available is None:
                    available = 0.0
                relayed = min(quantity, available)
                newborn = quantity - relayed
                buffers_put(source, available - relayed)
                buffers_merge(interaction.destination, quantity)
                if newborn > 0:
                    generated_merge(source, newborn)
            return
        for interaction in interactions:
            source = interaction.source
            quantity = interaction.quantity
            available = buffers.get(source, 0.0)
            relayed = min(quantity, available)
            newborn = quantity - relayed
            buffers[source] = available - relayed
            destination = interaction.destination
            buffers[destination] = buffers.get(destination, 0.0) + quantity
            if newborn > 0:
                generated[source] = generated.get(source, 0.0) + newborn

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def buffer_total(self, vertex: Vertex) -> float:
        return self._buffers.get(vertex, 0.0)

    def origins(self, vertex: Vertex) -> OriginSet:
        """NoProv stores no provenance; always returns an empty set."""
        return OriginSet()

    def tracked_vertices(self) -> Iterator[Vertex]:
        return (vertex for vertex, total in self._buffers.items() if total > 0)

    def generated_quantity(self, vertex: Vertex) -> float:
        """Total newborn quantity generated at ``vertex`` so far."""
        return self._generated.get(vertex, 0.0)

    def generated_quantities(self) -> Dict[Vertex, float]:
        """Mapping of every generating vertex to its total newborn quantity."""
        return self._generated.snapshot()

    def total_generated(self) -> float:
        """Total newborn quantity injected into the network so far."""
        return sum(self._generated.values())

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        return len(self._buffers)
