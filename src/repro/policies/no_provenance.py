"""The NoProv baseline: quantity propagation without provenance (Algorithm 1).

This policy only maintains the scalar buffer totals ``|B_v|``.  It is the
reference point of Tables 7 and 8 in the paper (column "No Provenance") and
is also reused internally to compute per-vertex generated quantities (for
top-k selection) and as the ground truth for the quantity-conservation
invariant checked by the test suite.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Sequence

from repro.core.interaction import Interaction, Vertex
from repro.core.provenance import OriginSet
from repro.policies.base import SelectionPolicy

__all__ = ["NoProvenancePolicy"]


class NoProvenancePolicy(SelectionPolicy):
    """Algorithm 1: relay quantities and track only buffer totals."""

    name = "noprov"
    tracks_provenance = False
    supports_paths = False

    def __init__(self) -> None:
        self._buffers: Dict[Vertex, float] = defaultdict(float)
        self._generated: Dict[Vertex, float] = defaultdict(float)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(self, vertices: Sequence[Vertex] = ()) -> None:
        self._buffers = defaultdict(float)
        self._generated = defaultdict(float)
        for vertex in vertices:
            self._buffers[vertex] = 0.0

    def process(self, interaction: Interaction) -> None:
        source = interaction.source
        destination = interaction.destination
        available = self._buffers[source]
        relayed = min(interaction.quantity, available)
        newborn = interaction.quantity - relayed
        self._buffers[source] = available - relayed
        self._buffers[destination] += interaction.quantity
        if newborn > 0:
            self._generated[source] += newborn

    def process_many(self, interactions: Sequence[Interaction]) -> None:
        """Batched Algorithm 1: the per-interaction arithmetic inlined.

        Produces exactly the state :meth:`process` would (same operations in
        the same order); only the Python-level overhead — attribute lookups
        and the call per interaction — is amortised over the batch.
        """
        buffers = self._buffers
        generated = self._generated
        for interaction in interactions:
            source = interaction.source
            quantity = interaction.quantity
            available = buffers[source]
            relayed = min(quantity, available)
            newborn = quantity - relayed
            buffers[source] = available - relayed
            buffers[interaction.destination] += quantity
            if newborn > 0:
                generated[source] += newborn

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def buffer_total(self, vertex: Vertex) -> float:
        return self._buffers.get(vertex, 0.0)

    def origins(self, vertex: Vertex) -> OriginSet:
        """NoProv stores no provenance; always returns an empty set."""
        return OriginSet()

    def tracked_vertices(self) -> Iterator[Vertex]:
        return (vertex for vertex, total in self._buffers.items() if total > 0)

    def generated_quantity(self, vertex: Vertex) -> float:
        """Total newborn quantity generated at ``vertex`` so far."""
        return self._generated.get(vertex, 0.0)

    def generated_quantities(self) -> Dict[Vertex, float]:
        """Mapping of every generating vertex to its total newborn quantity."""
        return dict(self._generated)

    def total_generated(self) -> float:
        """Total newborn quantity injected into the network so far."""
        return sum(self._generated.values())

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        return len(self._buffers)
