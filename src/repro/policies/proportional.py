"""Proportional selection (Section 4.3, Algorithm 3).

When an interaction relays less than the source's buffered quantity, the
relayed quantity is drawn *proportionally* from every origin that has
contributed to the source buffer.  Each vertex ``v`` therefore carries a
provenance vector ``p_v`` whose ``i``-th component is the quantity in
``B_v`` originating from vertex ``i``; the vector sums to ``|B_v|``.

Two representations are provided, mirroring the paper:

* :class:`ProportionalDensePolicy` stores one dense numpy vector of length
  ``|V|`` per touched vertex.  Vector-wise numpy operations play the role of
  the SIMD instructions used by the authors' C implementation.  Space is
  ``O(|V|^2)`` so this is practical only for networks with few vertices
  (Flights, Taxis).
* :class:`ProportionalSparsePolicy` stores each ``p_v`` as a dict of
  ``origin -> quantity`` holding only non-zero components — the ordered-list
  representation of the paper, with the merge performed by dictionary
  arithmetic.  Space is ``O(|V| * l)`` where ``l`` is the average number of
  contributing origins per vertex, which the paper (and our Figure 6 bench)
  shows can still grow too large on big networks.

Applications (from the paper): buffers whose contents are naturally mixed —
liquids in tanks, indistinguishable financial units in account balances.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence

import numpy as np

from repro.core.interaction import Interaction, Vertex
from repro.core.provenance import OriginSet
from repro.exceptions import PolicyConfigurationError, UnknownVertexError
from repro.policies.base import SelectionPolicy, StoreArgument

__all__ = ["ProportionalDensePolicy", "ProportionalSparsePolicy"]

# Quantities below this threshold are treated as zero when pruning sparse
# vectors; proportional splits otherwise accumulate microscopic residues
# that bloat the provenance lists without carrying information.
_PRUNE_EPSILON = 1e-12


class ProportionalDensePolicy(SelectionPolicy):
    """Algorithm 3 with dense numpy provenance vectors.

    The vertex universe must be known before processing starts; pass it via
    :meth:`reset` (the engine does this automatically when it is given a
    :class:`~repro.core.network.TemporalInteractionNetwork`).
    """

    name = "proportional-dense"
    tracks_provenance = True
    supports_paths = False

    def __init__(
        self,
        vertices: Optional[Sequence[Vertex]] = None,
        *,
        store: StoreArgument = None,
    ) -> None:
        super().__init__(store=store)
        self._index: Dict[Vertex, int] = {}
        self._order: list = []
        self._vectors = self._make_store("vectors")
        self._totals = self._make_store("totals")
        if vertices is not None:
            self.reset(vertices)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(self, vertices: Sequence[Vertex] = ()) -> None:
        self._index = {vertex: position for position, vertex in enumerate(vertices)}
        self._order = list(vertices)
        if not self._index:
            raise PolicyConfigurationError(
                "ProportionalDensePolicy needs the full vertex universe; "
                "construct it with vertices or run it on a "
                "TemporalInteractionNetwork rather than a bare interaction stream"
            )
        self._vectors = self._make_store("vectors", dimension=len(self._index))
        self._totals = self._make_store("totals")

    def _zero_vector(self) -> np.ndarray:
        return np.zeros(len(self._index), dtype=np.float64)

    def _vector(self, vertex: Vertex) -> np.ndarray:
        return self._vectors.get_or_create(vertex, self._zero_vector)

    def _position(self, vertex: Vertex) -> int:
        try:
            return self._index[vertex]
        except KeyError:
            raise UnknownVertexError(
                f"vertex {vertex!r} was not part of the universe given to reset()"
            ) from None

    def process(self, interaction: Interaction) -> None:
        source = interaction.source
        destination = interaction.destination
        quantity = interaction.quantity
        # Both endpoints must belong to the universe fixed at reset time.
        self._position(source)
        self._position(destination)
        totals = self._totals
        source_total = totals.get(source, 0.0)

        source_vector = self._vector(source)
        destination_vector = self._vector(destination)

        if quantity >= source_total:
            # Relay the whole source buffer, then generate the residue at the
            # source (Algorithm 3, lines 5-7).
            destination_vector += source_vector
            newborn = quantity - source_total
            if newborn > 0:
                destination_vector[self._position(source)] += newborn
            source_vector[:] = 0.0
            totals.put(source, 0.0)
            totals.merge(destination, quantity)
        else:
            # Proportional split (lines 9-10).
            fraction = quantity / source_total
            moved = source_vector * fraction
            destination_vector += moved
            source_vector -= moved
            totals.put(source, source_total - quantity)
            totals.merge(destination, quantity)

    def process_many(self, interactions: Sequence[Interaction]) -> None:
        """Batched Algorithm 3 over dense vectors.

        Replays the exact arithmetic of :meth:`process` (same numpy
        operations, same order, hence bit-identical vectors) with the state
        stores, the vertex index and the vector accessors held in locals,
        amortising the per-interaction Python overhead over the batch.
        Dict-backed stores are driven through their raw dicts; the dense
        and sqlite backends run the same arithmetic through the store
        interface.
        """
        index = self._index
        vectors = self._vectors.raw_dict()
        totals = self._totals.raw_dict()
        universe = len(index)
        zeros = np.zeros
        if vectors is None or totals is None:
            vector_of = self._vector
            totals_get = self._totals.get
            totals_put = self._totals.put
            totals_merge = self._totals.merge
            for interaction in interactions:
                source = interaction.source
                destination = interaction.destination
                quantity = interaction.quantity
                if source not in index:
                    self._position(source)
                if destination not in index:
                    self._position(destination)
                source_total = totals_get(source, 0.0)

                source_vector = vector_of(source)
                destination_vector = vector_of(destination)

                if quantity >= source_total:
                    destination_vector += source_vector
                    newborn = quantity - source_total
                    if newborn > 0:
                        destination_vector[index[source]] += newborn
                    source_vector[:] = 0.0
                    totals_put(source, 0.0)
                    totals_merge(destination, quantity)
                else:
                    fraction = quantity / source_total
                    moved = source_vector * fraction
                    destination_vector += moved
                    source_vector -= moved
                    totals_put(source, source_total - quantity)
                    totals_merge(destination, quantity)
            return
        for interaction in interactions:
            source = interaction.source
            destination = interaction.destination
            quantity = interaction.quantity
            if source not in index:
                self._position(source)
            if destination not in index:
                self._position(destination)
            source_total = totals.get(source, 0.0)

            source_vector = vectors.get(source)
            if source_vector is None:
                source_vector = zeros(universe, dtype=np.float64)
                vectors[source] = source_vector
            destination_vector = vectors.get(destination)
            if destination_vector is None:
                destination_vector = zeros(universe, dtype=np.float64)
                vectors[destination] = destination_vector

            if quantity >= source_total:
                destination_vector += source_vector
                newborn = quantity - source_total
                if newborn > 0:
                    destination_vector[index[source]] += newborn
                source_vector[:] = 0.0
                totals[source] = 0.0
                totals[destination] = totals.get(destination, 0.0) + quantity
            else:
                fraction = quantity / source_total
                moved = source_vector * fraction
                destination_vector += moved
                source_vector -= moved
                totals[source] = source_total - quantity
                totals[destination] = totals.get(destination, 0.0) + quantity

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def buffer_total(self, vertex: Vertex) -> float:
        return self._totals.get(vertex, 0.0)

    def origins(self, vertex: Vertex) -> OriginSet:
        vector = self._vectors.get(vertex)
        origin_set = OriginSet()
        if vector is None:
            return origin_set
        for position in np.nonzero(vector > _PRUNE_EPSILON)[0]:
            origin_set.add(self._order[position], float(vector[position]))
        return origin_set

    def tracked_vertices(self) -> Iterator[Vertex]:
        return (vertex for vertex, total in self._totals.items() if total > 0)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        """Allocated vector cells (each touched vertex costs ``|V|`` cells)."""
        return len(self._vectors) * len(self._index)

    def nonzero_entry_count(self) -> int:
        """Number of non-zero vector components over all vertices."""
        return int(
            sum(int(np.count_nonzero(vector > _PRUNE_EPSILON)) for vector in self._vectors.values())
        )


class ProportionalSparsePolicy(SelectionPolicy):
    """Algorithm 3 with sparse (dict-based) provenance vectors."""

    name = "proportional-sparse"
    tracks_provenance = True
    supports_paths = False

    def __init__(self, *, store: StoreArgument = None) -> None:
        super().__init__(store=store)
        self._vectors = self._make_store("vectors")
        self._totals = self._make_store("totals")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(self, vertices: Sequence[Vertex] = ()) -> None:
        self._vectors = self._make_store("vectors")
        self._totals = self._make_store("totals")

    def _vector(self, vertex: Vertex) -> Dict[Vertex, float]:
        return self._vectors.get_or_create(vertex, dict)

    def process(self, interaction: Interaction) -> None:
        source = interaction.source
        destination = interaction.destination
        quantity = interaction.quantity
        totals = self._totals
        source_total = totals.get(source, 0.0)

        source_vector = self._vector(source)
        destination_vector = self._vector(destination)

        if quantity >= source_total:
            # Relay everything from the source, then the newborn residue.
            for origin, amount in source_vector.items():
                destination_vector[origin] = destination_vector.get(origin, 0.0) + amount
            newborn = quantity - source_total
            if newborn > 0:
                destination_vector[source] = destination_vector.get(source, 0.0) + newborn
            source_vector.clear()
            totals.put(source, 0.0)
            totals.merge(destination, quantity)
        else:
            fraction = quantity / source_total
            keep = 1.0 - fraction
            for origin in list(source_vector):
                amount = source_vector[origin]
                moved = amount * fraction
                destination_vector[origin] = destination_vector.get(origin, 0.0) + moved
                remaining = amount * keep
                if remaining > _PRUNE_EPSILON:
                    source_vector[origin] = remaining
                else:
                    del source_vector[origin]
            totals.put(source, source_total - quantity)
            totals.merge(destination, quantity)

    def process_many(self, interactions: Sequence[Interaction]) -> None:
        """Batched Algorithm 3 over sparse dict vectors.

        Same arithmetic and operation order as :meth:`process` — only the
        state lookups are hoisted into locals for the whole batch.  Non-dict
        store backends run the identical loop through the store interface.
        """
        vectors = self._vectors.raw_dict()
        totals = self._totals.raw_dict()
        if vectors is None or totals is None:
            self._process_many_store(interactions)
            return
        for interaction in interactions:
            source = interaction.source
            destination = interaction.destination
            quantity = interaction.quantity
            source_total = totals.get(source, 0.0)

            source_vector = vectors.get(source)
            if source_vector is None:
                source_vector = {}
                vectors[source] = source_vector
            destination_vector = vectors.get(destination)
            if destination_vector is None:
                destination_vector = {}
                vectors[destination] = destination_vector

            if quantity >= source_total:
                for origin, amount in source_vector.items():
                    destination_vector[origin] = destination_vector.get(origin, 0.0) + amount
                newborn = quantity - source_total
                if newborn > 0:
                    destination_vector[source] = destination_vector.get(source, 0.0) + newborn
                source_vector.clear()
                totals[source] = 0.0
                totals[destination] = totals.get(destination, 0.0) + quantity
            else:
                fraction = quantity / source_total
                keep = 1.0 - fraction
                for origin in list(source_vector):
                    amount = source_vector[origin]
                    moved = amount * fraction
                    destination_vector[origin] = destination_vector.get(origin, 0.0) + moved
                    remaining = amount * keep
                    if remaining > _PRUNE_EPSILON:
                        source_vector[origin] = remaining
                    else:
                        del source_vector[origin]
                totals[source] = source_total - quantity
                totals[destination] = totals.get(destination, 0.0) + quantity

    def _process_many_store(self, interactions: Sequence[Interaction]) -> None:
        """Interface-driven batch loop for non-dict store backends."""
        vector_of = self._vector
        totals_get = self._totals.get
        totals_put = self._totals.put
        totals_merge = self._totals.merge
        for interaction in interactions:
            source = interaction.source
            destination = interaction.destination
            quantity = interaction.quantity
            source_total = totals_get(source, 0.0)

            source_vector = vector_of(source)
            destination_vector = vector_of(destination)

            if quantity >= source_total:
                for origin, amount in source_vector.items():
                    destination_vector[origin] = destination_vector.get(origin, 0.0) + amount
                newborn = quantity - source_total
                if newborn > 0:
                    destination_vector[source] = destination_vector.get(source, 0.0) + newborn
                source_vector.clear()
                totals_put(source, 0.0)
                totals_merge(destination, quantity)
            else:
                fraction = quantity / source_total
                keep = 1.0 - fraction
                for origin in list(source_vector):
                    amount = source_vector[origin]
                    moved = amount * fraction
                    destination_vector[origin] = destination_vector.get(origin, 0.0) + moved
                    remaining = amount * keep
                    if remaining > _PRUNE_EPSILON:
                        source_vector[origin] = remaining
                    else:
                        del source_vector[origin]
                totals_put(source, source_total - quantity)
                totals_merge(destination, quantity)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def buffer_total(self, vertex: Vertex) -> float:
        return self._totals.get(vertex, 0.0)

    def origins(self, vertex: Vertex) -> OriginSet:
        vector = self._vectors.get(vertex)
        if not vector:
            return OriginSet()
        return OriginSet(vector)

    def provenance_vector(self, vertex: Vertex) -> Dict[Vertex, float]:
        """The raw sparse vector of ``vertex`` (a copy)."""
        return dict(self._vectors.get(vertex, {}))

    def tracked_vertices(self) -> Iterator[Vertex]:
        return (vertex for vertex, total in self._totals.items() if total > 0)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        return self._vectors.entry_total()

    def average_list_length(self) -> float:
        """Average number of contributing origins per (touched) vertex.

        This is the quantity ``l`` of the paper's sparse-representation
        complexity analysis; Figure 6 tracks its growth over the stream.
        """
        if not self._vectors:
            return 0.0
        return self.entry_count() / len(self._vectors)
