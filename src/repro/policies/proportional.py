"""Proportional selection (Section 4.3, Algorithm 3).

When an interaction relays less than the source's buffered quantity, the
relayed quantity is drawn *proportionally* from every origin that has
contributed to the source buffer.  Each vertex ``v`` therefore carries a
provenance vector ``p_v`` whose ``i``-th component is the quantity in
``B_v`` originating from vertex ``i``; the vector sums to ``|B_v|``.

Two representations are provided, mirroring the paper:

* :class:`ProportionalDensePolicy` stores one dense numpy vector of length
  ``|V|`` per touched vertex.  Vector-wise numpy operations play the role of
  the SIMD instructions used by the authors' C implementation.  Space is
  ``O(|V|^2)`` so this is practical only for networks with few vertices
  (Flights, Taxis).
* :class:`ProportionalSparsePolicy` stores each ``p_v`` as a dict of
  ``origin -> quantity`` holding only non-zero components — the ordered-list
  representation of the paper, with the merge performed by dictionary
  arithmetic.  Space is ``O(|V| * l)`` where ``l`` is the average number of
  contributing origins per vertex, which the paper (and our Figure 6 bench)
  shows can still grow too large on big networks.

Applications (from the paper): buffers whose contents are naturally mixed —
liquids in tanks, indistinguishable financial units in account balances.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.core.blocks import InteractionBlock, VertexInterner
from repro.core.interaction import Interaction, Vertex
from repro.core.provenance import OriginSet
from repro.exceptions import PolicyConfigurationError, UnknownVertexError
from repro.policies.base import SelectionPolicy, StoreArgument
from repro.stores.dense import DenseNumpyStore

__all__ = ["ProportionalDensePolicy", "ProportionalSparsePolicy"]

# Quantities below this threshold are treated as zero when pruning sparse
# vectors; proportional splits otherwise accumulate microscopic residues
# that bloat the provenance lists without carrying information.
_PRUNE_EPSILON = 1e-12

#: Initial capacity floor (in rows) of policy-owned columnar arenas; growth
#: past it is geometric, capped at the universe size (each vertex owns at
#: most one row).
_ARENA_MIN_ROWS = 256


class _ColumnarVectors:
    """Position-indexed mirror of the dense policy state during columnar runs.

    ``vectors[p]`` is a row *view* into ``arena`` — the one contiguous
    ``(capacity, universe)`` float64 matrix every live provenance vector
    lives in — for the vertex at universe position ``p``; ``rows[p]`` is
    that row's arena index (``int32``, ``-1`` when absent).  The fused
    kernels take ``(arena, rows)`` directly: row addressing is index
    arithmetic on one base pointer, no per-row pointer table.

    With a dict-backed vector store the policy owns the arena and the
    store's dict values are rebound to its row views (mutations flow
    through, so the store stays live); with a
    :class:`~repro.stores.DenseNumpyStore` the store's own arena is
    mirrored.  Either way the arena object can be replaced by growth
    reallocation, so every consumer re-checks identity before trusting
    cached views.  ``totals`` mirrors the scalar totals store and is
    flushed back lazily; ``id_to_position`` translates interner ids into
    universe positions — identical for network-derived interners, but kept
    explicit so any interner works.
    """

    __slots__ = (
        "interner",
        "id_to_position",
        "identity",
        "store_mode",
        "arena",
        "rows",
        "count",
        "vectors",
        "totals",
        "scratch",
        "fraction",
        "totals_arr",
        "array_mode",
    )

    def __init__(
        self,
        interner: VertexInterner,
        id_to_position: np.ndarray,
        universe: int,
    ) -> None:
        self.interner = interner
        self.id_to_position = id_to_position
        # Interners derived from the same network as the universe map id i
        # to position i; the kernel then uses the block's id arrays as
        # positions directly, skipping translation and validation.
        self.identity = bool(
            len(id_to_position) <= universe
            and np.array_equal(id_to_position, np.arange(len(id_to_position)))
        )
        #: True when the vector store is a DenseNumpyStore whose arena is
        #: mirrored directly; False when the policy owns the arena and the
        #: store's dict values are views into it.
        self.store_mode = False
        self.arena: Optional[np.ndarray] = None
        self.rows = np.full(universe, -1, dtype=np.int32)
        #: Next free arena row (policy-owned arenas only).
        self.count = 0
        self.vectors: List[Optional[np.ndarray]] = [None] * universe
        self.totals: List[float] = [0.0] * universe
        self.scratch = np.empty(universe, dtype=np.float64)
        # 0-d staging cell for the split fraction: refilling it and passing
        # the array to multiply() skips the per-call Python-float boxing.
        self.fraction = np.empty((), dtype=np.float64)
        # Compiled kernels mutate totals as a float64 array; converted once
        # per representation switch, not per chunk.
        self.totals_arr: Optional[np.ndarray] = None
        self.array_mode = False

    def to_arrays(self) -> np.ndarray:
        """Make the float64 totals array authoritative (idempotent)."""
        if not self.array_mode:
            self.totals_arr = np.array(self.totals, dtype=np.float64)
            self.array_mode = True
        return self.totals_arr

    def to_lists(self) -> None:
        """Make the Python-list totals authoritative (idempotent; exact)."""
        if self.array_mode:
            self.totals = self.totals_arr.tolist()
            self.totals_arr = None
            self.array_mode = False


class ProportionalDensePolicy(SelectionPolicy):
    """Algorithm 3 with dense numpy provenance vectors.

    The vertex universe must be known before processing starts; pass it via
    :meth:`reset` (the engine does this automatically when it is given a
    :class:`~repro.core.network.TemporalInteractionNetwork`).
    """

    name = "proportional-dense"
    tracks_provenance = True
    supports_paths = False

    def __init__(
        self,
        vertices: Optional[Sequence[Vertex]] = None,
        *,
        store: StoreArgument = None,
    ) -> None:
        super().__init__(store=store)
        self._index: Dict[Vertex, int] = {}
        self._order: list = []
        self._vectors = self._make_store("vectors")
        self._totals = self._make_store("totals")
        self._col: Optional[_ColumnarVectors] = None
        self._moved_scratch: Optional[np.ndarray] = None
        if vertices is not None:
            self.reset(vertices)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(self, vertices: Sequence[Vertex] = ()) -> None:
        self._col = None
        self._index = {vertex: position for position, vertex in enumerate(vertices)}
        self._order = list(vertices)
        if not self._index:
            raise PolicyConfigurationError(
                "ProportionalDensePolicy needs the full vertex universe; "
                "construct it with vertices or run it on a "
                "TemporalInteractionNetwork rather than a bare interaction stream"
            )
        self._vectors = self._make_store("vectors", dimension=len(self._index))
        self._totals = self._make_store("totals")
        self._moved_scratch = None

    def _zero_vector(self) -> np.ndarray:
        return np.zeros(len(self._index), dtype=np.float64)

    def _split_scratch(self) -> np.ndarray:
        """Reusable ``(|V|,)`` row staging the proportional split's moved
        amounts — store-owned when the backend offers one, policy-owned
        otherwise — so the object paths stop allocating per interaction."""
        scratch_row = getattr(self._vectors, "scratch_row", None)
        if scratch_row is not None:
            scratch = scratch_row()
            if len(scratch) == len(self._index):
                return scratch
        scratch = self._moved_scratch
        if scratch is None or len(scratch) != len(self._index):
            scratch = self._moved_scratch = np.empty(
                len(self._index), dtype=np.float64
            )
        return scratch

    def __getstate__(self):
        # The scratch row's contents are garbage between splits; dropping it
        # keeps checkpoints deterministic and lean.
        state = super().__getstate__()
        state["_moved_scratch"] = None
        return state

    def _vector(self, vertex: Vertex) -> np.ndarray:
        return self._vectors.get_or_create(vertex, self._zero_vector)

    def _position(self, vertex: Vertex) -> int:
        try:
            return self._index[vertex]
        except KeyError:
            raise UnknownVertexError(
                f"vertex {vertex!r} was not part of the universe given to reset()"
            ) from None

    def process(self, interaction: Interaction) -> None:
        self._decolumnarise()
        source = interaction.source
        destination = interaction.destination
        quantity = interaction.quantity
        # Both endpoints must belong to the universe fixed at reset time.
        self._position(source)
        self._position(destination)
        totals = self._totals
        source_total = totals.get(source, 0.0)

        # Arena-backed stores may reallocate on row allocation: reserve both
        # rows before fetching either view so neither can go stale.
        ensure_rows = getattr(self._vectors, "ensure_rows", None)
        if ensure_rows is not None:
            ensure_rows((source, destination))
        source_vector = self._vector(source)
        destination_vector = self._vector(destination)

        if quantity >= source_total:
            # Relay the whole source buffer, then generate the residue at the
            # source (Algorithm 3, lines 5-7).
            destination_vector += source_vector
            newborn = quantity - source_total
            if newborn > 0:
                destination_vector[self._position(source)] += newborn
            source_vector[:] = 0.0
            totals.put(source, 0.0)
            totals.merge(destination, quantity)
        else:
            # Proportional split (lines 9-10); the moved amounts stage in a
            # reusable scratch row instead of a per-interaction allocation.
            fraction = quantity / source_total
            moved = np.multiply(source_vector, fraction, out=self._split_scratch())
            destination_vector += moved
            source_vector -= moved
            totals.put(source, source_total - quantity)
            totals.merge(destination, quantity)

    def process_many(self, interactions: Sequence[Interaction]) -> None:
        """Batched Algorithm 3 over dense vectors.

        Replays the exact arithmetic of :meth:`process` (same numpy
        operations, same order, hence bit-identical vectors) with the state
        stores, the vertex index and the vector accessors held in locals,
        amortising the per-interaction Python overhead over the batch.
        Dict-backed stores are driven through their raw dicts; the dense
        and sqlite backends run the same arithmetic through the store
        interface.
        """
        self._decolumnarise()
        index = self._index
        vectors = self._vectors.raw_dict()
        totals = self._totals.raw_dict()
        universe = len(index)
        zeros = np.zeros
        scratch = self._split_scratch()
        multiply = np.multiply
        if vectors is None or totals is None:
            vector_of = self._vector
            totals_get = self._totals.get
            totals_put = self._totals.put
            totals_merge = self._totals.merge
            ensure_rows = getattr(self._vectors, "ensure_rows", None)
            for interaction in interactions:
                source = interaction.source
                destination = interaction.destination
                quantity = interaction.quantity
                if source not in index:
                    self._position(source)
                if destination not in index:
                    self._position(destination)
                source_total = totals_get(source, 0.0)

                # Reserve both arena rows before fetching either view.
                if ensure_rows is not None:
                    ensure_rows((source, destination))
                source_vector = vector_of(source)
                destination_vector = vector_of(destination)

                if quantity >= source_total:
                    destination_vector += source_vector
                    newborn = quantity - source_total
                    if newborn > 0:
                        destination_vector[index[source]] += newborn
                    source_vector[:] = 0.0
                    totals_put(source, 0.0)
                    totals_merge(destination, quantity)
                else:
                    fraction = quantity / source_total
                    moved = multiply(source_vector, fraction, out=scratch)
                    destination_vector += moved
                    source_vector -= moved
                    totals_put(source, source_total - quantity)
                    totals_merge(destination, quantity)
            return
        for interaction in interactions:
            source = interaction.source
            destination = interaction.destination
            quantity = interaction.quantity
            if source not in index:
                self._position(source)
            if destination not in index:
                self._position(destination)
            source_total = totals.get(source, 0.0)

            source_vector = vectors.get(source)
            if source_vector is None:
                source_vector = zeros(universe, dtype=np.float64)
                vectors[source] = source_vector
            destination_vector = vectors.get(destination)
            if destination_vector is None:
                destination_vector = zeros(universe, dtype=np.float64)
                vectors[destination] = destination_vector

            if quantity >= source_total:
                destination_vector += source_vector
                newborn = quantity - source_total
                if newborn > 0:
                    destination_vector[index[source]] += newborn
                source_vector[:] = 0.0
                totals[source] = 0.0
                totals[destination] = totals.get(destination, 0.0) + quantity
            else:
                fraction = quantity / source_total
                moved = multiply(source_vector, fraction, out=scratch)
                destination_vector += moved
                source_vector -= moved
                totals[source] = source_total - quantity
                totals[destination] = totals.get(destination, 0.0) + quantity

    # ------------------------------------------------------------------
    # columnar execution
    # ------------------------------------------------------------------
    def has_columnar_kernel(self) -> bool:
        return (
            self._kernel_consistent(ProportionalDensePolicy)
            and self._totals.raw_dict() is not None
            and (
                self._vectors.raw_dict() is not None
                or isinstance(self._vectors, DenseNumpyStore)
            )
        )

    def _ensure_columnar(self, interner: VertexInterner) -> _ColumnarVectors:
        col = self._col
        if col is not None and col.interner is interner:
            if len(col.id_to_position) < len(interner):
                # The interner grew mid-run (stream discovery); vertices
                # outside the fixed universe map to -1, which also voids
                # the identity shortcut so validation sees them.
                col.id_to_position = self._id_to_position(interner)
                col.identity = False
            if col.store_mode:
                self._sync_store_arena(col)
            return col
        if col is not None:
            self._decolumnarise()
        col = _ColumnarVectors(
            interner, self._id_to_position(interner), len(self._index)
        )
        index = self._index
        if isinstance(self._vectors, DenseNumpyStore):
            col.store_mode = True
            self._sync_store_arena(col, force=True)
        else:
            self._consolidate_dict_arena(col)
        for vertex, total in self._totals.raw_dict().items():
            col.totals[index[vertex]] = total
        self._col = col
        return col

    def _sync_store_arena(self, col: _ColumnarVectors, force: bool = False) -> None:
        """Mirror a DenseNumpyStore's arena into the columnar state.

        Rebinds every row view and the position → row index whenever the
        store's arena object changed identity (growth reallocation) — the
        cached views would otherwise point at the detached old buffer.
        """
        store = self._vectors
        arena = store.arena
        if arena is col.arena and not force:
            return
        col.arena = arena
        col.rows.fill(-1)
        vectors = col.vectors
        for position in range(len(vectors)):
            vectors[position] = None
        index = self._index
        rows = col.rows
        for vertex, row in store.row_items():
            position = index[vertex]
            rows[position] = row
            vectors[position] = arena[row]

    def _consolidate_dict_arena(self, col: _ColumnarVectors) -> None:
        """Bind a dict-backed vector store to a policy-owned arena.

        If every stored vector is already a row view of one shared arena
        (the state a previous columnar run leaves behind), that arena is
        recovered by pointer arithmetic — no copy.  Otherwise (first run,
        or standalone arrays after a pickle round-trip) the live vectors
        are consolidated into a fresh arena and the store's dict values are
        rebound to its row views, so kernel writes flow through to the
        store.
        """
        raw_vectors = self._vectors.raw_dict()
        index = self._index
        universe = len(index)
        recovered = self._recover_dict_arena(col, raw_vectors, universe)
        if recovered:
            return
        live = len(raw_vectors)
        capacity = max(live, min(universe, _ARENA_MIN_ROWS))
        arena = np.zeros((capacity, universe), dtype=np.float64)
        rows = col.rows
        vectors = col.vectors
        for row, (vertex, vector) in enumerate(raw_vectors.items()):
            arena[row] = vector
            view = arena[row]
            raw_vectors[vertex] = view
            position = index[vertex]
            rows[position] = row
            vectors[position] = view
        col.arena = arena
        col.count = live

    def _recover_dict_arena(
        self,
        col: _ColumnarVectors,
        raw_vectors: Dict[Vertex, np.ndarray],
        universe: int,
    ) -> bool:
        """Re-adopt a shared arena whose row views already fill the store."""
        base: Optional[np.ndarray] = None
        next_row = 0
        bindings = []
        index = self._index
        for vertex, vector in raw_vectors.items():
            candidate = vector.base
            if base is None:
                if (
                    not isinstance(candidate, np.ndarray)
                    or candidate.ndim != 2
                    or candidate.shape[1] != universe
                    or candidate.dtype != np.float64
                    or not candidate.flags["C_CONTIGUOUS"]
                ):
                    return False
                base = candidate
            elif candidate is not base:
                return False
            offset = vector.ctypes.data - base.ctypes.data
            stride = base.strides[0]
            row, remainder = divmod(offset, stride)
            if remainder or len(vector) != universe or row >= base.shape[0]:
                return False
            bindings.append((index[vertex], int(row)))
            if row + 1 > next_row:
                next_row = int(row) + 1
        if base is None:
            return False
        col.arena = base
        col.count = next_row
        rows = col.rows
        vectors = col.vectors
        for position, row in bindings:
            rows[position] = row
            vectors[position] = base[row]
        return True

    def _id_to_position(self, interner: VertexInterner) -> np.ndarray:
        index_get = self._index.get
        return np.fromiter(
            (index_get(vertex, -1) for vertex in interner.vertices),
            dtype=np.int32,
            count=len(interner),
        )

    def _decolumnarise(self) -> None:
        col = self._col
        if col is None:
            return
        self._col = None
        col.to_lists()
        # The vector arrays in the store are the very arrays the kernel
        # mutated (live), so only the scalar totals need flushing.  Flushing
        # in ascending position order inserts any new keys as a permutation
        # of the object path's first-touch order: every per-key value is
        # bit-identical, only the dict's iteration order may differ (nothing
        # in the library accumulates floats over totals iteration).
        raw_totals = self._totals.raw_dict()
        order = self._order
        totals = col.totals
        for position, vector in enumerate(col.vectors):
            if vector is not None:
                raw_totals[order[position]] = totals[position]

    def process_block(self, block: InteractionBlock) -> None:
        """Columnar Algorithm 3: id-indexed arena-row arithmetic.

        Replays the exact numpy operations of :meth:`process` in the same
        order (bit-identical vectors), with three representation-level
        savings: vertex hashing becomes array translation done once per
        block, an all-zero source vector (``|B_s| == 0``) skips its
        bitwise-no-op row operations entirely, and the proportional split
        reuses one scratch row instead of allocating per interaction.
        Every endpoint row is materialised up front (any arena growth
        happens before a single view is fetched), so the loop body only
        ever touches valid views.  Falls back to the object adapter on
        store backends with neither a raw dict nor an arena.
        """
        if not self.has_columnar_kernel():
            super().process_block(block)
            return
        col = self._ensure_columnar(block.interner)
        col.to_lists()
        source_positions, destination_positions = self._block_positions(col, block)
        self._materialise_vectors(col, source_positions, destination_positions)
        vectors = col.vectors
        totals = col.totals
        scratch = col.scratch
        fraction = col.fraction
        add = np.add
        subtract = np.subtract
        multiply = np.multiply
        quantities = block.quantities.tolist()
        for source, destination, quantity in zip(
            source_positions.tolist(), destination_positions.tolist(), quantities
        ):
            source_vector = vectors[source]
            destination_vector = vectors[destination]
            source_total = totals[source]
            if source_total == 0.0:
                # Zero total implies an all-zero vector: the relay's row
                # operations would add and zero out nothing — only the
                # newborn component is a real write.
                if quantity > 0.0:
                    destination_vector[source] += quantity
                totals[destination] += quantity
            elif quantity >= source_total:
                add(destination_vector, source_vector, destination_vector)
                newborn = quantity - source_total
                if newborn > 0.0:
                    destination_vector[source] += newborn
                source_vector.fill(0.0)
                totals[source] = 0.0
                totals[destination] += quantity
            else:
                fraction[()] = quantity / source_total
                multiply(source_vector, fraction, scratch)
                add(destination_vector, scratch, destination_vector)
                subtract(source_vector, scratch, source_vector)
                totals[source] = source_total - quantity
                totals[destination] += quantity

    def _block_positions(self, col: _ColumnarVectors, block: InteractionBlock):
        """Translate the block's interner ids into universe positions.

        Identity interners pass through untouched; otherwise the ids are
        mapped and validated up front (unlike the object path, which raises
        mid-stream — the reported vertex is the same).
        """
        if col.identity:
            return block.src_ids, block.dst_ids
        id_to_position = col.id_to_position
        source_positions = id_to_position[block.src_ids]
        destination_positions = id_to_position[block.dst_ids]
        unknown = np.flatnonzero((source_positions < 0) | (destination_positions < 0))
        if len(unknown):
            row = int(unknown[0])
            bad_id = int(
                block.src_ids[row]
                if source_positions[row] < 0
                else block.dst_ids[row]
            )
            raise UnknownVertexError(
                f"vertex {block.interner.vertex_of(bad_id)!r} was not part "
                f"of the universe given to reset()"
            )
        return source_positions, destination_positions

    # ------------------------------------------------------------------
    # fused execution
    # ------------------------------------------------------------------
    def _fused_handle(self):
        """The compiled whole-run kernel, or ``None`` for the pure path.

        ``None`` also when a subclass ships its own ``process_block``: the
        compiled loop replicates *this class's* kernel, and bypassing an
        override would silently change subclass semantics — the fused
        drive then routes through ``self.process_block`` instead.
        """
        if type(self).process_block is not ProportionalDensePolicy.process_block:
            return None
        if not self.has_columnar_kernel():
            return None
        from repro.core import kernels

        return kernels.get_kernel("proportional-dense")

    def prepare_fused(self, block: Optional[InteractionBlock] = None) -> None:
        self._fused_handle()

    def fused_backend(self) -> str:
        if not self.has_columnar_kernel():
            return "object"
        handle = self._fused_handle()
        return "numpy" if handle is None else handle.backend

    def _materialise_vectors(
        self, col: _ColumnarVectors, src: np.ndarray, dst: np.ndarray
    ) -> None:
        """Allocate every missing endpoint row, in first-touch order.

        The kernels index arena rows, so rows must exist before the span
        runs; creating them in interleaved first-appearance order (sources
        before destinations, row by row) reproduces the vector store's
        insertion order of the per-interaction loop exactly.  All growth —
        store arena or policy arena — happens here, before any view of the
        span is fetched, which is what makes holding ``col.vectors`` views
        across the span safe.
        """
        rows_index = col.rows
        # Fast path for the steady state: one vectorised O(n) probe of the
        # position->row index.  After the first few chunks every endpoint
        # of a span usually has its row already, and the first-touch
        # ordering pass below (unique + stable argsort, O(n log n)) would
        # otherwise dominate the span's own kernel time.
        if (
            rows_index[src].min(initial=0) >= 0
            and rows_index[dst].min(initial=0) >= 0
        ):
            return
        vectors = col.vectors
        interleaved = np.empty(len(src) * 2, dtype=np.int64)
        interleaved[0::2] = src
        interleaved[1::2] = dst
        unique, first_rows = np.unique(interleaved, return_index=True)
        missing = [
            position
            for position in unique[np.argsort(first_rows, kind="stable")].tolist()
            if vectors[position] is None
        ]
        if not missing:
            return
        order = self._order
        if col.store_mode:
            store = self._vectors
            store.ensure_rows(order[position] for position in missing)
            # Growth reallocates the store arena: rebind everything cached.
            self._sync_store_arena(col)
            arena = col.arena
            rows = col.rows
            for position in missing:
                row = store.row_of(order[position])
                rows[position] = row
                vectors[position] = arena[row]
            return
        needed = col.count + len(missing)
        arena = col.arena
        if arena is None or needed > arena.shape[0]:
            self._grow_dict_arena(col, needed)
            arena = col.arena
        raw_vectors = self._vectors.raw_dict()
        rows = col.rows
        count = col.count
        for position in missing:
            view = arena[count]
            vectors[position] = view
            raw_vectors[order[position]] = view
            rows[position] = count
            count += 1
        col.count = count

    def _grow_dict_arena(self, col: _ColumnarVectors, needed: int) -> None:
        """Geometrically reallocate the policy-owned arena and rebind views.

        Unlike the store-owned arena, every live view here is also a dict
        value in the vector store, so both sides are rebound onto the grown
        buffer (the store then keeps reflecting kernel writes).
        """
        universe = len(self._index)
        arena = col.arena
        capacity = 0 if arena is None else arena.shape[0]
        # Geometric doubling capped at the universe size, but never below
        # ``needed`` (eviction holes can push the row count past the number
        # of live keys, so ``needed`` is the authority, not the cap).
        new_capacity = max(needed, min(universe, max(capacity * 2, _ARENA_MIN_ROWS)))
        grown = np.zeros((new_capacity, universe), dtype=np.float64)
        if arena is not None and col.count:
            grown[: col.count] = arena[: col.count]
        col.arena = grown
        raw_vectors = self._vectors.raw_dict()
        order = self._order
        rows = col.rows
        vectors = col.vectors
        for position, vector in enumerate(vectors):
            if vector is not None:
                view = grown[rows[position]]
                vectors[position] = view
                raw_vectors[order[position]] = view

    def process_run(self, block: InteractionBlock) -> None:
        """Fused Algorithm 3: the whole clip span in one compiled call.

        Bit-identical to :meth:`process_block` over the same span — the
        compiled loop replicates its three branches element for element,
        including the self-loop aliasing behaviour (verified against a
        pure reference at build time).  The kernel reads the arena and the
        ``int32`` position → row index directly — dict-backed stores are
        consolidated into a policy-owned arena first, dense stores hand
        over their own.  Falls back to the per-block kernel when no
        compiled backend resolved or the totals store is not dict-backed.
        """
        handle = self._fused_handle()
        if handle is None:
            self.process_block(block)
            return
        if not len(block.src_ids):
            return
        col = self._ensure_columnar(block.interner)
        source_positions, destination_positions = self._block_positions(col, block)
        src = np.ascontiguousarray(source_positions, dtype=np.int32)
        dst = np.ascontiguousarray(destination_positions, dtype=np.int32)
        quantities = np.ascontiguousarray(block.quantities, dtype=np.float64)
        self._materialise_vectors(col, src, dst)
        totals_arr = col.to_arrays()
        handle.fn(src, dst, quantities, col.arena, col.rows, totals_arr)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def buffer_total(self, vertex: Vertex) -> float:
        col = self._col
        if col is not None:
            position = self._index.get(vertex)
            if position is None:
                return 0.0
            if col.array_mode:
                return float(col.totals_arr[position])
            return col.totals[position]
        return self._totals.get(vertex, 0.0)

    def origins(self, vertex: Vertex) -> OriginSet:
        vector = self._vectors.get(vertex)
        origin_set = OriginSet()
        if vector is None:
            return origin_set
        positions = np.flatnonzero(vector > _PRUNE_EPSILON)
        if not len(positions):
            return origin_set
        # One fancy-indexed slice pulls every contributing amount at once;
        # only the (cheap) origin-set insertion remains per position.
        order = self._order
        add = origin_set.add
        for position, amount in zip(positions.tolist(), vector[positions].tolist()):
            add(order[position], amount)
        return origin_set

    def tracked_vertices(self) -> Iterator[Vertex]:
        self._decolumnarise()
        return (vertex for vertex, total in self._totals.items() if total > 0)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        """Allocated vector cells (each touched vertex costs ``|V|`` cells).

        Valid mid-columnar-run too: the kernel registers new vectors in the
        store the moment it creates them, so the store's key count is always
        current.
        """
        return len(self._vectors) * len(self._index)

    def nonzero_entry_count(self) -> int:
        """Number of non-zero vector components over all vertices.

        One vectorised count per stored vector; deliberately not stacked
        into a single matrix, which would transiently double the policy's
        resident memory.
        """
        count_nonzero = np.count_nonzero
        return int(
            sum(count_nonzero(vector > _PRUNE_EPSILON) for vector in self._vectors.values())
        )


class ProportionalSparsePolicy(SelectionPolicy):
    """Algorithm 3 with sparse (dict-based) provenance vectors."""

    name = "proportional-sparse"
    tracks_provenance = True
    supports_paths = False

    def __init__(self, *, store: StoreArgument = None) -> None:
        super().__init__(store=store)
        self._vectors = self._make_store("vectors")
        self._totals = self._make_store("totals")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(self, vertices: Sequence[Vertex] = ()) -> None:
        self._vectors = self._make_store("vectors")
        self._totals = self._make_store("totals")

    def _vector(self, vertex: Vertex) -> Dict[Vertex, float]:
        return self._vectors.get_or_create(vertex, dict)

    def process(self, interaction: Interaction) -> None:
        source = interaction.source
        destination = interaction.destination
        quantity = interaction.quantity
        totals = self._totals
        source_total = totals.get(source, 0.0)

        source_vector = self._vector(source)
        destination_vector = self._vector(destination)

        if quantity >= source_total:
            # Relay everything from the source, then the newborn residue.
            for origin, amount in source_vector.items():
                destination_vector[origin] = destination_vector.get(origin, 0.0) + amount
            newborn = quantity - source_total
            if newborn > 0:
                destination_vector[source] = destination_vector.get(source, 0.0) + newborn
            source_vector.clear()
            totals.put(source, 0.0)
            totals.merge(destination, quantity)
        else:
            fraction = quantity / source_total
            keep = 1.0 - fraction
            for origin in list(source_vector):
                amount = source_vector[origin]
                moved = amount * fraction
                destination_vector[origin] = destination_vector.get(origin, 0.0) + moved
                remaining = amount * keep
                if remaining > _PRUNE_EPSILON:
                    source_vector[origin] = remaining
                else:
                    del source_vector[origin]
            totals.put(source, source_total - quantity)
            totals.merge(destination, quantity)

    def process_many(self, interactions: Sequence[Interaction]) -> None:
        """Batched Algorithm 3 over sparse dict vectors.

        Same arithmetic and operation order as :meth:`process` — only the
        state lookups are hoisted into locals for the whole batch.  Non-dict
        store backends run the identical loop through the store interface.
        """
        vectors = self._vectors.raw_dict()
        totals = self._totals.raw_dict()
        if vectors is None or totals is None:
            self._process_many_store(interactions)
            return
        for interaction in interactions:
            source = interaction.source
            destination = interaction.destination
            quantity = interaction.quantity
            source_total = totals.get(source, 0.0)

            source_vector = vectors.get(source)
            if source_vector is None:
                source_vector = {}
                vectors[source] = source_vector
            destination_vector = vectors.get(destination)
            if destination_vector is None:
                destination_vector = {}
                vectors[destination] = destination_vector

            if quantity >= source_total:
                for origin, amount in source_vector.items():
                    destination_vector[origin] = destination_vector.get(origin, 0.0) + amount
                newborn = quantity - source_total
                if newborn > 0:
                    destination_vector[source] = destination_vector.get(source, 0.0) + newborn
                source_vector.clear()
                totals[source] = 0.0
                totals[destination] = totals.get(destination, 0.0) + quantity
            else:
                fraction = quantity / source_total
                keep = 1.0 - fraction
                for origin in list(source_vector):
                    amount = source_vector[origin]
                    moved = amount * fraction
                    destination_vector[origin] = destination_vector.get(origin, 0.0) + moved
                    remaining = amount * keep
                    if remaining > _PRUNE_EPSILON:
                        source_vector[origin] = remaining
                    else:
                        del source_vector[origin]
                totals[source] = source_total - quantity
                totals[destination] = totals.get(destination, 0.0) + quantity

    def _process_many_store(self, interactions: Sequence[Interaction]) -> None:
        """Interface-driven batch loop for non-dict store backends."""
        vector_of = self._vector
        totals_get = self._totals.get
        totals_put = self._totals.put
        totals_merge = self._totals.merge
        for interaction in interactions:
            source = interaction.source
            destination = interaction.destination
            quantity = interaction.quantity
            source_total = totals_get(source, 0.0)

            source_vector = vector_of(source)
            destination_vector = vector_of(destination)

            if quantity >= source_total:
                for origin, amount in source_vector.items():
                    destination_vector[origin] = destination_vector.get(origin, 0.0) + amount
                newborn = quantity - source_total
                if newborn > 0:
                    destination_vector[source] = destination_vector.get(source, 0.0) + newborn
                source_vector.clear()
                totals_put(source, 0.0)
                totals_merge(destination, quantity)
            else:
                fraction = quantity / source_total
                keep = 1.0 - fraction
                for origin in list(source_vector):
                    amount = source_vector[origin]
                    moved = amount * fraction
                    destination_vector[origin] = destination_vector.get(origin, 0.0) + moved
                    remaining = amount * keep
                    if remaining > _PRUNE_EPSILON:
                        source_vector[origin] = remaining
                    else:
                        del source_vector[origin]
                totals_put(source, source_total - quantity)
                totals_merge(destination, quantity)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def buffer_total(self, vertex: Vertex) -> float:
        return self._totals.get(vertex, 0.0)

    def origins(self, vertex: Vertex) -> OriginSet:
        vector = self._vectors.get(vertex)
        if not vector:
            return OriginSet()
        return OriginSet(vector)

    def provenance_vector(self, vertex: Vertex) -> Dict[Vertex, float]:
        """The raw sparse vector of ``vertex`` (a copy)."""
        return dict(self._vectors.get(vertex, {}))

    def tracked_vertices(self) -> Iterator[Vertex]:
        return (vertex for vertex, total in self._totals.items() if total > 0)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        return self._vectors.entry_total()

    def average_list_length(self) -> float:
        """Average number of contributing origins per (touched) vertex.

        This is the quantity ``l`` of the paper's sparse-representation
        complexity analysis; Figure 6 tracks its growth over the stream.
        """
        if not self._vectors:
            return 0.0
        return self.entry_count() / len(self._vectors)
