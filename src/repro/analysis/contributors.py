"""Selection of vertices of interest for selective provenance tracking.

Section 7.3 of the paper selects, as tracked vertices, the top-k vertices
that *generate* the largest total quantity: a NoProv pre-pass (Algorithm 1)
measures per-vertex generated quantities and the k largest generators become
the tracked set.  This module implements that selection plus a couple of
alternative criteria useful in practice (top receivers, highest degree).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.interaction import Vertex
from repro.core.network import TemporalInteractionNetwork

__all__ = ["top_contributors", "top_receivers", "top_degree"]


def top_contributors(network: TemporalInteractionNetwork, k: int) -> List[Vertex]:
    """The ``k`` vertices generating the largest total quantity.

    Ties are broken by vertex representation so the result is deterministic.
    If fewer than ``k`` vertices ever generate quantity, the remaining slots
    are filled with the highest-degree non-generating vertices so the result
    always has ``min(k, |V|)`` entries.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k!r}")
    generated = network.generated_quantity_by_vertex()
    ranked = sorted(generated.items(), key=lambda item: (-item[1], repr(item[0])))
    selected = [vertex for vertex, _quantity in ranked[:k]]
    if len(selected) < k:
        chosen = set(selected)
        fallback = sorted(
            (vertex for vertex in network.vertices if vertex not in chosen),
            key=lambda vertex: (-network.degree(vertex), repr(vertex)),
        )
        selected.extend(fallback[: k - len(selected)])
    return selected


def top_receivers(network: TemporalInteractionNetwork, k: int) -> List[Vertex]:
    """The ``k`` vertices receiving the largest total quantity."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k!r}")
    received: Dict[Vertex, float] = {}
    for interaction in network.interactions:
        received[interaction.destination] = (
            received.get(interaction.destination, 0.0) + interaction.quantity
        )
    ranked = sorted(received.items(), key=lambda item: (-item[1], repr(item[0])))
    return [vertex for vertex, _quantity in ranked[:k]]


def top_degree(network: TemporalInteractionNetwork, k: int) -> List[Vertex]:
    """The ``k`` vertices with the most distinct neighbours."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k!r}")
    ranked = sorted(
        network.vertices,
        key=lambda vertex: (-network.degree(vertex), repr(vertex)),
    )
    return list(ranked[:k])
