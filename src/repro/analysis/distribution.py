"""Provenance-distribution analysis over time (Figure 2 of the paper).

Figure 2 shows, for one vertex of the Taxis network (East Village), the
quantity accumulated after each incoming interaction together with the
provenance distribution (pie charts) of that quantity.  This module
implements the underlying analysis as an engine observer: it records, after
every interaction that touches a watched vertex, the buffered total and the
origin decomposition, producing a time series ready for plotting or
reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.engine import ProvenanceEngine
from repro.core.interaction import Interaction, Vertex
from repro.core.provenance import OriginSet

__all__ = ["AccumulationPoint", "AccumulationSeries", "AccumulationTracker"]


@dataclass(frozen=True)
class AccumulationPoint:
    """The provenance state of a watched vertex right after one interaction."""

    #: Zero-based position of the interaction in the stream.
    interaction_index: int
    #: Timestamp of the interaction.
    time: float
    #: Buffered quantity at the watched vertex after the interaction.
    buffered_quantity: float
    #: Origin decomposition of the buffered quantity.
    origins: OriginSet

    def distribution(self) -> Dict[Vertex, float]:
        """Per-origin fractions (the pie chart of Figure 2)."""
        return self.origins.fractions()


@dataclass
class AccumulationSeries:
    """The full accumulation history of one watched vertex."""

    vertex: Vertex
    points: List[AccumulationPoint]

    def quantities(self) -> List[float]:
        """Buffered totals after each recorded interaction."""
        return [point.buffered_quantity for point in self.points]

    def times(self) -> List[float]:
        return [point.time for point in self.points]

    def peak(self) -> Optional[AccumulationPoint]:
        """The point with the largest buffered quantity (None if empty)."""
        if not self.points:
            return None
        return max(self.points, key=lambda point: point.buffered_quantity)

    def final_distribution(self) -> Dict[Vertex, float]:
        """Provenance distribution after the last recorded interaction."""
        if not self.points:
            return {}
        return self.points[-1].distribution()

    def distinct_origins(self) -> int:
        """Number of distinct origins that ever contributed to the vertex."""
        origins = set()
        for point in self.points:
            origins.update(point.origins.origins())
        return len(origins)


class AccumulationTracker:
    """Engine observer recording accumulation series for watched vertices.

    Register it on a :class:`~repro.core.engine.ProvenanceEngine`::

        tracker = AccumulationTracker(watched=[79])
        engine = ProvenanceEngine(FifoPolicy(), observers=[tracker])
        engine.run(network)
        series = tracker.series(79)

    Points are only recorded when an interaction *delivers* quantity to a
    watched vertex (the events plotted in Figure 2); pass
    ``record_outgoing=True`` to also record points when the watched vertex
    sends quantity away.
    """

    def __init__(
        self,
        watched: Sequence[Vertex],
        *,
        record_outgoing: bool = False,
    ) -> None:
        self._watched = set(watched)
        self._record_outgoing = record_outgoing
        self._series: Dict[Vertex, List[AccumulationPoint]] = {
            vertex: [] for vertex in watched
        }

    def __call__(
        self, engine: ProvenanceEngine, interaction: Interaction, position: int
    ) -> None:
        touched = []
        if interaction.destination in self._watched:
            touched.append(interaction.destination)
        if self._record_outgoing and interaction.source in self._watched:
            touched.append(interaction.source)
        for vertex in touched:
            self._series[vertex].append(
                AccumulationPoint(
                    interaction_index=position,
                    time=interaction.time,
                    buffered_quantity=engine.buffer_total(vertex),
                    origins=engine.origins(vertex),
                )
            )

    def watched_vertices(self) -> List[Vertex]:
        return sorted(self._watched, key=repr)

    def series(self, vertex: Vertex) -> AccumulationSeries:
        """The accumulation series of one watched vertex."""
        if vertex not in self._series:
            raise KeyError(f"vertex {vertex!r} is not watched by this tracker")
        return AccumulationSeries(vertex=vertex, points=list(self._series[vertex]))
