"""Provenance analyses: distributions, alerts, grouping, contributor selection."""

from repro.analysis.alerts import NeighbourOriginAlertRule, ProvenanceAlert
from repro.analysis.contributors import top_contributors, top_degree, top_receivers
from repro.analysis.distribution import AccumulationPoint, AccumulationSeries, AccumulationTracker
from repro.analysis.flow import contribution, contribution_matrix, direct_flow, top_financiers
from repro.analysis.grouping import (
    attribute_groups,
    community_groups,
    degree_groups,
    hash_groups,
    round_robin_groups,
)

__all__ = [
    "NeighbourOriginAlertRule",
    "ProvenanceAlert",
    "contribution",
    "contribution_matrix",
    "direct_flow",
    "top_financiers",
    "top_contributors",
    "top_degree",
    "top_receivers",
    "AccumulationPoint",
    "AccumulationSeries",
    "AccumulationTracker",
    "attribute_groups",
    "community_groups",
    "degree_groups",
    "hash_groups",
    "round_robin_groups",
]
