"""Vertex grouping strategies for grouped provenance tracking (Section 5.2).

The paper mentions several ways to divide vertices into groups: attribute
values (gender, country), network clustering (METIS), geographical
clustering, or simple round-robin allocation (used in the experiments).
This module provides those strategies as functions returning a
``vertex -> group`` mapping that plugs directly into
:class:`~repro.scalable.grouped.GroupedProportionalPolicy`.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Mapping, Optional, Sequence

from repro.core.interaction import Vertex
from repro.core.network import TemporalInteractionNetwork

__all__ = [
    "round_robin_groups",
    "hash_groups",
    "attribute_groups",
    "degree_groups",
    "community_groups",
]


def round_robin_groups(vertices: Sequence[Vertex], num_groups: int) -> Dict[Vertex, int]:
    """Assign vertices to groups ``0..num_groups-1`` in round-robin order.

    This is the allocation used by the paper's experiments; it notes that
    runtime and memory are insensitive to the allocation method.
    """
    if num_groups <= 0:
        raise ValueError(f"num_groups must be positive, got {num_groups!r}")
    return {vertex: index % num_groups for index, vertex in enumerate(vertices)}


def hash_groups(vertices: Sequence[Vertex], num_groups: int) -> Dict[Vertex, int]:
    """Assign vertices to groups by a stable hash of their representation."""
    if num_groups <= 0:
        raise ValueError(f"num_groups must be positive, got {num_groups!r}")
    return {vertex: hash(repr(vertex)) % num_groups for vertex in vertices}


def attribute_groups(
    attributes: Mapping[Vertex, Hashable],
    *,
    default: Hashable = "other",
) -> Dict[Vertex, Hashable]:
    """Group vertices by an application attribute (country, category, ...).

    ``attributes`` maps each vertex to its attribute value; vertices missing
    from the mapping fall into the ``default`` group.
    """
    return {vertex: attributes.get(vertex, default) for vertex in attributes}


def degree_groups(
    network: TemporalInteractionNetwork, num_groups: int
) -> Dict[Vertex, int]:
    """Group vertices into ``num_groups`` equal-size bands by degree.

    Group 0 holds the highest-degree vertices.  Useful when analysts want
    provenance separated into "hubs" versus "peripheral" origins.
    """
    if num_groups <= 0:
        raise ValueError(f"num_groups must be positive, got {num_groups!r}")
    ranked = sorted(
        network.vertices,
        key=lambda vertex: (-network.degree(vertex), repr(vertex)),
    )
    groups: Dict[Vertex, int] = {}
    band_size = max(1, -(-len(ranked) // num_groups))  # ceil division
    for index, vertex in enumerate(ranked):
        groups[vertex] = min(index // band_size, num_groups - 1)
    return groups


def community_groups(
    network: TemporalInteractionNetwork,
    num_groups: Optional[int] = None,
) -> Dict[Vertex, int]:
    """Group vertices by graph communities (requires ``networkx``).

    Uses greedy modularity communities on the undirected projection of the
    TIN, standing in for the METIS partitioning mentioned by the paper.
    When ``num_groups`` is given, smaller communities are merged (round
    robin) until at most ``num_groups`` groups remain.

    Raises
    ------
    ImportError
        If networkx is not installed (it is an optional dependency).
    """
    import networkx as nx  # imported lazily: optional dependency

    graph = nx.Graph()
    graph.add_nodes_from(network.vertices)
    for edge in network.edges():
        graph.add_edge(edge.source, edge.destination)
    communities = list(nx.algorithms.community.greedy_modularity_communities(graph))
    groups: Dict[Vertex, int] = {}
    for community_index, community in enumerate(communities):
        for vertex in community:
            groups[vertex] = community_index
    if num_groups is not None and num_groups > 0:
        groups = {vertex: group % num_groups for vertex, group in groups.items()}
    return groups
