"""Provenance-based alerting (the use case of Section 7.6 / Figure 9).

The paper demonstrates a practical application of provenance tracking: a
data analyst wants to be alerted whenever a vertex accumulates a large
quantity that does *not* originate from its direct neighbours — the
neighbours only relay quantity generated elsewhere, a pattern associated
with "smurfing" in financial networks.  The alert rule is: after an
interaction delivering quantity to vertex ``v``, raise an alert if the total
quantity buffered at ``v`` exceeds a threshold and none of it originates
from ``v``'s in-neighbours.

:class:`NeighbourOriginAlertRule` implements exactly that rule as an engine
observer; alerts carry the provenance decomposition so they can be
classified (e.g. "few contributors" versus "many contributors", the red and
blue dots of Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.core.engine import ProvenanceEngine
from repro.core.interaction import Interaction, Vertex
from repro.core.provenance import OriginSet

__all__ = ["ProvenanceAlert", "NeighbourOriginAlertRule"]


@dataclass(frozen=True)
class ProvenanceAlert:
    """One raised alert: a vertex accumulated suspicious quantity."""

    #: Zero-based index of the triggering interaction.
    interaction_index: int
    #: Timestamp of the triggering interaction.
    time: float
    #: The vertex that accumulated the quantity.
    vertex: Vertex
    #: Buffered quantity at the vertex when the alert fired.
    buffered_quantity: float
    #: Origin decomposition of the buffered quantity at that moment.
    origins: OriginSet

    @property
    def contributing_vertices(self) -> int:
        """Number of distinct origins contributing to the buffered quantity."""
        return len(self.origins)

    def is_few_contributors(self, threshold: int = 5) -> bool:
        """True when fewer than ``threshold`` origins contribute (red dots)."""
        return self.contributing_vertices < threshold


class NeighbourOriginAlertRule:
    """Engine observer implementing the paper's smurfing-alert rule.

    Parameters
    ----------
    quantity_threshold:
        Minimum buffered quantity for an alert (10K BTC in the paper).
    max_neighbour_fraction:
        The paper's rule alerts only when *none* of the buffered quantity
        originates from a direct neighbour (``0.0``, the default).  Setting a
        small positive fraction relaxes the rule: alert when at most that
        fraction of the buffer originates from direct neighbours, which is
        useful on networks where senders frequently generate small newborn
        amounts themselves.
    max_alerts:
        Stop recording after this many alerts (None for unlimited); keeps
        long streaming runs bounded.
    """

    def __init__(
        self,
        quantity_threshold: float,
        *,
        max_neighbour_fraction: float = 0.0,
        max_alerts: Optional[int] = None,
    ) -> None:
        if quantity_threshold <= 0:
            raise ValueError(
                f"quantity_threshold must be positive, got {quantity_threshold!r}"
            )
        if not 0.0 <= max_neighbour_fraction < 1.0:
            raise ValueError(
                f"max_neighbour_fraction must be in [0, 1), got {max_neighbour_fraction!r}"
            )
        self.quantity_threshold = quantity_threshold
        self.max_neighbour_fraction = max_neighbour_fraction
        self.max_alerts = max_alerts
        self.alerts: List[ProvenanceAlert] = []
        # The rule needs each vertex's direct (in-)neighbours; they are
        # accumulated online from the interactions seen so far, so the rule
        # works in a true streaming setting without a pre-pass.
        self._in_neighbors: Dict[Vertex, Set[Vertex]] = {}

    def __call__(
        self, engine: ProvenanceEngine, interaction: Interaction, position: int
    ) -> None:
        destination = interaction.destination
        neighbours = self._in_neighbors.setdefault(destination, set())
        neighbours.add(interaction.source)

        if self.max_alerts is not None and len(self.alerts) >= self.max_alerts:
            return

        buffered = engine.buffer_total(destination)
        if buffered <= self.quantity_threshold:
            return

        origins = engine.origins(destination)
        if self._neighbour_fraction(origins, neighbours) > self.max_neighbour_fraction:
            return

        self.alerts.append(
            ProvenanceAlert(
                interaction_index=position,
                time=interaction.time,
                vertex=destination,
                buffered_quantity=buffered,
                origins=origins,
            )
        )

    @staticmethod
    def _neighbour_fraction(origins: OriginSet, neighbours: Set[Vertex]) -> float:
        """Fraction of the buffered quantity originating from direct neighbours."""
        total = origins.total
        if total <= 0:
            return 0.0
        from_neighbours = sum(origins.get(neighbour, 0.0) for neighbour in neighbours)
        return from_neighbours / total

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def alert_count(self) -> int:
        return len(self.alerts)

    def few_contributor_alerts(self, threshold: int = 5) -> List[ProvenanceAlert]:
        """Alerts whose quantity came from fewer than ``threshold`` origins."""
        return [alert for alert in self.alerts if alert.is_few_contributors(threshold)]

    def summary(self) -> Dict[str, float]:
        """Aggregate alert statistics used by the Figure 9 bench."""
        few = len(self.few_contributor_alerts())
        return {
            "alerts": len(self.alerts),
            "few_contributor_alerts": few,
            "many_contributor_alerts": len(self.alerts) - few,
        }
