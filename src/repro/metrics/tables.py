"""Plain-text table rendering for experiment reports.

The benchmark harness prints results in the same row/column layout as the
paper's tables.  This module renders lists of dict rows as aligned
fixed-width text tables without any third-party dependency.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value: Any, *, float_digits: int = 4) -> str:
    """Render a single cell: floats get fixed precision, None becomes ``--``.

    ``--`` is the marker the paper uses for infeasible configurations.
    """
    if value is None:
        return "--"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 10 ** (-float_digits):
            return f"{value:.3g}"
        return f"{value:.{float_digits}g}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, Any]],
    *,
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    float_digits: int = 4,
) -> str:
    """Render ``rows`` (a list of dicts) as an aligned text table.

    Parameters
    ----------
    rows:
        The data rows.  Missing keys render as ``--``.
    columns:
        Column order; defaults to the keys of the first row (then any extra
        keys found in later rows, in first-seen order).
    title:
        Optional title line printed above the table.
    float_digits:
        Significant digits used for float cells.
    """
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    columns = list(columns)

    rendered_rows: List[List[str]] = [
        [format_value(row.get(column), float_digits=float_digits) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(rendered[index]) for rendered in rendered_rows))
        if rendered_rows
        else len(str(column))
        for index, column in enumerate(columns)
    ]

    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for rendered in rendered_rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(rendered, widths)))
    return "\n".join(lines)
