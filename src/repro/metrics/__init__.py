"""Instrumentation: memory accounting, timing, and table rendering."""

from repro.metrics.memory import MemoryCeiling, deep_sizeof, format_bytes, policy_memory_bytes
from repro.metrics.tables import format_table, format_value
from repro.metrics.timing import StageTimings, Timer

__all__ = [
    "MemoryCeiling",
    "deep_sizeof",
    "format_bytes",
    "policy_memory_bytes",
    "format_table",
    "format_value",
    "StageTimings",
    "Timer",
]
