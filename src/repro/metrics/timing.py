"""Lightweight wall-clock instrumentation used by the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Timer", "StageTimings"]


class Timer:
    """A context-manager stopwatch.

    >>> with Timer() as timer:
    ...     sum(range(1000))
    500 ...
    >>> timer.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start


@dataclass
class StageTimings:
    """Named stage durations collected during an experiment run."""

    stages: Dict[str, float] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)

    def record(self, name: str, seconds: float) -> None:
        """Store (or accumulate) the duration of a named stage."""
        if name not in self.stages:
            self.order.append(name)
            self.stages[name] = 0.0
        self.stages[name] += seconds

    def time(self, name: str) -> "_StageContext":
        """Context manager measuring a stage and recording it under ``name``."""
        return _StageContext(self, name)

    @property
    def total(self) -> float:
        return sum(self.stages.values())

    def as_rows(self) -> List[Dict[str, float]]:
        """Rows of ``{"stage": name, "seconds": duration}`` in record order."""
        return [{"stage": name, "seconds": self.stages[name]} for name in self.order]


class _StageContext:
    def __init__(self, timings: StageTimings, name: str) -> None:
        self._timings = timings
        self._name = name
        self._timer = Timer()

    def __enter__(self) -> "_StageContext":
        self._timer.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._timer.__exit__(exc_type, exc, tb)
        self._timings.record(self._name, self._timer.elapsed)
