"""Deep memory estimation of provenance state.

The paper's Tables 8 and the memory curves of Figures 5-8 report the peak
memory consumed by the provenance annotations.  The authors' C
implementation measures process RSS; in Python, process-level numbers are
dominated by the interpreter, so this module instead *accounts* for the
objects actually reachable from a policy (buffers, heaps, dicts, numpy
arrays) with :func:`deep_sizeof`, and offers a :class:`MemoryCeiling`
observer that reproduces the "infeasible / out of memory" entries of the
paper without exhausting physical RAM.
"""

from __future__ import annotations

import sys
from collections import deque
from typing import Any, Callable, Iterable, Optional, Set

import numpy as np

from repro.exceptions import MemoryBudgetExceededError

__all__ = ["deep_sizeof", "policy_memory_bytes", "MemoryCeiling", "format_bytes"]


def deep_sizeof(obj: Any, *, _seen: Optional[Set[int]] = None) -> int:
    """Recursively estimate the memory footprint of ``obj`` in bytes.

    Handles the container types used by the library (dict, list, tuple, set,
    deque, dataclass-like objects with ``__dict__`` or ``__slots__``) and
    numpy arrays (counted by ``nbytes`` plus object overhead).  Shared
    objects are counted once.
    """
    if _seen is None:
        _seen = set()
    object_id = id(obj)
    if object_id in _seen:
        return 0
    _seen.add(object_id)

    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + sys.getsizeof(obj, 0)

    size = sys.getsizeof(obj, 0)

    if isinstance(obj, dict):
        for key, value in obj.items():
            size += deep_sizeof(key, _seen=_seen)
            size += deep_sizeof(value, _seen=_seen)
        return size

    if isinstance(obj, (list, tuple, set, frozenset, deque)):
        for item in obj:
            size += deep_sizeof(item, _seen=_seen)
        return size

    if isinstance(obj, (str, bytes, bytearray, int, float, complex, bool)) or obj is None:
        return size

    # Generic objects: follow __dict__ and __slots__ attributes.
    obj_dict = getattr(obj, "__dict__", None)
    if obj_dict is not None:
        size += deep_sizeof(obj_dict, _seen=_seen)
    slots = _all_slots(type(obj))
    for slot in slots:
        if hasattr(obj, slot):
            size += deep_sizeof(getattr(obj, slot), _seen=_seen)
    return size


def _all_slots(cls: type) -> Iterable[str]:
    """All ``__slots__`` names declared along the MRO of ``cls``."""
    names = []
    for klass in cls.__mro__:
        slots = getattr(klass, "__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        names.extend(slots)
    return names


def policy_memory_bytes(policy: Any) -> int:
    """Estimated bytes consumed by a policy's *resident* provenance state.

    Walks the policy's stores like any other attribute, which makes the
    accounting store-aware for free: a spilling backend
    (:class:`repro.stores.SqliteStore`) only exposes its hot tier to the
    traversal, so entries spilled to disk do not count against memory
    ceilings — exactly the semantics that lets a spill-backed run stay
    feasible where the dict-backed equivalent exceeds the ceiling.
    """
    return deep_sizeof(policy)


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary unit suffix (KB, MB, GB)."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{value:.0f}{unit}"
            return f"{value:.2f}{unit}"
        value /= 1024.0
    return f"{value:.2f}TB"  # pragma: no cover - unreachable


class MemoryCeiling:
    """An engine observer that aborts a run when memory grows past a ceiling.

    Checking the deep size of a policy is itself expensive, so the check
    runs every ``check_every`` interactions.  When the ceiling is exceeded a
    :class:`~repro.exceptions.MemoryBudgetExceededError` is raised; the
    benchmark harness catches it and reports the configuration as
    infeasible, mirroring the "--" entries of Tables 7 and 8.
    """

    def __init__(
        self,
        ceiling_bytes: int,
        *,
        check_every: int = 1000,
        measure: Callable[[Any], int] = policy_memory_bytes,
    ) -> None:
        if ceiling_bytes <= 0:
            raise ValueError(f"ceiling_bytes must be positive, got {ceiling_bytes!r}")
        if check_every <= 0:
            raise ValueError(f"check_every must be positive, got {check_every!r}")
        self.ceiling_bytes = ceiling_bytes
        self.check_every = check_every
        self.measure = measure
        self.peak_bytes = 0

    def __call__(self, engine, interaction, position: int) -> None:
        if (position + 1) % self.check_every:
            return
        used = self.measure(engine.policy)
        self.peak_bytes = max(self.peak_bytes, used)
        if used > self.ceiling_bytes:
            raise MemoryBudgetExceededError(
                used_bytes=used,
                ceiling_bytes=self.ceiling_bytes,
                context=f"after {position + 1} interactions with policy "
                f"{engine.policy.describe()}",
            )
