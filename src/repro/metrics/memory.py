"""Deep memory estimation of provenance state.

The paper's Tables 8 and the memory curves of Figures 5-8 report the peak
memory consumed by the provenance annotations.  The authors' C
implementation measures process RSS; in Python, process-level numbers are
dominated by the interpreter, so this module instead *accounts* for the
objects actually reachable from a policy (buffers, heaps, dicts, numpy
arrays) with :func:`deep_sizeof`, and offers a :class:`MemoryCeiling`
observer that reproduces the "infeasible / out of memory" entries of the
paper without exhausting physical RAM.
"""

from __future__ import annotations

import sys
from collections import deque
from typing import Any, Callable, Iterable, Optional, Set

import numpy as np

from repro.exceptions import MemoryBudgetExceededError

__all__ = ["deep_sizeof", "policy_memory_bytes", "MemoryCeiling", "format_bytes"]


#: Leaf types whose size is just ``sys.getsizeof``: handled inline in the
#: container loops below so the million-float provenance dicts never pay a
#: per-element traversal frame.  ``bool`` is a subclass of ``int`` and
#: needs no separate entry; subclasses of these fall through to the slow
#: path, matching the old recursive ``isinstance`` behaviour.
_SCALAR_TYPES = frozenset(
    (str, bytes, bytearray, int, float, complex, bool, type(None))
)


def deep_sizeof(obj: Any, *, _seen: Optional[Set[int]] = None) -> int:
    """Estimate the memory footprint of ``obj`` in bytes.

    Handles the container types used by the library (dict, list, tuple, set,
    deque, dataclass-like objects with ``__dict__`` or ``__slots__``) and
    numpy arrays (counted by ``nbytes`` plus object overhead).  Shared
    containers and arrays are counted once; scalar leaves are sized per
    reference (deduplicating interned ints or floats would shave noise-level
    bytes at the cost of an id-set probe for every entry of every store).

    The traversal is an explicit work stack, and containers holding only
    scalars — provenance stores are overwhelmingly flat ``{vertex: float}``
    dicts — are sized with C-level ``map``/``sum`` passes instead of a
    Python-level loop per element.
    """
    seen = _seen if _seen is not None else set()
    seen_add = seen.add
    getsizeof = sys.getsizeof
    scalar_types = _SCALAR_TYPES
    total = 0
    stack = [obj]
    while stack:
        current = stack.pop()
        object_id = id(current)
        if object_id in seen:
            continue
        seen_add(object_id)

        if isinstance(current, np.ndarray):
            base = current.base
            if isinstance(base, np.ndarray):
                # A view (e.g. an arena row, or thousands of them) owns no
                # data: charge only the view object and push the backing
                # buffer, which the seen-set counts exactly once however
                # many views share it.  This is what keeps dense/mmap
                # arena accounting linear instead of per-view quadratic.
                total += getsizeof(current, 0)
                stack.append(base)
                continue
            if isinstance(base, np.memmap) or isinstance(current, np.memmap):
                # Memory-mapped buffers are file-backed pages, not heap:
                # count the object overhead, not nbytes (copy-on-write
                # pages that were actually dirtied are invisible from
                # here; the conservative choice keeps mmap resume from
                # instantly tripping memory ceilings sized for the heap).
                total += getsizeof(current, 0)
                continue
            total += int(current.nbytes) + getsizeof(current, 0)
            continue

        total += getsizeof(current, 0)

        if isinstance(current, dict):
            values = current.values()
            if (
                set(map(type, current)) <= scalar_types
                and set(map(type, values)) <= scalar_types
            ):
                total += sum(map(getsizeof, current)) + sum(map(getsizeof, values))
            else:
                for key, value in current.items():
                    if type(key) in scalar_types:
                        total += getsizeof(key, 0)
                    else:
                        stack.append(key)
                    if type(value) in scalar_types:
                        total += getsizeof(value, 0)
                    else:
                        stack.append(value)
            continue

        if isinstance(current, (list, tuple, set, frozenset, deque)):
            if set(map(type, current)) <= scalar_types:
                total += sum(map(getsizeof, current))
            else:
                for item in current:
                    if type(item) in scalar_types:
                        total += getsizeof(item, 0)
                    else:
                        stack.append(item)
            continue

        if isinstance(
            current, (str, bytes, bytearray, int, float, complex, bool)
        ) or current is None:
            continue

        # Generic objects: follow __dict__ and __slots__ attributes.
        obj_dict = getattr(current, "__dict__", None)
        if obj_dict is not None:
            stack.append(obj_dict)
        for slot in _all_slots(type(current)):
            if hasattr(current, slot):
                stack.append(getattr(current, slot))
    return total


def _all_slots(cls: type) -> Iterable[str]:
    """All ``__slots__`` names declared along the MRO of ``cls``."""
    names = []
    for klass in cls.__mro__:
        slots = getattr(klass, "__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        names.extend(slots)
    return names


def policy_memory_bytes(policy: Any) -> int:
    """Estimated bytes consumed by a policy's *resident* provenance state.

    Walks the policy's stores like any other attribute, which makes the
    accounting store-aware for free: a spilling backend
    (:class:`repro.stores.SqliteStore`) only exposes its hot tier to the
    traversal, so entries spilled to disk do not count against memory
    ceilings — exactly the semantics that lets a spill-backed run stay
    feasible where the dict-backed equivalent exceeds the ceiling.
    """
    return deep_sizeof(policy)


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary unit suffix (KB, MB, GB)."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{value:.0f}{unit}"
            return f"{value:.2f}{unit}"
        value /= 1024.0
    return f"{value:.2f}TB"  # pragma: no cover - unreachable


class MemoryCeiling:
    """An engine observer that aborts a run when memory grows past a ceiling.

    Checking the deep size of a policy is itself expensive, so the check
    runs every ``check_every`` interactions.  When the ceiling is exceeded a
    :class:`~repro.exceptions.MemoryBudgetExceededError` is raised; the
    benchmark harness catches it and reports the configuration as
    infeasible, mirroring the "--" entries of Tables 7 and 8.
    """

    def __init__(
        self,
        ceiling_bytes: int,
        *,
        check_every: int = 1000,
        measure: Callable[[Any], int] = policy_memory_bytes,
    ) -> None:
        if ceiling_bytes <= 0:
            raise ValueError(f"ceiling_bytes must be positive, got {ceiling_bytes!r}")
        if check_every <= 0:
            raise ValueError(f"check_every must be positive, got {check_every!r}")
        self.ceiling_bytes = ceiling_bytes
        self.check_every = check_every
        self.measure = measure
        self.peak_bytes = 0

    def __call__(self, engine, interaction, position: int) -> None:
        if (position + 1) % self.check_every:
            return
        used = self.measure(engine.policy)
        self.peak_bytes = max(self.peak_bytes, used)
        if used > self.ceiling_bytes:
            raise MemoryBudgetExceededError(
                used_bytes=used,
                ceiling_bytes=self.ceiling_bytes,
                context=f"after {position + 1} interactions with policy "
                f"{engine.policy.describe()}",
            )
