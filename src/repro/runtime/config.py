"""Declarative configuration of a provenance run.

A :class:`RunConfig` captures *everything* the :class:`repro.runtime.Runner`
needs to execute one run — which dataset, which policy with which options,
how the stream is driven (batch size, limit, sampling), what instrumentation
is attached (observers, memory ceiling, checkpointing) and whether the run is
sharded over vertex partitions.  The CLI, the benchmark harness and the
examples all build one of these and hand it to a Runner, so every execution
path in the repository goes through the same, well-tested pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Sequence, Union

from repro.core.interaction import Interaction
from repro.core.network import TemporalInteractionNetwork
from repro.exceptions import RunConfigurationError
from repro.policies.base import SelectionPolicy
from repro.sources import InteractionSource
from repro.stores import StoreSpec, resolve_store_spec

__all__ = ["RunConfig", "DEFAULT_BATCH_SIZE", "DatasetSource", "PolicySpec"]

#: Default number of interactions handed to ``SelectionPolicy.process_many``
#: per engine iteration.  Large enough to amortise the per-batch overhead,
#: small enough that sampling boundaries rarely clip it.
DEFAULT_BATCH_SIZE = 256

#: What a run can consume: a preset name, a CSV path, an in-memory network,
#: an :class:`~repro.sources.InteractionSource` (possibly live), or any
#: time-ordered iterable of interactions.
DatasetSource = Union[
    str, Path, TemporalInteractionNetwork, InteractionSource, Iterable[Interaction]
]

#: A policy is referenced by registry name or passed as a ready instance.
PolicySpec = Union[str, SelectionPolicy]

_SHARD_MODES = ("components", "hash", "mincut")
_EXECUTORS = ("serial", "threads", "processes")
#: Accepted spellings of the ``shard_strategy`` alias (singular forms are
#: normalised onto the canonical ``_SHARD_MODES`` entries).
_STRATEGY_ALIASES = {
    "component": "components",
    "components": "components",
    "hash": "hash",
    "mincut": "mincut",
}


@dataclass
class RunConfig:
    """Full specification of one provenance run.

    Parameters
    ----------
    dataset:
        Preset name (see :func:`repro.datasets.available_presets`), path to
        an interaction CSV, a :class:`TemporalInteractionNetwork`, or a raw
        iterable of interactions.
    scale, seed:
        Forwarded to :func:`repro.datasets.load_preset` for preset datasets.
    stream:
        When the dataset is a CSV path, feed rows to the policy lazily
        instead of materialising a network first — this is how files larger
        than memory are ingested.  Streamed runs have no vertex universe, so
        they cannot be sharded and cannot run policies that need the full
        universe up front (the dense proportional policy).
    source:
        An explicit :class:`~repro.sources.InteractionSource` to ingest
        from (overrides ``dataset``); the run follows the source until it
        exhausts.  Live sources (``CsvTailSource(follow=True)``,
        rate-limited ``GeneratorSource`` feeds, ``MergeSource`` over them)
        are driven through the micro-batch scheduler.
    follow:
        When the dataset is a CSV path, tail it for appended rows instead
        of reading it once (:class:`~repro.sources.CsvTailSource`); pair
        with ``idle_timeout`` so an idle producer ends the run instead of
        hanging it.
    micro_batch, max_in_flight, flush_interval:
        Micro-batch scheduler knobs (see
        :class:`~repro.sources.MicroBatchScheduler`): target interactions
        per flush (default: ``batch_size``), the bound on interactions
        buffered between source and policy (backpressure; default
        ``4 * micro_batch``), and an optional wall-clock flush deadline for
        slow feeds.  Setting any of them routes the run through an explicit
        scheduler even for eager datasets; results are bit-identical to the
        eager path either way.
    idle_timeout:
        With ``follow=True``: end the run after this many seconds without
        a new row (the termination guard of follow runs).
    resume_from:
        Path of an engine checkpoint (``checkpoint_path`` /
        ``checkpoint_every`` of an earlier run) to resume from: the policy
        state is restored and the first ``interactions_processed``
        interactions of the stream are skipped, so a resumed run continues
        exactly where the checkpoint was taken.
    vertex_type:
        Converter for the vertex columns of CSV datasets (e.g. ``int``).
    columnar:
        Columnar fast path: drive the policy over struct-of-array
        :class:`~repro.core.blocks.InteractionBlock` batches with interned
        vertex ids instead of boxed interaction objects.  ``None``
        (default) engages automatically for batched eager network runs —
        including sharded ones — whenever the policy has an array kernel
        for its store backend (noprov, proportional-dense and the
        entry-based policies on dict-backed stores); the columnar form is
        built once per network and cached.  ``False`` keeps the object
        path.  ``True`` forces block-driven execution everywhere:
        scheduler/stream runs columnarise each flushed batch (conversion
        roughly cancels the kernel win, hence opt-in), policies without a
        kernel run through a materialising adapter, and CSV datasets are
        parsed straight into column arrays without ever building
        interaction objects.  Results are bit-identical either way;
        observers and per-interaction runs always use the object path.
    kernel:
        How columnar spans are driven (see
        :func:`repro.core.kernels.get_kernel`).  ``"auto"`` / ``"fused"``
        (default) hand whole clip spans — bounded only by the exact
        sample/peak/checkpoint offsets — to
        :meth:`SelectionPolicy.process_run`, routing hot policies through
        a compiled kernel (numba when installed, else a cached
        compiled-C library) with a pure-numpy fused fallback when neither
        resolves (``REPRO_JIT=0`` forces the fallback); ``"batch"``
        keeps the fixed-size per-chunk ``process_block`` tier.  Results
        are bit-identical in every mode; backend compile time is spent
        before the run timer starts and reported in
        :attr:`RunResult.kernel_stats`.  ``"fused"`` only differs from
        ``"auto"`` in intent: it documents that the caller wants the
        fused tier and rejects ``columnar=False``.
    policy:
        Registry name (``"fifo"``, ``"proportional-sparse"``, ...) or a
        ready :class:`SelectionPolicy` instance.
    policy_options:
        Keyword arguments for the registry factory.  The structural options
        of the scalable policies are recognised and resolved against the
        dataset: ``k`` (selective), ``num_groups`` (grouped), ``capacity``
        (budget), ``window`` (windowed).
    store, store_options:
        Provenance-store backend the policy keeps its annotation state in:
        ``"dict"`` (in-memory, default), ``"dense"`` (fixed-dimension
        vector state packed as rows of one contiguous arena matrix, the
        layout the fused kernels consume), ``"mmap"`` (the dense arena
        plus zero-copy snapshot files: engine checkpoints write the arena
        to a ``.arena`` sidecar and resume memory-maps it back
        copy-on-write — see :class:`repro.stores.MmapDenseStore`) or
        ``"sqlite"`` (bounded resident entries with LRU spill to disk —
        see :class:`repro.stores.SqliteStore`).  ``store_options`` forwards
        backend options such as ``hot_capacity`` and ``directory``.  When
        both are left unset, policies fall back to the
        ``REPRO_DEFAULT_STORE`` environment variable, then to dicts.
        Sharded runs build one store instance per shard, so shards spill
        independently.
    observers:
        :data:`~repro.core.engine.InteractionObserver` callables wired into
        the engine.  Observers force per-interaction execution because they
        must see the policy state after every single interaction.
    batch_size:
        Interactions per :meth:`SelectionPolicy.process_many` call; values
        of 0 or 1 select the per-interaction path.
    limit, sample_every:
        As in :meth:`repro.core.engine.ProvenanceEngine.run`.
    checkpoint_path:
        When set, the engine state is saved there after the run completes
        (see :mod:`repro.core.checkpoint`).
    checkpoint_every:
        Additionally checkpoint every N processed interactions (registers an
        observer, hence forces per-interaction execution).
    memory_ceiling_bytes, memory_check_every:
        Classify the run as infeasible when the policy state exceeds the
        ceiling; with ``memory_check_every`` the ceiling is also enforced
        mid-run, aborting early.
    measure_memory:
        Account the policy's final memory footprint even without a ceiling
        (the benchmark harness needs the number for Tables 7/8).
    shards:
        When > 1, partition the network into vertex shards and run one
        engine per shard (see :mod:`repro.runtime.partition`).
    shard_by:
        ``"components"`` (weakly-connected components; exact), ``"hash"``
        (stable vertex hash; documented-approximate for cross-shard flows)
        or ``"mincut"`` (seeded multilevel min-cut partitioner; balanced
        like hash, with far fewer cross-shard flows — see
        :mod:`repro.runtime.mincut`).
    shard_strategy:
        Alias for ``shard_by`` accepting the CLI spellings
        (``"component"``/``"components"``, ``"hash"``, ``"mincut"``); when
        set it overrides ``shard_by``.
    shard_imbalance:
        Hard balance cap of the min-cut partitioner: the heaviest shard's
        interaction load may exceed the ideal (total / shards) by at most
        this factor (default 1.1, i.e. ≤ 1.1×).  Ignored by the other
        strategies.
    partition_seed:
        Seed of the min-cut partitioner's tie-breaking orders; the same
        seed reproduces the same plan bit for bit.
    shard_executor:
        ``"serial"``, ``"threads"`` or ``"processes"``.
    shared_memory:
        Zero-copy shard fabric for the ``"processes"`` executor: shard
        column arrays (plus the interner's vertex table) are placed in
        :mod:`multiprocessing.shared_memory` segments (mmap-backed temp
        files where unavailable) and dispatched to a **persistent** worker
        pool as ``(segment, offset, length, dtype)`` handles instead of
        pickled payloads; dense result state travels back the same way.
        Results are bit-identical to the pickled executor; only the
        transport changes.  ``True`` enables it (requires
        ``shard_executor="processes"`` and ``shards > 1``), ``False``/
        ``None`` (default) keeps the pickled payloads.  See
        :mod:`repro.runtime.shm`.
    max_workers:
        Worker count for the parallel executors (None: library default).
    streaming_shards:
        When > 0, run **partitioned streaming**: interactions are polled
        (from the dataset, a CSV path or a live ``source=``), routed to
        this many vertex shards by the
        :class:`~repro.sources.PartitionedScheduler`, and dispatched as
        micro-batches through rolling shared-memory segments
        (:class:`repro.runtime.shm.ShardStreamFabric`) to a persistent
        worker pool whose engines stay resident across batches.  Results
        are bit-identical to eager sharded and single-consumer streaming
        runs.  Mutually exclusive with ``shards``; ``shard_by`` selects
        the membership (``hash``, ``mincut`` — frozen from a warm-up
        prefix when there is no network to partition up front — or
        ``components`` for dataset-backed runs).
    streaming_ring:
        Reusable fixed-capacity segments per shard in the stream fabric's
        ring (default 4).  Each slot holds one in-flight micro-batch;
        more slots let the parent run further ahead of a slow shard
        before backpressure stalls it.
    streaming_warmup:
        Interactions of a live stream to buffer before freezing a
        ``mincut`` membership (source-only runs; default 4096).  The
        warm-up prefix is processed normally afterwards.
    max_task_retries:
        Supervision budget of the shard fabric: how many times a crashed
        worker's shard work is re-dispatched (batch) or replayed
        (streaming) before the shard is quarantined and the run fails fast
        with per-shard diagnostics.  Policies are deterministic over an
        interaction prefix, so every recovery is bit-identical to an
        uninterrupted run.  0 disables supervision (a crash aborts
        immediately, pre-supervision behaviour).
    retry_backoff:
        Base of the exponential backoff (seconds) slept before each
        re-dispatch; attempt ``n`` waits ``retry_backoff * 2**(n-1)``,
        capped at 2 s.
    degradation:
        ``"auto"`` (default): infrastructure failures — segment allocation
        ``ENOSPC`` on /dev/shm, worker respawn storms — demote the run one
        transport at a time (shm fabric → pickled process pool → serial)
        with a logged reason instead of failing, and the demotions are
        recorded in ``RunResult.fault_stats``.  ``"off"``: fail on the
        configured transport.  Quarantined shards never degrade — a shard
        that deterministically crashes its worker would crash every
        transport.
    on_bad_row:
        Streamed CSV rows that fail to parse: ``"raise"`` (default) aborts
        the run with the offending path:line; ``"skip"`` drops the row,
        counts it, and surfaces the count in ``RunResult.fault_stats`` —
        so one torn/garbage row in a live feed no longer kills a follow
        run.
    """

    dataset: DatasetSource = "taxis"
    scale: float = 1.0
    seed: Optional[int] = None
    stream: bool = False
    source: Optional[InteractionSource] = None
    follow: bool = False
    micro_batch: Optional[int] = None
    max_in_flight: Optional[int] = None
    flush_interval: Optional[float] = None
    idle_timeout: Optional[float] = None
    resume_from: Optional[Union[str, Path]] = None
    vertex_type: type = str
    columnar: Optional[bool] = None
    kernel: str = "auto"
    policy: PolicySpec = "fifo"
    policy_options: Dict[str, Any] = field(default_factory=dict)
    store: Union[str, StoreSpec, None] = None
    store_options: Dict[str, Any] = field(default_factory=dict)
    observers: Sequence = ()
    batch_size: int = DEFAULT_BATCH_SIZE
    limit: Optional[int] = None
    sample_every: int = 0
    checkpoint_path: Optional[Union[str, Path]] = None
    checkpoint_every: int = 0
    memory_ceiling_bytes: Optional[int] = None
    memory_check_every: Optional[int] = None
    measure_memory: bool = False
    shards: int = 0
    shard_by: str = "components"
    shard_strategy: Optional[str] = None
    shard_imbalance: float = 1.1
    partition_seed: int = 0
    shard_executor: str = "serial"
    shared_memory: Optional[bool] = None
    max_workers: Optional[int] = None
    streaming_shards: int = 0
    streaming_ring: int = 4
    streaming_warmup: Optional[int] = None
    max_task_retries: int = 1
    retry_backoff: float = 0.05
    degradation: str = "auto"
    on_bad_row: str = "raise"

    def __post_init__(self) -> None:
        if self.store is not None or self.store_options:
            # Validate the backend name and options eagerly so a typo fails
            # at configuration time, not mid-run inside a policy.
            resolve_store_spec(self.store, options=self.store_options)
        if self.batch_size < 0:
            raise RunConfigurationError(f"batch_size must be >= 0, got {self.batch_size}")
        if self.kernel not in ("auto", "fused", "batch"):
            raise RunConfigurationError(
                f"kernel must be 'auto', 'fused' or 'batch', got {self.kernel!r}"
            )
        if self.kernel == "fused" and self.columnar is False:
            raise RunConfigurationError(
                "kernel='fused' drives columnar spans; it cannot be combined "
                "with columnar=False — drop one of the two"
            )
        if self.sample_every < 0:
            raise RunConfigurationError(f"sample_every must be >= 0, got {self.sample_every}")
        if self.shards < 0:
            raise RunConfigurationError(f"shards must be >= 0, got {self.shards}")
        if self.shard_strategy is not None:
            normalized = _STRATEGY_ALIASES.get(self.shard_strategy)
            if normalized is None:
                raise RunConfigurationError(
                    f"shard_strategy must be one of "
                    f"{tuple(sorted(set(_STRATEGY_ALIASES)))}, got "
                    f"{self.shard_strategy!r}"
                )
            self.shard_by = normalized
        if self.shard_by not in _SHARD_MODES:
            raise RunConfigurationError(
                f"shard_by must be one of {_SHARD_MODES}, got {self.shard_by!r}"
            )
        if self.shard_imbalance < 1.0:
            raise RunConfigurationError(
                f"shard_imbalance must be >= 1.0, got {self.shard_imbalance}"
            )
        if self.shard_executor not in _EXECUTORS:
            raise RunConfigurationError(
                f"shard_executor must be one of {_EXECUTORS}, got {self.shard_executor!r}"
            )
        if self.micro_batch is not None and self.micro_batch < 1:
            raise RunConfigurationError(
                f"micro_batch must be >= 1, got {self.micro_batch}"
            )
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise RunConfigurationError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}"
            )
        if self.flush_interval is not None and self.flush_interval <= 0:
            raise RunConfigurationError(
                f"flush_interval must be positive, got {self.flush_interval}"
            )
        if self.idle_timeout is not None:
            if self.idle_timeout <= 0:
                raise RunConfigurationError(
                    f"idle_timeout must be positive, got {self.idle_timeout}"
                )
            if not self.follow:
                # Only the tailing source the Runner builds consumes it; an
                # explicit source= carries its own termination policy.
                raise RunConfigurationError(
                    "idle_timeout only applies to follow=True runs; configure "
                    "termination on the source itself for source=/stream runs"
                )
        if self.follow:
            if self.source is not None:
                raise RunConfigurationError(
                    "follow=True applies to CSV-path datasets; an explicit "
                    "source= already decides how the stream is ingested"
                )
            if not isinstance(self.dataset, (str, Path)):
                raise RunConfigurationError(
                    "follow=True needs a CSV path dataset to tail"
                )
            if self.stream:
                raise RunConfigurationError(
                    "follow=True already ingests lazily; drop stream=True"
                )
        if self.source is not None and self.stream:
            raise RunConfigurationError(
                "stream=True only applies to CSV paths; the run already has "
                "an explicit source"
            )
        if self.shards > 1:
            if self.stream:
                raise RunConfigurationError(
                    "sharded runs need the full network; streamed CSV ingestion "
                    "cannot be sharded"
                )
            if self.source is not None or self.follow:
                raise RunConfigurationError(
                    "sharded runs need the full network up front; streaming "
                    "sources cannot be sharded"
                )
            if self.resume_from is not None:
                raise RunConfigurationError(
                    "resuming a sharded run from a checkpoint is not supported"
                )
            if (
                self.micro_batch is not None
                or self.max_in_flight is not None
                or self.flush_interval is not None
            ):
                raise RunConfigurationError(
                    "micro_batch/max_in_flight/flush_interval configure the "
                    "single-engine scheduler; sharded runs batch per shard "
                    "via batch_size"
                )
            if self.observers or self.checkpoint_every:
                raise RunConfigurationError(
                    "observers and periodic checkpointing are per-engine and are "
                    "not supported in sharded runs"
                )
            if self.checkpoint_path is not None:
                raise RunConfigurationError(
                    "checkpointing a sharded run is not supported yet"
                )
        if self.stream and isinstance(self.dataset, TemporalInteractionNetwork):
            raise RunConfigurationError(
                "stream=True only applies to CSV paths; the dataset is already "
                "an in-memory network"
            )
        if self.stream and isinstance(self.dataset, InteractionSource):
            raise RunConfigurationError(
                "stream=True only applies to CSV paths; the dataset is already "
                "a streaming source"
            )
        if self.checkpoint_every < 0:
            raise RunConfigurationError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.streaming_shards < 0:
            raise RunConfigurationError(
                f"streaming_shards must be >= 0, got {self.streaming_shards}"
            )
        if self.streaming_ring < 1:
            raise RunConfigurationError(
                f"streaming_ring must be >= 1, got {self.streaming_ring}"
            )
        if self.streaming_warmup is not None and self.streaming_warmup < 1:
            raise RunConfigurationError(
                f"streaming_warmup must be >= 1, got {self.streaming_warmup}"
            )
        if self.max_task_retries < 0:
            raise RunConfigurationError(
                f"max_task_retries must be >= 0, got {self.max_task_retries}"
            )
        if self.retry_backoff < 0:
            raise RunConfigurationError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )
        if self.degradation not in ("auto", "off"):
            raise RunConfigurationError(
                f"degradation must be 'auto' or 'off', got {self.degradation!r}"
            )
        if self.on_bad_row not in ("raise", "skip"):
            raise RunConfigurationError(
                f"on_bad_row must be 'raise' or 'skip', got {self.on_bad_row!r}"
            )
        if self.streaming_shards:
            if self.shards > 1:
                raise RunConfigurationError(
                    "streaming_shards and shards are mutually exclusive: "
                    "partitioned streaming is already a sharded run"
                )
            if self.observers:
                raise RunConfigurationError(
                    "observers are per-engine, per-interaction hooks; "
                    "partitioned streaming runs shard engines in worker "
                    "processes and cannot fire them"
                )
            if self.memory_ceiling_bytes is not None or self.memory_check_every:
                raise RunConfigurationError(
                    "memory ceilings are enforced through observers and are "
                    "not supported with streaming_shards"
                )
            if self.shared_memory is not None:
                raise RunConfigurationError(
                    "streaming_shards always runs on the shared-memory stream "
                    "fabric; drop the shared_memory flag"
                )
            if self.columnar is False:
                raise RunConfigurationError(
                    "partitioned streaming dispatches columnar micro-batches "
                    "(results stay bit-identical); columnar=False cannot be "
                    "honoured"
                )
            if self.shard_by == "components" and (
                self.source is not None or self.follow or self.stream
            ):
                raise RunConfigurationError(
                    "shard_by='components' needs the full network up front; "
                    "live/streamed runs must use 'hash' or 'mincut' (frozen "
                    "from a warm-up prefix)"
                )
        if self.shared_memory:
            if self.shards <= 1:
                raise RunConfigurationError(
                    "shared_memory applies to sharded runs; set shards > 1"
                )
            if self.shard_executor != "processes":
                raise RunConfigurationError(
                    "shared_memory shares segments across a process pool; "
                    f"set shard_executor='processes' (got "
                    f"{self.shard_executor!r})"
                )
            if self.columnar is False:
                raise RunConfigurationError(
                    "the shared-memory fabric executes shards block-natively "
                    "(results stay bit-identical); columnar=False cannot be "
                    "honoured — drop it or disable shared_memory"
                )

    @property
    def uses_shared_memory(self) -> bool:
        """Whether sharded execution rides the shared-memory shard fabric."""
        return bool(self.shared_memory) and self.shards > 1

    @property
    def uses_partitioned_streaming(self) -> bool:
        """Whether the run is a partitioned streaming run (stream fabric)."""
        return self.streaming_shards > 0

    @property
    def uses_scheduler(self) -> bool:
        """Whether the run is driven through an explicit micro-batch scheduler.

        True for source-fed, tailed and resumed runs, and whenever one of
        the scheduler knobs (``micro_batch``, ``max_in_flight``,
        ``flush_interval``) is set explicitly.  Eager runs without these
        knobs still go through a scheduler — the engine builds one
        internally for every batched run — but keep their historical
        checkpoint/observer semantics.
        """
        return (
            self.source is not None
            or self.follow
            or self.resume_from is not None
            or self.micro_batch is not None
            or self.max_in_flight is not None
            or self.flush_interval is not None
        )

    @property
    def effective_micro_batch(self) -> int:
        """Scheduler flush size: ``micro_batch``, else the batch size."""
        if self.micro_batch is not None:
            return self.micro_batch
        return self.batch_size if self.batch_size > 1 else DEFAULT_BATCH_SIZE

    @property
    def effective_batch_size(self) -> int:
        """Batch size actually used by the engine (observers force 1).

        Periodic checkpointing historically forced per-interaction stepping
        (an observer); scheduler-driven runs instead clip batches at the
        checkpoint boundaries, so they keep their batch size.
        """
        if self.observers:
            return 1
        if self.checkpoint_every and not self.uses_scheduler:
            return 1
        return self.batch_size

    @property
    def store_spec(self) -> Optional[StoreSpec]:
        """The resolved store specification, or ``None`` when unspecified.

        ``None`` means "let each policy resolve its own default" (the
        ``REPRO_DEFAULT_STORE`` environment variable, then dicts) — the
        Runner only injects a ``store=`` argument when this is non-None.
        """
        if self.store is None and not self.store_options:
            return None
        return resolve_store_spec(self.store, options=self.store_options)
