"""Vertex partitioning and sharded provenance runs.

Quantity flows never cross weakly-connected components of a temporal
interaction network: an interaction moves quantity along an edge, and every
edge lies inside one component.  Component-based shards therefore compute
*exactly* the provenance of a single global run — each vertex's buffer and
origin decomposition live entirely inside one shard, and the merged result
is a disjoint union.

Hash-based shards trade exactness for balance: vertices are assigned to
shards by a stable hash and every interaction follows its *source* vertex.
A vertex that receives quantity on several shards has its buffer split
across them, and a relay performed on the source's shard cannot see
quantity that arrived on another shard — the policy classifies the missing
amount as newborn instead.  Hash-sharded runs therefore *overestimate*
buffered totals and generated quantity wherever flows cross shards, and
their origin decompositions are approximate; every interaction is still
processed exactly once, and networks whose components fit inside single
shards incur no error at all.  Use hash shards when a network is dominated
by one giant component and throughput matters more than exact attribution.

Min-cut shards (:mod:`repro.runtime.mincut`) keep the hash mode's
source-routing but choose the vertex assignment to *minimise* cross-shard
interactions under a hard balance cap, shrinking both the newborn
overestimate and the straggler gap at once.  Every plan carries a
:class:`~repro.runtime.mincut.PartitionStats` so the three strategies are
comparable on cut edges, cut weight and load imbalance.

Shards run sequentially or via :mod:`concurrent.futures` (threads or
processes — policies and interactions are picklable, so process pools work
out of the box).
"""

from __future__ import annotations

import time as _time
import zlib
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.blocks import InteractionBlock
from repro.core.engine import ProvenanceEngine, RunStatistics
from repro.core.interaction import Interaction, Vertex
from repro.core.network import TemporalInteractionNetwork
from repro.core.provenance import OriginSet, ProvenanceSnapshot
from repro.exceptions import RunConfigurationError
from repro.policies.base import SelectionPolicy
from repro.runtime.mincut import (
    DEFAULT_IMBALANCE,
    PartitionStats,
    interaction_graph,
    membership_stats,
    mincut_membership,
)
from repro.stores import StoreStats

__all__ = [
    "Shard",
    "PartitionPlan",
    "PartitionStats",
    "ShardRun",
    "block_universe",
    "connected_components",
    "stable_shard_index",
    "stable_shard_indices",
    "partition_network",
    "attach_shard_blocks",
    "shard_row_positions",
    "plan_membership",
    "warmup_membership",
    "fork_payload_bytes",
    "run_shards",
    "merge_statistics",
    "merge_snapshots",
]


@dataclass
class Shard:
    """One vertex partition and the interactions assigned to it."""

    index: int
    vertices: Tuple[Vertex, ...]
    interactions: List[Interaction]
    #: The shard's interactions in columnar form (same rows, same order as
    #: :attr:`interactions`), present when the plan was built with a block.
    #: Columnar sharded runs drive the shard engines with this instead of
    #: the object list.
    block: Optional[InteractionBlock] = None

    @property
    def num_interactions(self) -> int:
        return len(self.interactions)

    def universe(self) -> Tuple[Vertex, ...]:
        """All vertices a policy on this shard can encounter.

        For component shards this equals :attr:`vertices`.  For hash shards
        the interactions follow their *source* vertex, so destinations from
        other shards appear too; policies with dense per-vertex state need
        them in their universe.

        The order is the shard's own vertices in registration order, then
        each remaining vertex at its first appearance (source before
        destination, row by row).  When the shard carries a block the first
        appearances come from one vectorised pass over the id columns
        instead of a per-row Python loop — same tuple either way.
        """
        if self.block is not None and len(self.block):
            return block_universe(
                self.vertices,
                self.block.src_ids,
                self.block.dst_ids,
                self.block.interner.vertices,
            )
        seen = dict.fromkeys(self.vertices)
        for interaction in self.interactions:
            seen.setdefault(interaction.source)
            seen.setdefault(interaction.destination)
        return tuple(seen)


def block_universe(
    vertices: Sequence[Vertex],
    src_ids: np.ndarray,
    dst_ids: np.ndarray,
    table: Sequence[Vertex],
) -> Tuple[Vertex, ...]:
    """First-appearance vertex universe from columnar id rows.

    Reproduces the ``setdefault`` walk of :meth:`Shard.universe` — the given
    ``vertices`` first, then every other vertex at its first appearance with
    each row's source before its destination — but finds the first
    appearances with ``np.unique`` over the interleaved id columns, so the
    Python-level work is one ``setdefault`` per *distinct* vertex rather
    than two per row.
    """
    rows = len(src_ids)
    interleaved = np.empty(2 * rows, dtype=np.int64)
    interleaved[0::2] = src_ids
    interleaved[1::2] = dst_ids
    unique_ids, first_positions = np.unique(interleaved, return_index=True)
    seen = dict.fromkeys(vertices)
    setdefault = seen.setdefault
    for vertex_id in unique_ids[np.argsort(first_positions)].tolist():
        setdefault(table[vertex_id])
    return tuple(seen)


@dataclass
class PartitionPlan:
    """The outcome of partitioning a network for a sharded run."""

    mode: str
    shards: List[Shard]
    #: True when the partition provably reproduces the global provenance
    #: (component shards); False for hash shards, whose origin decomposition
    #: is approximate for vertices with cross-shard traffic.
    exact: bool
    #: Number of interactions whose endpoints land on different shards
    #: (always 0 for component shards).
    cross_shard_interactions: int = 0
    #: Measured partition quality (cut edges/weight, imbalance, build time),
    #: present for every strategy so plans are comparable.
    stats: Optional[PartitionStats] = None
    #: Shards dropped because they carried zero interactions; their vertices
    #: were folded into the lightest surviving shard, so no pool task is
    #: dispatched for work that does not exist.
    pruned_shards: int = 0


@dataclass
class ShardRun:
    """The result of driving one shard through its own engine."""

    shard: Shard
    policy: SelectionPolicy
    statistics: RunStatistics
    last_time: Optional[float] = None
    #: Store accounting captured inside the shard worker (before any
    #: pickling back to the parent), keyed by state-component role.
    store_stats: Dict[str, StoreStats] = field(default_factory=dict)
    #: Kernel dispatch report from the shard's engine (mode, backend,
    #: chunk count, compile seconds); ``None`` for per-interaction runs.
    kernel_stats: Optional[Dict[str, object]] = None

    def timing_row(self) -> Dict[str, object]:
        """Flat per-shard breakdown row used by ``RunResult.to_dict``."""
        row = {
            "shard": self.shard.index,
            "vertices": len(self.shard.vertices),
            "interactions": self.statistics.interactions,
            "elapsed_seconds": self.statistics.elapsed_seconds,
            "interactions_per_second": self.statistics.interactions_per_second,
            "final_entry_count": self.statistics.final_entry_count,
            "peak_entry_count": self.statistics.peak_entry_count,
            "store": {
                role: stats.to_dict() for role, stats in self.store_stats.items()
            },
        }
        if self.kernel_stats is not None:
            row["kernel"] = dict(self.kernel_stats)
        return row


def connected_components(network: TemporalInteractionNetwork) -> List[Set[Vertex]]:
    """Weakly-connected components of the network, largest first.

    Uses union-find over the edge set; isolated vertices form singleton
    components.
    """
    parent: Dict[Vertex, Vertex] = {vertex: vertex for vertex in network.vertices}

    def find(vertex: Vertex) -> Vertex:
        root = vertex
        while parent[root] != root:
            root = parent[root]
        while parent[vertex] != root:  # path compression
            parent[vertex], vertex = root, parent[vertex]
        return root

    for edge in network.edges():
        root_a, root_b = find(edge.source), find(edge.destination)
        if root_a != root_b:
            parent[root_b] = root_a

    groups: Dict[Vertex, Set[Vertex]] = {}
    for vertex in parent:
        groups.setdefault(find(vertex), set()).add(vertex)
    return sorted(groups.values(), key=len, reverse=True)


def stable_shard_index(vertex: Vertex, num_shards: int) -> int:
    """Deterministic shard assignment of a vertex (stable across processes).

    Python's built-in ``hash`` of strings is salted per process, which would
    make shard assignments irreproducible; CRC32 of the repr is stable.
    """
    return zlib.crc32(repr(vertex).encode("utf-8")) % num_shards


def stable_shard_indices(vertices: Sequence[Vertex], num_shards: int) -> np.ndarray:
    """Shard assignments for a whole vertex table, as an ``int64`` array.

    One CRC per *unique* vertex; routing a stream then costs a single
    fancy-index over its id arrays (``assignments[block.src_ids]``) instead
    of a hash per interaction.  Bit-compatible with
    :func:`stable_shard_index` entry by entry.
    """
    crc32 = zlib.crc32
    return np.fromiter(
        (crc32(repr(vertex).encode("utf-8")) % num_shards for vertex in vertices),
        dtype=np.int64,
        count=len(vertices),
    )


def partition_network(
    network: TemporalInteractionNetwork,
    num_shards: int,
    *,
    mode: str = "components",
    limit: Optional[int] = None,
    block: Optional[InteractionBlock] = None,
    imbalance: float = DEFAULT_IMBALANCE,
    seed: int = 0,
) -> PartitionPlan:
    """Split a network into at most ``num_shards`` vertex shards.

    ``mode="components"`` packs weakly-connected components into shards
    (greedy largest-first by interaction count, so shard workloads balance);
    the result is exact.  ``mode="hash"`` assigns vertices by stable hash
    and interactions by their source vertex; the result is approximate (see
    the module docstring).  ``mode="mincut"`` runs the seeded multilevel
    partitioner of :mod:`repro.runtime.mincut` on the weighted
    vertex-interaction graph — same source-routing as hash, but the
    assignment minimises cross-shard interactions under the hard balance
    cap ``imbalance`` (max shard load over the ideal); ``seed`` makes the
    plan reproducible.  ``limit`` restricts the plan to the first ``limit``
    interactions of the *global* time order — the sharded equivalent of the
    engine's ``limit``, applied before assignment so the total processed
    count matches an unsharded limited run.

    With ``block`` (the network's columnar form), interaction routing is
    vectorised: membership is computed once per *vertex*, the stream is
    assigned with one fancy-index over the id arrays, and every shard also
    carries its rows as a :class:`~repro.core.blocks.InteractionBlock` for
    columnar shard engines.  Assignments are identical to the object loop.

    Shards that end up with zero interactions are pruned from the plan
    (their vertices fold into the lightest surviving shard), and every plan
    carries :class:`~repro.runtime.mincut.PartitionStats` measuring its cut
    and balance; the stats' ``build_seconds`` covers this whole function,
    which runs before any timed region.
    """
    build_start = _time.perf_counter()
    if num_shards < 1:
        raise RunConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    interactions = network.interactions
    if limit is not None:
        interactions = interactions[: max(limit, 0)]
    if block is not None and limit is not None:
        block = block.slice(0, max(limit, 0))
    # The quality stats (and the mincut graph) read the id columns of the
    # columnar form; the network caches it, so this is free on reuse.
    stats_block = block if block is not None else network.to_block()
    if block is None and limit is not None:
        stats_block = stats_block.slice(0, max(limit, 0))

    exact_build = False
    if mode == "components":
        components = connected_components(network)
        num_shards = min(num_shards, len(components)) or 1
        # Greedy balance by interaction weight: heaviest component first into
        # the currently lightest shard.
        weight: Dict[Vertex, int] = {}
        for interaction in interactions:
            weight[interaction.source] = weight.get(interaction.source, 0) + 1
        component_weight = [
            sum(weight.get(vertex, 0) for vertex in component)
            for component in components
        ]
        order = sorted(range(len(components)), key=lambda i: -component_weight[i])
        loads = [0] * num_shards
        membership: Dict[Vertex, int] = {}
        for position in order:
            lightest = min(range(num_shards), key=loads.__getitem__)
            loads[lightest] += component_weight[position]
            for vertex in components[position]:
                membership[vertex] = lightest
    elif mode == "hash":
        if block is not None:
            assignments = stable_shard_indices(block.interner.vertices, num_shards)
            membership = {
                vertex: int(shard)
                for vertex, shard in zip(block.interner.vertices, assignments)
            }
        else:
            membership = {
                vertex: stable_shard_index(vertex, num_shards)
                for vertex in network.vertices
            }
    elif mode == "mincut":
        n, edge_u, edge_v, edge_weight, load = interaction_graph(stats_block)
        assignments, exact_build = mincut_membership(
            n,
            edge_u,
            edge_v,
            edge_weight,
            load,
            num_shards,
            imbalance=imbalance,
            seed=seed,
        )
        membership = {
            vertex: int(shard)
            for vertex, shard in zip(stats_block.interner.vertices, assignments)
        }
    else:
        raise RunConfigurationError(f"unknown partition mode {mode!r}")

    shard_vertices: List[List[Vertex]] = [[] for _ in range(num_shards)]
    for vertex in network.vertices:  # registration order keeps dense indices stable
        shard_vertices[membership[vertex]].append(vertex)

    shard_blocks: List[Optional[InteractionBlock]] = [None] * num_shards
    if block is not None:
        # Vectorised routing: per-vertex membership, one fancy-index per
        # stream column.  flatnonzero yields ascending positions, so shard
        # streams keep global time order exactly like the object loop.
        member_of_id = np.fromiter(
            (membership[vertex] for vertex in block.interner.vertices),
            dtype=np.int64,
            count=len(block.interner),
        )
        assigned = member_of_id[block.src_ids]
        cross = (
            int(np.count_nonzero(assigned != member_of_id[block.dst_ids]))
            if mode != "components"
            else 0
        )
        shard_interactions = []
        for index in range(num_shards):
            positions = np.flatnonzero(assigned == index)
            shard_blocks[index] = block.take(positions)
            shard_interactions.append([interactions[p] for p in positions.tolist()])
    else:
        cross = (
            sum(
                1
                for interaction in interactions
                if membership[interaction.source] != membership[interaction.destination]
            )
            if mode != "components"
            else 0
        )
        shard_interactions = [[] for _ in range(num_shards)]
        for interaction in interactions:
            shard_interactions[membership[interaction.source]].append(interaction)

    shards = [
        Shard(
            index=i,
            vertices=tuple(shard_vertices[i]),
            interactions=shard_interactions[i],
            block=shard_blocks[i],
        )
        for i in range(num_shards)
    ]

    # Prune zero-interaction shards: they would still cost a pool task (and
    # a worker fork on the pickled executor).  Their vertices fold into the
    # lightest surviving shard so every vertex keeps an owner — dense-store
    # universes and merged snapshots stay identical to the unpruned plan.
    kept = [shard for shard in shards if shard.num_interactions > 0]
    if not kept:
        kept = shards[:1]
    pruned = len(shards) - len(kept)
    if pruned:
        kept_ids = {id(shard) for shard in kept}
        orphans = tuple(
            vertex
            for shard in shards
            if id(shard) not in kept_ids
            for vertex in shard.vertices
        )
        if orphans:
            lightest = min(kept, key=lambda s: (s.num_interactions, s.index))
            lightest.vertices = lightest.vertices + orphans
        for position, shard in enumerate(kept):
            shard.index = position

    # Quality stats over the *assignment* (pre-prune memberships: pruning
    # never changes which interactions cross shards), with imbalance
    # measured against the surviving shard count — the straggler predictor
    # for the pool that actually runs.
    n, edge_u, edge_v, edge_weight, load = interaction_graph(stats_block)
    member_of_all = np.fromiter(
        (membership[vertex] for vertex in stats_block.interner.vertices),
        dtype=np.int64,
        count=len(stats_block.interner),
    )
    cut_edges, cut_weight, measured_imbalance = membership_stats(
        member_of_all, edge_u, edge_v, edge_weight, load, len(kept)
    )
    stats = PartitionStats(
        strategy=mode,
        shards=len(kept),
        cut_edges=cut_edges,
        cut_weight=cut_weight,
        imbalance=measured_imbalance,
        build_seconds=_time.perf_counter() - build_start,
        balance_cap=imbalance if mode == "mincut" else None,
        seed=seed if mode == "mincut" else None,
        exact=exact_build,
    )
    return PartitionPlan(
        mode=mode,
        shards=kept,
        exact=(mode == "components") or (mode == "mincut" and cross == 0),
        cross_shard_interactions=cross,
        stats=stats,
        pruned_shards=pruned,
    )


def shard_row_positions(
    plan: PartitionPlan, block: InteractionBlock
) -> List[np.ndarray]:
    """Row positions of ``block`` belonging to each shard of ``plan``.

    Membership is recovered from the plan's vertex lists and the stream is
    assigned with one fancy-index over the source-id column — the
    vectorised routing shared by :func:`attach_shard_blocks` and the
    shared-memory fabric (which writes the routed rows straight into
    pool-resident buffers).  ``flatnonzero`` yields ascending positions, so
    each shard's rows keep global time order.
    """
    membership = {
        vertex: shard.index for shard in plan.shards for vertex in shard.vertices
    }
    # ``get`` with a -1 sentinel: a vertex outside every shard (possible
    # only for vertices that never source an interaction) routes nowhere.
    member_of_id = np.fromiter(
        (membership.get(vertex, -1) for vertex in block.interner.vertices),
        dtype=np.int64,
        count=len(block.interner),
    )
    assigned = member_of_id[block.src_ids]
    return [np.flatnonzero(assigned == shard.index) for shard in plan.shards]


def plan_membership(plan: PartitionPlan) -> Dict[Vertex, int]:
    """The frozen vertex -> shard assignment of a partition plan.

    The routing table partitioned *streaming* runs dispatch with: each
    polled interaction follows its source vertex's plan assignment, so a
    streamed run routes exactly like the eager sharded run over the same
    plan.  Vertices the plan never saw fall back to the stable hash at the
    consumer (:class:`repro.sources.PartitionedScheduler`).
    """
    return {
        vertex: shard.index for shard in plan.shards for vertex in shard.vertices
    }


def warmup_membership(
    interactions: Sequence[Interaction],
    num_shards: int,
    *,
    mode: str = "mincut",
    imbalance: float = DEFAULT_IMBALANCE,
    seed: int = 0,
) -> Dict[Vertex, int]:
    """A frozen membership computed from a stream's warm-up prefix.

    Live sources have no network to partition up front; instead the first
    polled interactions form a temporary network that is partitioned once
    (min-cut by default), and the resulting assignment is **frozen** for
    the rest of the stream — vertices first seen later fall back to the
    stable hash.  The shard *indices* here are plan-local; unlike
    :func:`partition_network` no pruning/folding is applied beyond what the
    plan builder already did, so the assignment is exactly the plan's.
    """
    network = TemporalInteractionNetwork.from_interactions(
        interactions, name="stream-warmup"
    )
    plan = partition_network(
        network, num_shards, mode=mode, imbalance=imbalance, seed=seed
    )
    return plan_membership(plan)


def attach_shard_blocks(
    plan: PartitionPlan,
    block: InteractionBlock,
    *,
    limit: Optional[int] = None,
) -> None:
    """Route a network's columnar block onto an existing partition plan.

    Used when the columnar decision is made after planning (the Runner's
    auto mode): shard membership is recovered from the plan's vertex lists
    and the rows are assigned with one fancy-index, exactly like planning
    with ``block=`` up front would have.
    """
    if limit is not None:
        block = block.slice(0, max(limit, 0))
    for shard, positions in zip(plan.shards, shard_row_positions(plan, block)):
        shard.block = block.take(positions)


def fork_payload_bytes(
    plan: PartitionPlan,
    policies: Sequence[SelectionPolicy],
    *,
    batch_size: int = 0,
    sample_every: int = 0,
    columnar: Optional[bool] = None,
    kernel: str = "auto",
) -> int:
    """Bytes the pickled process executor ships across the fork boundary.

    Measures exactly the payload tuples :func:`run_shards` submits to its
    :class:`~concurrent.futures.ProcessPoolExecutor` (same pickle
    protocol), so the bench harness can contrast it with the shard fabric's
    handle-sized dispatch without instrumenting the timed region.
    """
    import pickle

    return sum(
        len(
            pickle.dumps(
                (shard, policy, batch_size, sample_every, columnar, kernel),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        )
        for shard, policy in zip(plan.shards, policies)
    )


def _run_one_shard(
    payload: Tuple[Shard, SelectionPolicy, int, int, Optional[bool], str]
) -> ShardRun:
    """Drive one shard's interactions through its own engine.

    Module-level so process pools can pickle it; the policy travels with the
    payload and returns carrying its final state.  When the shard carries a
    columnar block and the run is batched, the engine is fed the block —
    the shard-level counterpart of the single-engine columnar path.
    """
    shard, policy, batch_size, sample_every, columnar, kernel = payload
    engine = ProvenanceEngine(policy)
    policy.reset(shard.universe())
    use_block = (
        shard.block is not None
        and batch_size > 1
        and (columnar if columnar is not None else policy.has_columnar_kernel())
    )
    statistics = engine.run(
        shard.block if use_block else shard.interactions,
        reset=False,
        sample_every=sample_every,
        batch_size=batch_size,
        columnar=columnar,
        kernel=kernel,
    )
    return ShardRun(
        shard=shard,
        policy=engine.policy,
        statistics=statistics,
        last_time=engine.current_time,
        store_stats=engine.policy.store_stats(),
        kernel_stats=engine.kernel_stats(),
    )


def run_shards(
    plan: PartitionPlan,
    policies: Sequence[SelectionPolicy],
    *,
    batch_size: int = 0,
    sample_every: int = 0,
    executor: str = "serial",
    max_workers: Optional[int] = None,
    columnar: Optional[bool] = None,
    shared_memory: bool = False,
    kernel: str = "auto",
    max_task_retries: int = 1,
    retry_backoff: float = 0.05,
    fault_stats: Optional[Dict[str, object]] = None,
) -> Tuple[List[ShardRun], RunStatistics]:
    """Run one engine per shard and merge the statistics.

    ``policies`` must hold one independent policy per shard (same order as
    ``plan.shards``).  A global interaction limit is applied when the plan
    is built (:func:`partition_network` ``limit=``), not here — per-shard
    truncation would process a different prefix than an unsharded run.
    Returns the per-shard runs plus merged statistics whose
    ``elapsed_seconds`` is the wall-clock time of the whole sharded run
    (not the sum of per-shard times, which overcounts under parallel
    executors).

    With ``shared_memory=True`` (processes executor only) the shards are
    dispatched over the zero-copy shard fabric of :mod:`repro.runtime.shm`
    — a persistent worker pool reading the shard columns from shared
    segments instead of unpickling them per run.  Results are bit-identical
    to the pickled executor.
    """
    if shared_memory:
        if executor != "processes":
            raise RunConfigurationError(
                "shared_memory=True requires the 'processes' executor; "
                f"got {executor!r}"
            )
        if columnar is False:
            raise RunConfigurationError(
                "the shared-memory fabric executes shards block-natively; "
                "columnar=False cannot be honoured — drop it or disable "
                "shared_memory"
            )
        from repro.runtime import shm as _shm

        runs, merged, _stats = _shm.run_shards_shared(
            plan,
            policies,
            batch_size=batch_size,
            sample_every=sample_every,
            max_workers=max_workers,
            kernel=kernel,
            max_retries=max_task_retries,
            retry_backoff=retry_backoff,
            fault_stats=fault_stats,
        )
        return runs, merged
    if len(policies) != len(plan.shards):
        raise RunConfigurationError(
            f"need one policy per shard: {len(plan.shards)} shards, "
            f"{len(policies)} policies"
        )
    payloads = [
        (shard, policy, batch_size, sample_every, columnar, kernel)
        for shard, policy in zip(plan.shards, policies)
    ]
    start = _time.perf_counter()
    if executor == "serial":
        runs = [_run_one_shard(payload) for payload in payloads]
    elif executor == "threads":
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            runs = list(pool.map(_run_one_shard, payloads))
    elif executor == "processes":
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            runs = list(pool.map(_run_one_shard, payloads))
    else:
        raise RunConfigurationError(f"unknown shard executor {executor!r}")
    elapsed = _time.perf_counter() - start
    merged = merge_statistics([run.statistics for run in runs], elapsed_seconds=elapsed)
    return runs, merged


def merge_statistics(
    per_shard: Sequence[RunStatistics], *, elapsed_seconds: Optional[float] = None
) -> RunStatistics:
    """Combine per-shard statistics into run-level totals.

    Counts are summed.  ``elapsed_seconds`` defaults to the slowest shard
    (the wall-clock of a perfectly parallel run); pass the measured wall
    clock for the true value.  Per-position samples do not line up across
    shards and are dropped; ``peak_entry_count`` is the sum of per-shard
    peaks, an upper bound on the true global peak.
    """
    merged = RunStatistics()
    for statistics in per_shard:
        merged.interactions += statistics.interactions
        merged.final_entry_count += statistics.final_entry_count
        merged.peak_entry_count += statistics.peak_entry_count
    if elapsed_seconds is not None:
        merged.elapsed_seconds = elapsed_seconds
    elif per_shard:
        merged.elapsed_seconds = max(s.elapsed_seconds for s in per_shard)
    return merged


def merge_snapshots(runs: Sequence[ShardRun]) -> ProvenanceSnapshot:
    """Union the per-shard provenance into one global snapshot.

    Component shards have disjoint vertex sets, so this is a plain union;
    hash shards can buffer quantity for the same vertex on several shards,
    in which case the origin sets are summed.
    """
    origins: Dict[Vertex, OriginSet] = {}
    last_time = 0.0
    interactions = 0
    for run in runs:
        interactions += run.statistics.interactions
        if run.last_time is not None and run.last_time > last_time:
            last_time = run.last_time
        for vertex in run.policy.tracked_vertices():
            decomposition = run.policy.origins(vertex)
            existing = origins.get(vertex)
            origins[vertex] = decomposition if existing is None else existing.merge(decomposition)
    return ProvenanceSnapshot(
        time=last_time,
        interactions_processed=interactions,
        origins=origins,
    )
