"""Execution runtime: the Runner pipeline, run configuration and sharding.

This package is the architectural seam between the paper's per-interaction
algorithms (:mod:`repro.core`, :mod:`repro.policies`) and everything that
*drives* them.  All callers — CLI, benchmark harness, experiments, examples
— execute runs through :class:`Runner`, which adds batched policy execution,
pluggable provenance-store backends (``RunConfig(store=...)``, see
:mod:`repro.stores`) and sharded partition runs on top of the core engine.
"""

from repro.runtime.config import DEFAULT_BATCH_SIZE, RunConfig
from repro.runtime.faults import FaultPlan, fault_plan
from repro.runtime.mincut import (
    DEFAULT_IMBALANCE,
    PartitionStats,
    interaction_graph,
    mincut_membership,
)
from repro.runtime.partition import (
    PartitionPlan,
    Shard,
    ShardRun,
    attach_shard_blocks,
    connected_components,
    fork_payload_bytes,
    merge_snapshots,
    merge_statistics,
    partition_network,
    run_shards,
    shard_row_positions,
    stable_shard_index,
    stable_shard_indices,
)
from repro.runtime.runner import Runner, RunResult, build_policy, run

__all__ = [
    "RunConfig",
    "DEFAULT_BATCH_SIZE",
    "FaultPlan",
    "fault_plan",
    "Runner",
    "RunResult",
    "run",
    "build_policy",
    "Shard",
    "PartitionPlan",
    "PartitionStats",
    "DEFAULT_IMBALANCE",
    "ShardRun",
    "interaction_graph",
    "mincut_membership",
    "attach_shard_blocks",
    "connected_components",
    "fork_payload_bytes",
    "partition_network",
    "shard_row_positions",
    "stable_shard_index",
    "stable_shard_indices",
    "run_shards",
    "merge_statistics",
    "merge_snapshots",
]
