"""Deterministic fault injection for the shard fabric.

The supervision layer in :mod:`repro.runtime.shm` (worker respawn, bounded
retry, quarantine, degradation) is only trustworthy if its recovery paths
are *provably* bit-identical to an unfaulted run — which needs faults that
fire at exactly the same point on every execution.  This module is that
harness: a :class:`FaultPlan` describes *where* to inject (kill the worker
handling shard K's Nth task, fail the Mth segment allocation, tear the Jth
checkpoint write, delay a result), and a module-level hook — installed the
same way as ``shm._FORCED_KIND`` — arms it for the duration of a test.

Injection points are deliberately parent-side where possible: worker kills
and delays are resolved by the *dispatcher* per attempt and shipped as a
directive on the task message, so the parent always knows which attempt of
which shard is about to die.  That makes ``kill_times`` exact: a plan with
``kill_times=1`` produces one transient crash (recovered by the
supervisor), while ``kill_times`` above the retry budget models a shard
that deterministically crashes its worker (quarantined).

Nothing in this module is imported on any hot path unless a plan is armed;
with no plan installed every hook is a single ``is None`` check.
"""

from __future__ import annotations

import errno
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

from repro.exceptions import SegmentAllocationError

__all__ = ["FaultPlan", "FaultState", "install", "clear", "active", "fault_plan"]


@dataclass
class FaultPlan:
    """A deterministic schedule of faults to inject into one run.

    All ordinals are 1-based and count *events since the plan was armed*
    (dispatches, allocations, checkpoint writes), so the same plan against
    the same run faults at the same point every time.
    """

    #: Kill the worker when it receives work for this shard (batch tasks or
    #: streaming appends).  ``None`` disables shard-directed kills.
    kill_shard: Optional[int] = None
    #: Batch path: kill the worker handling the Nth dispatched task overall
    #: (retries advance the counter too).  Independent of ``kill_shard``.
    kill_at_task: Optional[int] = None
    #: Streaming path: with ``kill_shard`` set, kill on that shard's Nth
    #: appended batch (default 1 = the first batch).
    kill_at_batch: int = 1
    #: How many attempts die before the fault burns out.  1 models a
    #: transient crash; a value above the retry budget models a
    #: deterministically-crashing shard (quarantine).
    kill_times: int = 1
    #: Worker-side sleep (seconds) before replying on matched tasks —
    #: exercises the dispatcher's patience rather than its recovery.
    delay_result: float = 0.0
    #: Fail the Nth shared-segment allocation with ENOSPC (as if /dev/shm
    #: were full).  ``None`` disables.
    fail_segment_alloc_at: Optional[int] = None
    #: How many consecutive allocations fail from that point on.
    fail_segment_alloc_times: int = 1
    #: Tear the Nth checkpoint write: the file is left truncated mid-pickle,
    #: simulating a crash between ``write`` and ``fsync`` on a non-atomic
    #: writer.  ``None`` disables.
    torn_checkpoint_at: Optional[int] = None
    #: Seed recorded with the plan so chaos suites can log reproducible
    #: scenarios; the plan itself is fully deterministic without it.
    seed: int = 0


@dataclass
class FaultState:
    """Mutable counters tracking an armed :class:`FaultPlan`."""

    plan: FaultPlan
    task_ordinal: int = 0
    kills_fired: int = 0
    alloc_ordinal: int = 0
    allocs_failed: int = 0
    checkpoint_ordinal: int = 0
    checkpoints_torn: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


_ACTIVE: Optional[FaultState] = None


def install(plan: FaultPlan) -> FaultState:
    """Arm ``plan`` process-wide; returns its live counter state."""
    global _ACTIVE
    _ACTIVE = FaultState(plan)
    return _ACTIVE


def clear() -> None:
    """Disarm any installed plan."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[FaultState]:
    """The armed fault state, or ``None`` when no plan is installed."""
    return _ACTIVE


@contextmanager
def fault_plan(plan: FaultPlan) -> Iterator[FaultState]:
    """Context manager arming ``plan`` for the enclosed block (tests)."""
    state = install(plan)
    try:
        yield state
    finally:
        clear()


# ---------------------------------------------------------------------------
# Injection points.  Each is called by exactly one production seam and is a
# no-op (single None check) unless a plan is armed.
# ---------------------------------------------------------------------------


def task_directive(shard_index: int) -> Optional[Tuple]:
    """Fault directive for the next *batch task* dispatched to ``shard_index``.

    Called by ``ShardWorkerPool`` once per dispatch attempt.  Returns a
    tuple the worker executes on receipt — ``("kill",)`` or
    ``("delay", seconds)`` — or ``None``.
    """
    state = _ACTIVE
    if state is None:
        return None
    plan = state.plan
    with state.lock:
        state.task_ordinal += 1
        matched = (
            plan.kill_at_task is not None and state.task_ordinal == plan.kill_at_task
        ) or (plan.kill_shard is not None and shard_index == plan.kill_shard)
        if matched and state.kills_fired < plan.kill_times:
            state.kills_fired += 1
            return ("kill",)
    if plan.delay_result > 0.0:
        return ("delay", plan.delay_result)
    return None


def batch_directive(shard_index: int, batch_ordinal: int) -> Optional[Tuple]:
    """Fault directive for a *streaming append* (``batch_ordinal`` 1-based).

    Called by ``ShardStreamFabric`` per appended batch per attempt; replays
    of already-committed batches re-enter here, which is what lets a
    ``kill_times`` above the retry budget model a deterministic crasher.
    """
    state = _ACTIVE
    if state is None:
        return None
    plan = state.plan
    if plan.kill_shard is None or shard_index != plan.kill_shard:
        return None
    with state.lock:
        if batch_ordinal >= plan.kill_at_batch and state.kills_fired < plan.kill_times:
            state.kills_fired += 1
            return ("kill",)
    if plan.delay_result > 0.0:
        return ("delay", plan.delay_result)
    return None


def check_segment_alloc(name: str) -> None:
    """Raise ``SegmentAllocationError`` if this allocation is scheduled to fail.

    Called by ``shm._create_segment`` before touching the backend, so the
    failure looks exactly like the OS refusing the allocation.
    """
    state = _ACTIVE
    if state is None:
        return
    plan = state.plan
    if plan.fail_segment_alloc_at is None:
        return
    with state.lock:
        state.alloc_ordinal += 1
        start = plan.fail_segment_alloc_at
        if start <= state.alloc_ordinal < start + plan.fail_segment_alloc_times:
            state.allocs_failed += 1
            raise SegmentAllocationError(
                errno.ENOSPC,
                f"injected allocation failure for segment {name!r} "
                f"(allocation #{state.alloc_ordinal})",
            )


def torn_checkpoint_bytes(data: bytes) -> Optional[bytes]:
    """Truncated payload if this checkpoint write should tear, else ``None``.

    Called by the atomic checkpoint writer; a non-``None`` return is written
    *directly* to the destination (bypassing the temp-file/rename dance) to
    simulate the torn file a non-atomic writer would have left behind.
    """
    state = _ACTIVE
    if state is None:
        return None
    plan = state.plan
    if plan.torn_checkpoint_at is None:
        return None
    with state.lock:
        state.checkpoint_ordinal += 1
        if state.checkpoint_ordinal == plan.torn_checkpoint_at:
            state.checkpoints_torn += 1
            return data[: max(1, len(data) // 3)]
    return None
