"""The Runner: single entry point for executing provenance runs.

Every execution surface of the repository — the CLI, the benchmark harness,
the experiment implementations and the examples — drives the library through
:class:`Runner`.  The Runner owns the whole pipeline:

1. **dataset resolution** — preset name, CSV path (materialised or lazily
   streamed), in-memory network or raw interaction iterable;
2. **policy construction** — registry names (with the structural options of
   the scalable policies resolved against the dataset) or ready instances;
3. **observer wiring** — analysis observers, memory ceilings, periodic
   checkpoint observers;
4. **execution** — batched single-engine runs, or sharded runs with one
   engine per vertex partition (serial / threads / processes);
5. **result assembly** — merged statistics, feasibility classification,
   memory accounting, per-store spill statistics, final checkpointing,
   structured JSON export and uniform provenance queries over whatever ran.

Typical use::

    from repro.runtime import Runner, RunConfig

    result = Runner(RunConfig(dataset="taxis", policy="fifo")).run()
    print(result.statistics.interactions_per_second)
    print(result.origins(result.top_buffers(1)[0][0]).top(5))

or, for one-liners, the module-level convenience wrapper::

    from repro.runtime import run
    result = run(dataset="bitcoin", policy="proportional-sparse", scale=0.2)
"""

from __future__ import annotations

import copy
import json
import logging
import time
from dataclasses import asdict, dataclass, field, replace
from itertools import islice
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.blocks import VertexInterner
from repro.core.checkpoint import (
    engine_from_checkpoint,
    load_engine,
    read_checkpoint,
    save_checkpoint_state,
    save_engine,
)
from repro.core.engine import ProvenanceEngine, RunStatistics
from repro.core.interaction import Interaction, Vertex
from repro.core.network import TemporalInteractionNetwork
from repro.core.provenance import OriginSet, ProvenanceSnapshot
from repro.datasets.catalog import available_presets, load_preset
from repro.datasets.io import (
    read_interaction_block,
    read_interactions_csv,
    read_network_csv,
)
from repro.exceptions import (
    MemoryBudgetExceededError,
    RunConfigurationError,
    SegmentAllocationError,
)
from repro.metrics.memory import MemoryCeiling, policy_memory_bytes
from repro.policies.base import SelectionPolicy
from repro.policies.registry import make_policy
from repro.runtime.config import RunConfig
from repro.runtime.partition import (
    PartitionPlan,
    Shard,
    ShardRun,
    attach_shard_blocks,
    merge_snapshots,
    merge_statistics,
    partition_network,
    plan_membership,
    run_shards,
    shard_row_positions,
    warmup_membership,
)
from repro.sources import (
    CsvTailSource,
    InteractionSource,
    MicroBatchScheduler,
    PartitionedScheduler,
    SequenceSource,
)
from repro.stores import StoreStats, merge_store_stats

__all__ = ["Runner", "RunResult", "run", "build_policy"]

_LOG = logging.getLogger(__name__)

#: Warm-up prefix pulled off a live source to freeze a min-cut membership
#: when ``streaming_warmup`` is not set explicitly.
DEFAULT_STREAM_WARMUP = 4096


def _record_degradation(
    fault: Dict[str, Any], source: str, target: str, error: BaseException
) -> None:
    """Log and record one rung of the executor degradation ladder."""
    reason = f"{type(error).__name__}: {error}"
    _LOG.warning("degrading %s -> %s after %s", source, target, reason)
    fault.setdefault("degradations", []).append(
        {"from": source, "to": target, "reason": reason}
    )


def _fault_summary(fault: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """The fault dict when anything actually went wrong, else ``None``."""
    return fault if any(fault.values()) else None


def build_policy(
    config: RunConfig,
    network: Optional[TemporalInteractionNetwork],
    universe: Optional[Sequence[Vertex]] = None,
) -> SelectionPolicy:
    """Construct the policy a config describes, resolving dataset context.

    Ready instances are returned as-is.  Registry names are instantiated
    with ``config.policy_options``; the scalable policies whose constructors
    need dataset context are special-cased exactly as the CLI historically
    did:

    * ``proportional-dense`` receives the vertex universe,
    * ``proportional-selective`` tracks the top-``k`` contributors
      (``k`` option, default 5),
    * ``proportional-grouped`` uses ``num_groups`` round-robin groups
      (default 5).

    ``universe`` supplies the vertex universe when there is no network —
    block-native CSV runs pass the interner's vertex table, which matches
    the registration order a network built from the same file would have.
    """
    spec = config.policy
    if isinstance(spec, SelectionPolicy):
        return spec
    options = dict(config.policy_options)
    store_spec = config.store_spec
    if store_spec is not None:
        options.setdefault("store", store_spec)
    if spec == "proportional-dense" and (network is not None or universe is not None):
        options.setdefault(
            "vertices", network.vertices if network is not None else universe
        )
        return make_policy(spec, **options)
    if spec == "proportional-selective" and "tracked" not in options:
        if network is None:
            raise RunConfigurationError(
                "proportional-selective needs a network to pick the top-k "
                "contributors; pass a preset/CSV/network dataset or construct "
                "the policy yourself"
            )
        from repro.scalable.selective import SelectiveProportionalPolicy

        return SelectiveProportionalPolicy.for_top_contributors(
            network, k=options.pop("k", 5), **options
        )
    if spec == "proportional-grouped" and "groups" not in options:
        if network is None:
            raise RunConfigurationError(
                "proportional-grouped needs a network to form vertex groups; "
                "pass a preset/CSV/network dataset or construct the policy "
                "yourself"
            )
        from repro.scalable.grouped import GroupedProportionalPolicy

        return GroupedProportionalPolicy.round_robin(
            network.vertices, num_groups=options.pop("num_groups", 5), **options
        )
    return make_policy(spec, **options)


@dataclass
class RunResult:
    """Everything a completed run produced, with uniform provenance queries.

    Single-engine runs expose their engine; sharded runs expose the
    per-shard runs.  The query helpers (:meth:`origins`,
    :meth:`buffer_total`, :meth:`buffer_totals`, :meth:`snapshot`) work the
    same either way, merging across shards when needed.
    """

    config: RunConfig
    statistics: RunStatistics
    policy: Optional[SelectionPolicy] = None
    network: Optional[TemporalInteractionNetwork] = None
    engine: Optional[ProvenanceEngine] = None
    shard_runs: List[ShardRun] = field(default_factory=list)
    partition: Optional[PartitionPlan] = None
    feasible: bool = True
    memory_bytes: Optional[int] = None
    note: str = ""
    #: Store accounting keyed by state-component role; summed over shards
    #: for sharded runs.  Spill backends report evictions/spilled bytes.
    store_stats: Dict[str, StoreStats] = field(default_factory=dict)
    #: Micro-batch scheduler accounting (batches, flush triggers, peak
    #: in-flight) of batched runs; ``None`` for per-interaction runs and
    #: sharded runs (each shard drives its own scheduler).
    scheduler_stats: Optional[Dict[str, Any]] = None
    #: Columnar-path accounting (mode, interned vertices, ingest bytes of
    #: the column arrays, whether a real array kernel ran); ``None`` when
    #: the run took the object path.  See
    #: :meth:`repro.core.engine.ProvenanceEngine.columnar_stats`.
    columnar_stats: Optional[Dict[str, Any]] = None
    #: Fused-kernel accounting (drive mode, backend, span/chunk count,
    #: compile seconds spent outside the timed region); ``None`` when the
    #: run took the object path.  Sharded runs report the first shard's
    #: mode/backend with chunk counts summed and compile seconds maxed
    #: (shards compile concurrently at worst).  See
    #: :meth:`repro.core.engine.ProvenanceEngine.kernel_stats`.
    kernel_stats: Optional[Dict[str, Any]] = None
    #: Shared-memory shard-fabric accounting (backend, workers, segment
    #: bytes, exact dispatch bytes, adopted state bytes); ``None`` unless
    #: the run used ``shared_memory=True``.  See :mod:`repro.runtime.shm`.
    shm_stats: Optional[Dict[str, Any]] = None
    #: Partitioned-streaming accounting (routing mode, per-shard batch and
    #: segment-reuse counts, backpressure stalls, checkpoint barriers);
    #: ``None`` unless the run used ``streaming_shards``.
    stream_stats: Optional[Dict[str, Any]] = None
    #: Self-healing accounting: worker respawns, task retries, quarantined
    #: shards (with per-shard crash diagnostics), executor degradations and
    #: recovery wall time, plus malformed rows skipped by the source under
    #: ``on_bad_row="skip"``.  ``None`` when the run had nothing to heal —
    #: a clean run reports no fault stats rather than a block of zeroes.
    fault_stats: Optional[Dict[str, Any]] = None

    @property
    def sharded(self) -> bool:
        return bool(self.shard_runs)

    @property
    def partition_stats(self) -> Optional[Dict[str, Any]]:
        """Quality of the partition plan (cut edges/weight, imbalance,
        build seconds), or ``None`` for unsharded runs.  The build time is
        measured inside :func:`~repro.runtime.partition.partition_network`,
        before the timed region of the run starts."""
        if self.partition is None or self.partition.stats is None:
            return None
        return self.partition.stats.to_dict()

    @property
    def straggler_ratio(self) -> Optional[float]:
        """Max over min per-shard wall time — the load-balance skew.

        1.0 means perfectly even shards; large values mean the pool idles
        waiting for one straggler.  ``None`` for unsharded runs and when a
        shard finished too fast to time (min elapsed is zero).
        """
        if not self.shard_runs:
            return None
        times = [run.statistics.elapsed_seconds for run in self.shard_runs]
        slowest, fastest = max(times), min(times)
        if fastest <= 0.0:
            return None
        return slowest / fastest

    @property
    def dataset_name(self) -> str:
        """Human-readable name of what was run."""
        if self.network is not None:
            return self.network.name
        if self.config.source is not None:
            return type(self.config.source).__name__
        dataset = self.config.dataset
        if isinstance(dataset, (str, Path)):
            return Path(str(dataset)).stem
        if isinstance(dataset, InteractionSource):
            return type(dataset).__name__
        return "stream"

    # ------------------------------------------------------------------
    # provenance queries (uniform over single-engine and sharded runs)
    # ------------------------------------------------------------------
    def origins(self, vertex: Vertex) -> OriginSet:
        """The merged origin decomposition ``O(t, B_v)`` of ``vertex``."""
        if self.engine is not None:
            return self.engine.origins(vertex)
        merged = OriginSet()
        for run in self.shard_runs:
            merged = merged.merge(run.policy.origins(vertex))
        return merged

    def buffer_total(self, vertex: Vertex) -> float:
        """The buffered quantity ``|B_v|`` of ``vertex`` (summed over shards)."""
        if self.engine is not None:
            return self.engine.buffer_total(vertex)
        return sum(run.policy.buffer_total(vertex) for run in self.shard_runs)

    def buffer_totals(self) -> Dict[Vertex, float]:
        """Every non-empty vertex and its buffered quantity."""
        if self.engine is not None:
            return self.engine.buffer_totals()
        totals: Dict[Vertex, float] = {}
        for run in self.shard_runs:
            for vertex in run.policy.tracked_vertices():
                totals[vertex] = totals.get(vertex, 0.0) + run.policy.buffer_total(vertex)
        return totals

    def snapshot(self) -> ProvenanceSnapshot:
        """Provenance of every vertex with a non-empty buffer, right now."""
        if self.engine is not None:
            return self.engine.snapshot()
        return merge_snapshots(self.shard_runs)

    def top_buffers(self, n: int) -> List[Tuple[Vertex, float]]:
        """The ``n`` vertices with the largest buffered quantities."""
        totals = self.buffer_totals()
        return sorted(totals.items(), key=lambda item: (-item[1], repr(item[0])))[:n]

    # ------------------------------------------------------------------
    # structured export
    # ------------------------------------------------------------------
    @property
    def shard_timings(self) -> List[Dict[str, object]]:
        """Per-shard timing/store breakdown rows (empty for single runs)."""
        return [run.timing_row() for run in self.shard_runs]

    @property
    def policy_name(self) -> str:
        """Registry name (or description) of the policy that ran."""
        spec = self.config.policy
        if isinstance(spec, SelectionPolicy):
            return spec.describe()
        if self.policy is not None:
            return self.policy.describe()
        return str(spec)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary of the run: statistics, shards, store usage.

        The structured counterpart of the CLI's human-readable report, and
        the record format behind ``BENCH_*.json`` dashboards — everything is
        plain JSON types (vertices are not included; use the provenance
        query helpers for per-vertex data).
        """
        store_spec = self.config.store_spec
        return {
            "dataset": self.dataset_name,
            "policy": self.policy_name,
            "feasible": self.feasible,
            "note": self.note,
            "statistics": {
                **asdict(self.statistics),
                "interactions_per_second": self.statistics.interactions_per_second,
            },
            "memory_bytes": self.memory_bytes,
            "store": {
                "backend": store_spec.backend if store_spec is not None else None,
                "stats": {
                    role: stats.to_dict() for role, stats in self.store_stats.items()
                },
            },
            "sharding": {
                "sharded": self.sharded,
                "mode": self.partition.mode if self.partition else None,
                "exact": self.partition.exact if self.partition else None,
                "cross_shard_interactions": (
                    self.partition.cross_shard_interactions if self.partition else 0
                ),
                "partition": self.partition_stats,
                "pruned_shards": (
                    self.partition.pruned_shards if self.partition else 0
                ),
                "straggler_ratio": self.straggler_ratio,
                "shards": self.shard_timings,
                "shared_memory": self.shm_stats,
            },
            "streaming": {
                "scheduled": self.scheduler_stats is not None,
                "scheduler": self.scheduler_stats,
                "partitioned": self.stream_stats is not None,
                "stream": self.stream_stats,
            },
            "columnar": {
                "enabled": self.columnar_stats is not None,
                **(self.columnar_stats or {}),
            },
            "kernel": {
                "enabled": self.kernel_stats is not None,
                **(self.kernel_stats or {}),
            },
            "faults": self.fault_stats,
        }

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """The :meth:`to_dict` record rendered as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    @property
    def spilled_bytes(self) -> int:
        """Total bytes spilled to disk by all stores (0 for in-memory runs)."""
        return sum(stats.spilled_bytes for stats in self.store_stats.values())


class Runner:
    """Executes one :class:`RunConfig` end to end (see module docstring)."""

    def __init__(self, config: RunConfig):
        self.config = config

    # ------------------------------------------------------------------
    # dataset resolution
    # ------------------------------------------------------------------
    def resolve_dataset(
        self,
    ) -> Tuple[Optional[TemporalInteractionNetwork], Optional[Iterable[Interaction]]]:
        """Turn the configured input into a network or a stream.

        Returns ``(network, stream)``; exactly one of the two is non-None.
        The stream arm is an :class:`~repro.sources.InteractionSource` for
        source-fed and tailed runs, or a plain lazy iterable for streamed
        CSVs and raw interaction iterables.
        """
        config = self.config
        if config.source is not None:
            return None, config.source
        dataset = config.dataset
        if isinstance(dataset, TemporalInteractionNetwork):
            return dataset, None
        if isinstance(dataset, InteractionSource):
            return None, dataset
        if isinstance(dataset, (str, Path)):
            name = str(dataset)
            if name in available_presets():
                if config.follow:
                    raise RunConfigurationError(
                        f"follow=True tails a CSV file; {name!r} is a preset"
                    )
                return load_preset(name, scale=config.scale, seed=config.seed), None
            if config.follow:
                return None, CsvTailSource(
                    name,
                    vertex_type=config.vertex_type,
                    follow=True,
                    idle_timeout=config.idle_timeout,
                    on_bad_row=config.on_bad_row,
                )
            if config.stream:
                return None, read_interactions_csv(name, vertex_type=config.vertex_type)
            return read_network_csv(name, vertex_type=config.vertex_type), None
        # Any other iterable of interactions is treated as a raw stream.
        return None, dataset

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute the configured run and return its result."""
        if self.config.uses_partitioned_streaming:
            return self._run_partitioned_streaming()
        if self._block_native_ingest():
            return self._run_block_native()
        network, stream = self.resolve_dataset()
        if self.config.shards > 1:
            if network is None:
                # __post_init__ rejects stream=True + shards, but a raw
                # interaction iterable also resolves to a stream.
                raise RunConfigurationError(
                    "sharded runs need the full network; pass a preset name, "
                    "a CSV path or a TemporalInteractionNetwork"
                )
            return self._run_sharded(network)
        return self._run_single(network, stream)

    def _block_native_ingest(self) -> bool:
        """Whether the run should parse its CSV straight into column arrays.

        Only for explicitly requested columnar runs over a plain CSV path:
        the whole file becomes one block (24 bytes per row) and no network,
        object list or interaction object is ever built.  Resumed runs stay
        block-native too — the processed prefix is skipped with a single
        zero-copy ``block.slice`` instead of replaying the source item by
        item.  Follow/tail, sharded, observer-driven and memory-ceiling
        runs keep the object ingest (ceilings need the object path's
        mid-run/feasibility machinery).
        """
        config = self.config
        if config.columnar is not True or config.source is not None:
            return False
        if not isinstance(config.dataset, (str, Path)):
            return False
        if str(config.dataset) in available_presets():
            return False
        return not (
            config.follow
            # stream=True is an explicit lazy-consumption request; the
            # forced-columnar scheduler path keeps it lazy instead.
            or config.stream
            or config.shards > 1
            or config.observers
            or config.memory_ceiling_bytes is not None
            # An explicit scheduler knob keeps the scheduled path; a bare
            # resume_from (which also implies uses_scheduler) stays
            # block-native and slices the prefix instead.
            or config.micro_batch is not None
            or config.max_in_flight is not None
            or config.flush_interval is not None
        )

    def _run_block_native(self) -> RunResult:
        """Columnar CSV run: parse into one block, drive the engine with it.

        Resumed runs restore the engine from the checkpoint and skip the
        processed prefix with a single zero-copy ``block.slice`` — no
        source replay, no item-by-item draining.
        """
        config = self.config
        resumed: Optional[ProvenanceEngine] = None
        skip = 0
        if config.resume_from is not None:
            resumed = load_engine(config.resume_from)
            skip = resumed.interactions_processed
        # The prefix still has to be parsed (vertex ids must intern in the
        # original first-appearance order), but it is dropped as one slice.
        read_limit = config.limit if config.limit is None else skip + max(config.limit, 0)
        block = read_interaction_block(
            str(config.dataset), vertex_type=config.vertex_type, limit=read_limit
        )
        if resumed is not None:
            block = block.slice(min(skip, len(block)), len(block))
            policy = resumed.policy
            engine = resumed
        else:
            policy = build_policy(config, None, universe=block.interner.vertices)
            engine = ProvenanceEngine(policy)
        on_checkpoint = None
        if config.checkpoint_every:
            if config.checkpoint_path is None:
                raise RunConfigurationError(
                    "checkpoint_every needs a checkpoint_path to write to"
                )
            checkpoint_path = Path(config.checkpoint_path)

            def on_checkpoint(eng: ProvenanceEngine, _processed: int) -> None:
                save_engine(eng, checkpoint_path)

        statistics = engine.run(
            block,
            reset=resumed is None,
            limit=config.limit,
            sample_every=config.sample_every,
            batch_size=config.effective_batch_size,
            checkpoint_every=config.checkpoint_every,
            on_checkpoint=on_checkpoint,
            kernel=config.kernel,
        )
        memory_bytes: Optional[int] = None
        if config.measure_memory:
            # stores() flushes any transient columnar mirror first, so the
            # measured footprint matches the object path's.
            policy.stores()
            memory_bytes = policy_memory_bytes(policy)
        if config.checkpoint_path is not None:
            save_engine(engine, config.checkpoint_path)
        return RunResult(
            config=config,
            statistics=statistics,
            policy=policy,
            network=None,
            engine=engine,
            memory_bytes=memory_bytes,
            store_stats=policy.store_stats(),
            scheduler_stats=engine.scheduler_stats(),
            columnar_stats=engine.columnar_stats(),
            kernel_stats=engine.kernel_stats(),
        )

    def _run_single(
        self,
        network: Optional[TemporalInteractionNetwork],
        stream: Optional[Iterable[Interaction]],
    ) -> RunResult:
        config = self.config

        # Resumed runs restore the whole engine (policy state plus stream
        # offset) from the checkpoint and skip what it already processed.
        resumed: Optional[ProvenanceEngine] = None
        resume_token: Optional[dict] = None
        skip = 0
        if config.resume_from is not None:
            checkpoint_state = read_checkpoint(config.resume_from)
            # base_path resolves any arena sidecar files (mmap store tier)
            # living next to the checkpoint.
            resumed = engine_from_checkpoint(
                checkpoint_state, base_path=config.resume_from
            )
            resume_token = checkpoint_state.get("source_resume")
            skip = resumed.interactions_processed
            policy = resumed.policy
            engine = resumed
            for observer in config.observers:
                engine.add_observer(observer)
        else:
            policy = build_policy(config, network)
            engine = ProvenanceEngine(policy, observers=list(config.observers))

        ceiling: Optional[MemoryCeiling] = None
        if config.memory_ceiling_bytes is not None and config.memory_check_every:
            ceiling = MemoryCeiling(
                config.memory_ceiling_bytes, check_every=config.memory_check_every
            )
            engine.add_observer(ceiling)

        use_scheduler = config.uses_scheduler or isinstance(stream, InteractionSource)
        # Scheduler-driven runs checkpoint at batch-clipped stream offsets;
        # everything else keeps the historical per-interaction observer.
        # ANY engine observer (user-supplied or the ceiling above) forces the
        # per-interaction path, where only the observer mechanism fires — so
        # in-loop checkpointing must be off whenever an observer exists.
        checkpoint_in_loop = bool(
            use_scheduler
            and config.checkpoint_every
            and not config.observers
            and ceiling is None
        )
        if config.checkpoint_every:
            if config.checkpoint_path is None:
                raise RunConfigurationError(
                    "checkpoint_every needs a checkpoint_path to write to"
                )
            if not checkpoint_in_loop:
                engine.add_observer(_CheckpointObserver(
                    Path(config.checkpoint_path), config.checkpoint_every
                ))

        scheduler: Optional[MicroBatchScheduler] = None
        seek_base: Optional[InteractionSource] = None
        if use_scheduler:
            if isinstance(stream, InteractionSource):
                base = stream
                seek_base = base
                if skip:
                    # Prefer the committed offset: seek the source straight
                    # to the checkpointed position.  Sources that cannot
                    # seek (or tokens that no longer resolve) fall back to
                    # replaying and discarding the processed prefix.
                    if resume_token is None or not base.seek_resume(resume_token):
                        _drain_source(base, skip)
            else:
                iterable = stream if stream is not None else network.interactions
                if skip:
                    iterable = islice(iter(iterable), skip, None)
                # limit bounds consumption too: the scheduler's read-ahead
                # must not drain a caller's iterator past the limit.
                base = SequenceSource(iterable, limit=config.limit)
            scheduler_options: Dict[str, Any] = {}
            if config.max_in_flight is not None:
                scheduler_options["max_in_flight"] = config.max_in_flight
            scheduler = MicroBatchScheduler(
                base,
                micro_batch=config.effective_micro_batch,
                flush_interval=config.flush_interval,
                # read-ahead must not drain a caller's source past the limit
                max_pull=config.limit,
                **scheduler_options,
            )
        elif skip:  # pragma: no cover - resume_from implies use_scheduler
            stream = islice(iter(stream), skip, None)

        on_checkpoint = None
        if checkpoint_in_loop:
            checkpoint_path = Path(config.checkpoint_path)

            def on_checkpoint(eng: ProvenanceEngine, _processed: int) -> None:
                save_engine(
                    eng,
                    checkpoint_path,
                    source_resume=_source_resume_token(seek_base, eng),
                )

        if network is not None:
            source: Union[TemporalInteractionNetwork, Iterable[Interaction]] = network
        elif scheduler is not None:
            source = scheduler
        else:
            source = stream
        # The Runner closes sources it constructed itself — the follow tail
        # source, wrappers over files it opened or networks it loaded — so a
        # run ending before exhaustion (limit hit, memory abort) releases
        # file handles promptly.  Caller-passed sources AND caller-passed
        # raw iterables/generators stay theirs to manage: a generator may be
        # continued after a limited run (the reset=False pattern).
        owns_stream = (
            config.source is None
            and not isinstance(config.dataset, InteractionSource)
            and (network is not None or isinstance(config.dataset, (str, Path)))
        )
        try:
            statistics = engine.run(
                source,
                reset=resumed is None,
                limit=config.limit,
                sample_every=config.sample_every,
                batch_size=config.effective_batch_size,
                scheduler=scheduler,
                checkpoint_every=config.checkpoint_every if checkpoint_in_loop else 0,
                on_checkpoint=on_checkpoint,
                columnar=config.columnar,
                kernel=config.kernel,
            )
        except MemoryBudgetExceededError as error:
            return RunResult(
                config=config,
                statistics=RunStatistics(interactions=engine.interactions_processed),
                policy=policy,
                network=network,
                engine=engine,
                feasible=False,
                memory_bytes=error.used_bytes,
                note=str(error),
                store_stats=policy.store_stats(),
                scheduler_stats=engine.scheduler_stats(),
                columnar_stats=engine.columnar_stats(),
                kernel_stats=engine.kernel_stats(),
            )
        finally:
            if scheduler is not None and owns_stream:
                scheduler.close()

        memory_bytes: Optional[int] = None
        if config.measure_memory or config.memory_ceiling_bytes is not None:
            # stores() flushes any transient columnar mirror first, so the
            # measured footprint (and the ceiling verdict) matches the
            # object path's.
            policy.stores()
            memory_bytes = policy_memory_bytes(policy)
            if ceiling is not None:
                memory_bytes = max(memory_bytes, ceiling.peak_bytes)
        if (
            config.memory_ceiling_bytes is not None
            and memory_bytes is not None
            and memory_bytes > config.memory_ceiling_bytes
        ):
            return RunResult(
                config=config,
                statistics=statistics,
                policy=policy,
                network=network,
                engine=engine,
                feasible=False,
                memory_bytes=memory_bytes,
                note=(
                    f"final provenance state uses {memory_bytes} bytes which "
                    f"exceeds the ceiling of {config.memory_ceiling_bytes} bytes"
                ),
                store_stats=policy.store_stats(),
                scheduler_stats=engine.scheduler_stats(),
                columnar_stats=engine.columnar_stats(),
                kernel_stats=engine.kernel_stats(),
            )

        if config.checkpoint_path is not None:
            save_engine(
                engine,
                config.checkpoint_path,
                source_resume=_source_resume_token(seek_base, engine),
            )

        fault: Dict[str, Any] = {}
        if seek_base is not None and getattr(seek_base, "bad_rows", 0):
            fault["bad_rows"] = seek_base.bad_rows
        return RunResult(
            config=config,
            statistics=statistics,
            policy=policy,
            network=network,
            engine=engine,
            memory_bytes=memory_bytes,
            store_stats=policy.store_stats(),
            scheduler_stats=engine.scheduler_stats(),
            columnar_stats=engine.columnar_stats(),
            kernel_stats=engine.kernel_stats(),
            fault_stats=_fault_summary(fault),
        )

    def shard_plan(
        self, network: TemporalInteractionNetwork
    ) -> Tuple[PartitionPlan, List[SelectionPolicy]]:
        """Partition plus per-shard policies, exactly as a sharded run ships.

        Applies the same block-attachment rules ``_run_sharded`` executes
        under — columnar/fabric runs partition with the network's block
        (vectorised membership and routing, shards carry their columns),
        and auto mode attaches blocks after the policies decide.  Public so
        the bench harness can measure the fork payload of precisely the
        plan a run would dispatch, without re-implementing this logic.
        """
        config = self.config
        # Min-cut plans partition with the block up front: the partitioner
        # reads the id columns anyway (cached on the network), and routing
        # is then one fancy-index instead of an object loop.
        columnar_plan = (
            bool(config.columnar)
            or config.uses_shared_memory
            or config.shard_by == "mincut"
        )
        plan = partition_network(
            network,
            config.shards,
            mode=config.shard_by,
            limit=config.limit,
            block=network.to_block() if columnar_plan else None,
            imbalance=config.shard_imbalance,
            seed=config.partition_seed,
        )
        policies = self._shard_policies(network, plan)
        if (
            not columnar_plan
            and config.columnar is None
            and config.effective_batch_size > 1
            and policies
            and policies[0].has_columnar_kernel()
        ):
            # Auto mode: the policies decide after the plan exists; route
            # the cached block onto the already-built shards.
            attach_shard_blocks(plan, network.to_block(), limit=config.limit)
        return plan, policies

    def _run_sharded(self, network: TemporalInteractionNetwork) -> RunResult:
        config = self.config
        plan, policies = self.shard_plan(network)
        shm_stats: Optional[Dict[str, Any]] = None
        fault: Dict[str, Any] = {}
        if config.uses_shared_memory:
            from repro.runtime import shm as _shm

            try:
                # build_shared_plan copies the plan's routed shard columns
                # straight into the fabric's shared segment.
                runs, statistics, shm_stats = _shm.run_shards_shared(
                    plan,
                    policies,
                    batch_size=config.effective_batch_size,
                    sample_every=config.sample_every,
                    max_workers=config.max_workers,
                    kernel=config.kernel,
                    max_retries=config.max_task_retries,
                    retry_backoff=config.retry_backoff,
                    fault_stats=fault,
                )
            except _shm.ShardQuarantinedError:
                # A shard whose own work deterministically crashes its worker
                # would crash ANY executor — degrading just re-runs the crash
                # more slowly.  Fail fast with the per-shard diagnostics.
                raise
            except (SegmentAllocationError, _shm.WorkerCrashedError) as error:
                # Infra failure (segment allocation, respawn storm, a crash
                # with retries disabled): the work itself may be fine on a
                # transport that does not need /dev/shm or a persistent pool.
                if config.degradation != "auto":
                    raise
                _record_degradation(fault, "shared-memory", "processes", error)
                runs, statistics = self._run_shards_degraded(plan, policies, fault)
        else:
            runs, statistics = run_shards(
                plan,
                policies,
                batch_size=config.effective_batch_size,
                sample_every=config.sample_every,
                executor=config.shard_executor,
                max_workers=config.max_workers,
                columnar=config.columnar,
                kernel=config.kernel,
            )

        memory_bytes: Optional[int] = None
        feasible = True
        note = "" if plan.exact else (
            f"{plan.mode}-sharded run: origin decompositions are approximate "
            f"for {plan.cross_shard_interactions} cross-shard interactions"
        )
        if config.measure_memory or config.memory_ceiling_bytes is not None:
            memory_bytes = sum(policy_memory_bytes(run.policy) for run in runs)
            if (
                config.memory_ceiling_bytes is not None
                and memory_bytes > config.memory_ceiling_bytes
            ):
                feasible = False
                note = (
                    f"sharded provenance state uses {memory_bytes} bytes which "
                    f"exceeds the ceiling of {config.memory_ceiling_bytes} bytes"
                )

        return RunResult(
            config=config,
            statistics=statistics,
            network=network,
            shard_runs=list(runs),
            partition=plan,
            feasible=feasible,
            memory_bytes=memory_bytes,
            note=note,
            store_stats=merge_store_stats(run.store_stats for run in runs),
            kernel_stats=_merge_kernel_stats(runs),
            shm_stats=shm_stats,
            fault_stats=_fault_summary(fault),
        )

    def _run_shards_degraded(
        self,
        plan: PartitionPlan,
        policies: List[SelectionPolicy],
        fault: Dict[str, Any],
    ) -> Tuple[List[ShardRun], RunStatistics]:
        """Re-run a plan off the shared-memory fabric (degradation ladder).

        First rung: the pickled process executor (no shared segments, fresh
        pool per run).  If that pool cannot even start or breaks, last
        rung: serial in-process execution, which needs nothing from the
        environment.  The parent's ``policies`` were never mutated by the
        failed attempt (workers run unpickled copies), so a re-run from
        them is bit-identical to a clean run.
        """
        config = self.config
        kwargs = dict(
            batch_size=config.effective_batch_size,
            sample_every=config.sample_every,
            columnar=config.columnar,
            kernel=config.kernel,
        )
        try:
            return run_shards(
                plan,
                policies,
                executor="processes",
                max_workers=config.max_workers,
                **kwargs,
            )
        except (OSError, RuntimeError) as error:
            # concurrent.futures surfaces a dead pool as BrokenProcessPool
            # (a RuntimeError subclass); fork/spawn failures as OSError.
            _record_degradation(fault, "processes", "serial", error)
            return run_shards(plan, policies, executor="serial", **kwargs)

    def _degrade_streaming(
        self, fault: Dict[str, Any], error: BaseException
    ) -> Optional[RunResult]:
        """Fall back to the single-consumer path when the fabric cannot start.

        Segment allocation failing before anything streamed (ENOSPC on
        /dev/shm, fd exhaustion) means the partitioned transport is
        unavailable, not that the run is wrong — a single in-process engine
        consumes the same stream without shared segments and produces the
        provenance the merged shards would have.  Only for fresh runs under
        ``degradation="auto"``: a partitioned manifest cannot be resumed by
        the single-engine path, so resumed runs raise instead of silently
        switching checkpoint formats.  Returns ``None`` when degrading is
        not allowed (the caller re-raises).
        """
        config = self.config
        if config.degradation != "auto" or config.resume_from is not None:
            return None
        _record_degradation(fault, "shm-stream", "single", error)
        result = Runner(replace(config, streaming_shards=0)).run()
        combined = dict(fault)
        for key, value in (result.fault_stats or {}).items():
            if key == "degradations":
                combined.setdefault("degradations", []).extend(value)
            else:
                combined[key] = value
        result.fault_stats = _fault_summary(combined)
        return result

    # ------------------------------------------------------------------
    # partitioned streaming (streaming_shards > 0)
    # ------------------------------------------------------------------
    def _run_partitioned_streaming(self) -> RunResult:
        """Partitioned streaming run over the shared-memory stream fabric.

        Interactions are routed to vertex shards and dispatched as columnar
        micro-batches through rolling shared-memory segments into resident
        pool workers (one engine per shard, alive across batches).  Two
        drivers share the machinery:

        * **dataset-backed** — the network's cached block is routed with one
          fancy-index per shard and dispatched in capacity-sized slices
          (no per-interaction Python on the hot path);
        * **source-fed** — a :class:`~repro.sources.PartitionedScheduler`
          polls the live source, routes by frozen membership (a min-cut
          warm-up prefix) or stable hash, and flushes per-shard queues
          under the usual size/wall-time triggers.

        Either way each shard's engine sees exactly the subsequence an
        eager sharded run would hand it, with cumulative sample/peak/
        checkpoint clipping — results are bit-identical.
        """
        network, stream = self.resolve_dataset()
        if network is not None:
            return self._stream_partitioned_network(network)
        return self._stream_partitioned_source(stream)

    def _read_partitioned_manifest(self) -> dict:
        state = read_checkpoint(self.config.resume_from)
        if state.get("kind") != "partitioned-stream":
            raise RunConfigurationError(
                "resume_from checkpoint is a single-engine checkpoint, not a "
                "partitioned-streaming manifest; drop streaming_shards (or "
                "re-checkpoint with it) to resume this file"
            )
        return state

    def _stream_partitioned_network(self, network: TemporalInteractionNetwork) -> RunResult:
        from repro.runtime.shm import ShardStreamFabric

        config = self.config
        capacity = config.effective_micro_batch
        if config.checkpoint_every and config.checkpoint_path is None:
            raise RunConfigurationError(
                "checkpoint_every needs a checkpoint_path to write to"
            )
        manifest: Optional[dict] = None
        skip = 0
        if config.resume_from is not None:
            manifest = self._read_partitioned_manifest()
            skip = int(manifest.get("interactions_processed", 0))
        block = network.to_block()
        # The plan is built over the FULL network (no limit clip) so a
        # resumed run reproduces the original membership regardless of what
        # limit either invocation used; limits only clip dispatch below.
        plan = partition_network(
            network,
            config.streaming_shards,
            mode=config.shard_by,
            block=block,
            imbalance=config.shard_imbalance,
            seed=config.partition_seed,
        )
        num_shards = len(plan.shards)
        if manifest is not None:
            states = manifest.get("shard_states") or []
            if len(states) != num_shards:
                raise RunConfigurationError(
                    f"partitioned manifest has {len(states)} shard states but "
                    f"the rebuilt plan has {num_shards} shards; resume with "
                    "the same streaming_shards/shard_by/partition_seed"
                )
        total = len(block)
        if config.limit is not None:
            total = min(total, skip + max(config.limit, 0))
        view = block.slice(0, total)
        positions = shard_row_positions(plan, view)
        table = block.interner.vertices
        policies = (
            None if manifest is not None else self._shard_policies(network, plan)
        )
        # Universes derive from the plan alone; build them with it, outside
        # the timed region (elapsed_seconds covers streaming execution only,
        # same convention as the eager sharded paths).
        universes = (
            None
            if manifest is not None
            else [plan_shard.universe() for plan_shard in plan.shards]
        )

        fault: Dict[str, Any] = {}
        try:
            fabric = ShardStreamFabric(
                num_shards,
                capacity=capacity,
                ring=config.streaming_ring,
                sample_every=config.sample_every,
                kernel=config.kernel,
                max_workers=config.max_workers,
                max_retries=config.max_task_retries,
                retry_backoff=config.retry_backoff,
                fault_stats=fault,
            )
        except SegmentAllocationError as error:
            degraded = self._degrade_streaming(fault, error)
            if degraded is not None:
                return degraded
            raise
        checkpoints = 0
        wall_start = time.perf_counter()
        try:
            if manifest is not None:
                for shard, state in enumerate(manifest["shard_states"]):
                    fabric.open(
                        shard,
                        state["policy"],
                        (),
                        state["table"],
                        resume={
                            "interactions_processed": state["interactions_processed"],
                            "current_time": state["current_time"],
                        },
                    )
            else:
                for shard, policy in enumerate(policies):
                    fabric.open(shard, policy, universes[shard], table)

            src_col, dst_col = view.src_ids, view.dst_ids
            times_col, quantities_col = view.times, view.quantities
            cursors = [int(np.searchsorted(pos, skip)) for pos in positions]
            boundaries: List[int] = []
            if config.checkpoint_every:
                goal = skip + config.checkpoint_every
                while goal < total:
                    boundaries.append(goal)
                    goal += config.checkpoint_every
            boundaries.append(total)
            for goal in boundaries:
                for shard, pos in enumerate(positions):
                    end = int(np.searchsorted(pos, goal))
                    cursor = cursors[shard]
                    while cursor < end:
                        upper = min(cursor + capacity, end)
                        rows = pos[cursor:upper]
                        fabric.append(
                            shard,
                            src_col[rows],
                            dst_col[rows],
                            times_col[rows],
                            quantities_col[rows],
                            table,
                        )
                        cursor = upper
                    cursors[shard] = cursor
                if goal < total:
                    states = fabric.checkpoint_states()
                    _write_partitioned_manifest(
                        Path(config.checkpoint_path),
                        mode="dataset",
                        num_shards=num_shards,
                        membership=None,
                        table=None,
                        states=states,
                        processed=goal,
                    )
                    checkpoints += 1

            # The timed region matches the in-process convention: it ends
            # when every interaction has been processed by its shard engine
            # (the post-append barrier).  Outcome drain — store accounting,
            # state export, unpickling — is result assembly and is reported
            # separately as stream_stats["drain_seconds"].
            fabric.barrier()
            wall = time.perf_counter() - wall_start
            final_states: Optional[List[Optional[dict]]] = None
            if config.checkpoint_path is not None:
                final_states = fabric.checkpoint_states()
            outcomes, fabric_stats = fabric.finish()
            drain_seconds = time.perf_counter() - wall_start - wall
        except BaseException:
            fabric.abort()
            raise
        if final_states is not None:
            _write_partitioned_manifest(
                Path(config.checkpoint_path),
                mode="dataset",
                num_shards=num_shards,
                membership=None,
                table=None,
                states=final_states,
                processed=total,
            )

        runs = [
            ShardRun(
                shard=plan.shards[outcome.shard_index],
                policy=outcome.policy,
                statistics=outcome.statistics,
                last_time=outcome.last_time,
                store_stats=outcome.store_stats,
                kernel_stats=outcome.kernel_stats,
            )
            for outcome in outcomes
        ]
        statistics = merge_statistics(
            [run.statistics for run in runs], elapsed_seconds=wall
        )
        memory_bytes: Optional[int] = None
        if config.measure_memory:
            memory_bytes = sum(policy_memory_bytes(run.policy) for run in runs)
        note = "" if plan.exact else (
            f"{plan.mode}-sharded run: origin decompositions are approximate "
            f"for {plan.cross_shard_interactions} cross-shard interactions"
        )
        stream_stats = {
            "mode": "dataset",
            "routing": plan.mode,
            "shards": num_shards,
            "checkpoints": checkpoints,
            "drain_seconds": drain_seconds,
            "fabric": fabric_stats,
        }
        return RunResult(
            config=config,
            statistics=statistics,
            network=network,
            shard_runs=runs,
            partition=plan,
            memory_bytes=memory_bytes,
            note=note,
            store_stats=merge_store_stats(run.store_stats for run in runs),
            kernel_stats=_merge_kernel_stats(runs),
            shm_stats=fabric_stats,
            stream_stats=stream_stats,
            fault_stats=_fault_summary(fault),
        )

    def _stream_partitioned_source(
        self, stream: Optional[Iterable[Interaction]]
    ) -> RunResult:
        from repro.runtime.shm import ShardStreamFabric

        config = self.config
        num_shards = config.streaming_shards
        capacity = config.effective_micro_batch
        if config.shard_by == "components":
            # __post_init__ rejects the declared live inputs; a raw
            # interaction iterable also resolves to a stream.
            raise RunConfigurationError(
                "shard_by='components' needs the full network up front; "
                "live/streamed runs must use 'hash' or 'mincut' (frozen "
                "from a warm-up prefix)"
            )
        if config.checkpoint_every and config.checkpoint_path is None:
            raise RunConfigurationError(
                "checkpoint_every needs a checkpoint_path to write to"
            )
        manifest: Optional[dict] = None
        skip = 0
        if config.resume_from is not None:
            manifest = self._read_partitioned_manifest()
            skip = int(manifest.get("interactions_processed", 0))
            states = manifest.get("shard_states") or []
            if len(states) != num_shards:
                raise RunConfigurationError(
                    f"partitioned manifest has {len(states)} shard states but "
                    f"streaming_shards={num_shards}; resume with the same "
                    "shard count"
                )

        # The fabric allocates its segment rings BEFORE the source is
        # touched: an allocation failure then degrades (or raises) with the
        # stream fully intact — nothing consumed, nothing dropped.
        fault: Dict[str, Any] = {}
        try:
            fabric = ShardStreamFabric(
                num_shards,
                capacity=capacity,
                ring=config.streaming_ring,
                sample_every=config.sample_every,
                kernel=config.kernel,
                max_workers=config.max_workers,
                max_retries=config.max_task_retries,
                retry_backoff=config.retry_backoff,
                fault_stats=fault,
            )
        except SegmentAllocationError as error:
            degraded = self._degrade_streaming(fault, error)
            if degraded is not None:
                return degraded
            raise

        try:
            seek_base: Optional[InteractionSource] = None
            if isinstance(stream, InteractionSource):
                base = stream
                seek_base = base
                if skip:
                    token = manifest.get("source_resume")
                    if token is None or not base.seek_resume(token):
                        _drain_source(base, skip)
            else:
                iterable: Iterable[Interaction] = stream
                if skip:
                    iterable = islice(iter(iterable), skip, None)
                base = SequenceSource(iterable, limit=config.limit)

            # Routing: a resumed run reuses the manifest's frozen membership;
            # a fresh min-cut run freezes one from a warm-up prefix; hash
            # routing needs no table at all (the scheduler's stable fallback).
            prefix: List[Interaction] = []
            if manifest is not None:
                membership: Dict[Vertex, int] = manifest.get("membership") or {}
            elif config.shard_by == "mincut":
                warmup = config.streaming_warmup or DEFAULT_STREAM_WARMUP
                if config.limit is not None:
                    warmup = min(warmup, config.limit)
                prefix = list(base.iter_limited(warmup)) if warmup > 0 else []
                membership = (
                    warmup_membership(
                        prefix,
                        num_shards,
                        imbalance=config.shard_imbalance,
                        seed=config.partition_seed,
                    )
                    if prefix
                    else {}
                )
            else:
                membership = {}

            scheduler_options: Dict[str, Any] = {}
            if config.max_in_flight is not None:
                scheduler_options["max_in_flight"] = config.max_in_flight
            scheduler = PartitionedScheduler(
                base,
                num_shards,
                membership,
                micro_batch=capacity,
                flush_interval=config.flush_interval,
                **scheduler_options,
            )
            if prefix:
                scheduler.prefeed(prefix)
        except BaseException:
            # The fabric holds the pool's dispatch lock and its segment
            # rings from construction; a source failure during the warm-up
            # or resume seek must release them.
            fabric.abort()
            raise

        cap = config.limit  # run-local pull cap (None = until exhaustion)

        def next_barrier(pulled: int) -> Optional[int]:
            if not config.checkpoint_every:
                return cap
            goal = (pulled // config.checkpoint_every + 1) * config.checkpoint_every
            return goal if cap is None else min(goal, cap)

        scheduler.max_pull = next_barrier(scheduler.pulled)

        interner = VertexInterner()
        if manifest is not None and manifest.get("table"):
            interner.restore(manifest["table"])
        table = interner.vertices  # live list; grows as the stream interns
        intern = interner.intern

        owns_stream = (
            config.source is None
            and not isinstance(config.dataset, InteractionSource)
            and isinstance(config.dataset, (str, Path))
        )
        checkpoints = 0
        wall_start = time.perf_counter()
        try:
            try:
                if manifest is not None:
                    for shard, state in enumerate(manifest["shard_states"]):
                        fabric.open(
                            shard,
                            state["policy"],
                            (),
                            state["table"],
                            resume={
                                "interactions_processed": state["interactions_processed"],
                                "current_time": state["current_time"],
                            },
                        )
                else:
                    # Workers unpickle their own copies, so one template is
                    # safe to send to every shard (mirrors _shard_policies
                    # without a per-shard universe: live streams reset with
                    # an empty universe, like the single-consumer path).
                    template = build_policy(config, None)
                    for shard in range(num_shards):
                        fabric.open(shard, template, (), ())

                while True:
                    flushes = scheduler.next_flushes()
                    if flushes is None:
                        if scheduler.source.exhausted or (
                            cap is not None and scheduler.pulled >= cap
                        ):
                            break
                        # Checkpoint barrier: everything pulled so far has
                        # been dispatched; sync the shards and write the
                        # manifest, then raise the cap and keep going.
                        states = fabric.checkpoint_states()
                        processed = skip + scheduler.pulled
                        _write_partitioned_manifest(
                            Path(config.checkpoint_path),
                            mode="source",
                            num_shards=num_shards,
                            membership=membership,
                            table=interner.snapshot(),
                            states=states,
                            processed=processed,
                            source=seek_base,
                        )
                        checkpoints += 1
                        scheduler.max_pull = next_barrier(scheduler.pulled)
                        continue
                    for flush in flushes:
                        batch = flush.batch
                        rows = len(batch)
                        fabric.append(
                            flush.shard,
                            np.fromiter(
                                (intern(i.source) for i in batch), np.int32, count=rows
                            ),
                            np.fromiter(
                                (intern(i.destination) for i in batch),
                                np.int32,
                                count=rows,
                            ),
                            np.fromiter(
                                (i.time for i in batch), np.float64, count=rows
                            ),
                            np.fromiter(
                                (i.quantity for i in batch), np.float64, count=rows
                            ),
                            table,
                        )

                # Same timed-region convention as the dataset path: the wall
                # ends once every routed interaction has been processed by
                # its shard engine; outcome drain is result assembly.
                fabric.barrier()
                wall = time.perf_counter() - wall_start
                scheduler_stats = scheduler.stats()
                final_states: Optional[List[Optional[dict]]] = None
                if config.checkpoint_path is not None:
                    final_states = fabric.checkpoint_states()
                outcomes, fabric_stats = fabric.finish()
                drain_seconds = time.perf_counter() - wall_start - wall
            except BaseException:
                fabric.abort()
                raise
        finally:
            if owns_stream:
                scheduler.close()
        if final_states is not None:
            _write_partitioned_manifest(
                Path(config.checkpoint_path),
                mode="source",
                num_shards=num_shards,
                membership=membership,
                table=interner.snapshot(),
                states=final_states,
                processed=skip + scheduler.pulled,
                source=seek_base,
            )

        shards = [
            Shard(index=shard, vertices=(), interactions=[])
            for shard in range(num_shards)
        ]
        runs = [
            ShardRun(
                shard=shards[outcome.shard_index],
                policy=outcome.policy,
                statistics=outcome.statistics,
                last_time=outcome.last_time,
                store_stats=outcome.store_stats,
                kernel_stats=outcome.kernel_stats,
            )
            for outcome in outcomes
        ]
        statistics = merge_statistics(
            [run.statistics for run in runs], elapsed_seconds=wall
        )
        memory_bytes: Optional[int] = None
        if config.measure_memory:
            memory_bytes = sum(policy_memory_bytes(run.policy) for run in runs)
        note = (
            "partitioned stream: origin decompositions are approximate for "
            "vertices with cross-shard traffic"
            if num_shards > 1
            else ""
        )
        stream_stats = {
            "mode": "source",
            "routing": config.shard_by,
            "shards": num_shards,
            "checkpoints": checkpoints,
            "drain_seconds": drain_seconds,
            "scheduler": scheduler_stats,
            "fabric": fabric_stats,
        }
        if scheduler_stats.get("bad_rows"):
            fault["bad_rows"] = scheduler_stats["bad_rows"]
        return RunResult(
            config=config,
            statistics=statistics,
            shard_runs=runs,
            memory_bytes=memory_bytes,
            note=note,
            store_stats=merge_store_stats(run.store_stats for run in runs),
            scheduler_stats=scheduler_stats,
            kernel_stats=_merge_kernel_stats(runs),
            shm_stats=fabric_stats,
            stream_stats=stream_stats,
            fault_stats=_fault_summary(fault),
        )

    def _shard_policies(
        self, network: TemporalInteractionNetwork, plan: PartitionPlan
    ) -> List[SelectionPolicy]:
        """One independent policy per shard.

        The dense proportional policy is instantiated per shard with the
        *shard's* vertex universe (including cross-shard destinations under
        hash partitioning), shrinking its vectors.  Every other spec is
        built once — instance specs as given, name specs via
        :func:`build_policy`, so expensive constructions like the selective
        policy's contributor pre-pass run once, not per shard — and
        deep-copied so shards never share state.
        """
        spec = self.config.policy
        if spec == "proportional-dense":
            options = dict(self.config.policy_options)
            store_spec = self.config.store_spec
            if store_spec is not None:
                options.setdefault("store", store_spec)
            policies = []
            for shard in plan.shards:
                options["vertices"] = shard.universe()
                policies.append(make_policy(spec, **options))
            return policies
        template = spec if isinstance(spec, SelectionPolicy) else build_policy(
            self.config, network
        )
        # Deep copies duplicate the template's store spec but not live store
        # resources; every shard rebuilds fresh stores in its own reset()
        # (spill files included), so shards spill independently.
        return [copy.deepcopy(template) for _ in plan.shards]


def _merge_kernel_stats(runs: Iterable[ShardRun]) -> Optional[Dict[str, Any]]:
    """One representative kernel-stats dict for a sharded run.

    Mode and backend come from the first shard that reports them (shards
    share the policy/store configuration, so backends agree); chunk counts
    sum; compile seconds take the max — shards resolve against the same
    process-wide kernel cache, so at worst one shard paid the compile.
    """
    per_shard = [run.kernel_stats for run in runs if run.kernel_stats]
    if not per_shard:
        return None
    return {
        "mode": per_shard[0]["mode"],
        "backend": per_shard[0]["backend"],
        "chunks": sum(stats["chunks"] for stats in per_shard),
        "compile_seconds": max(stats["compile_seconds"] for stats in per_shard),
    }


def _write_partitioned_manifest(
    path: Path,
    *,
    mode: str,
    num_shards: int,
    membership: Optional[Dict[Vertex, int]],
    table: Optional[List[Vertex]],
    states: List[Optional[dict]],
    processed: int,
    source: Optional[InteractionSource] = None,
) -> None:
    """Write a partitioned-streaming checkpoint manifest.

    The manifest is the sharded counterpart of :func:`save_engine`'s state
    dict: per-shard engine states (policy, counters, session vertex table)
    at one consistent global stream offset, plus everything the resume path
    needs to rebuild routing — the frozen membership and the parent's
    global vertex table for source-fed runs (dataset runs rebuild both
    deterministically from the dataset and store ``None``).  A committed
    source offset rides along when the source can produce one, so resumes
    seek instead of replaying.
    """
    current_time: Optional[float] = None
    for state in states:
        if state is None:
            continue
        shard_time = state.get("current_time")
        if shard_time is not None and (current_time is None or shard_time > current_time):
            current_time = shard_time
    manifest: Dict[str, Any] = {
        "kind": "partitioned-stream",
        "mode": mode,
        "streaming_shards": num_shards,
        "interactions_processed": processed,
        "current_time": current_time,
        "membership": dict(membership) if membership is not None else None,
        "table": list(table) if table is not None else None,
        "shard_states": list(states),
    }
    if source is not None:
        token = source.resume_token(processed, current_time)
        if token is not None:
            manifest["source_resume"] = token
    save_checkpoint_state(manifest, path)


def _source_resume_token(
    base: Optional[InteractionSource], engine: ProvenanceEngine
) -> Optional[dict]:
    """The source offset matching the engine's processed count, if committed.

    Only caller-passed sources get tokens: runs over networks/iterables
    rebuild their stream from the config on resume, where the index skip is
    already cheap.  ``None`` (source ahead of the engine with the position
    forgotten, or a non-seekable source) leaves the replay fallback.
    """
    if base is None:
        return None
    return base.resume_token(engine.interactions_processed, engine.current_time)


def _drain_source(source: InteractionSource, count: int) -> None:
    """Discard the first ``count`` interactions of a source (resume skip).

    ``iter_limited`` never polls past the offset, so nothing beyond it is
    consumed and dropped.  A live source that has not yet re-produced the
    checkpointed prefix is waited on until it does; a truncated file simply
    exhausts and the resumed run sees no new interactions.
    """
    for _ in source.iter_limited(count):
        pass


class _CheckpointObserver:
    """Engine observer that checkpoints every ``every`` interactions."""

    def __init__(self, path: Path, every: int):
        self.path = path
        self.every = every

    def __call__(self, engine: ProvenanceEngine, interaction: Interaction, position: int) -> None:
        if (position + 1) % self.every == 0:
            save_engine(engine, self.path)


def run(
    dataset: Union[str, Path, TemporalInteractionNetwork, Iterable[Interaction]] = "taxis",
    policy: Union[str, SelectionPolicy] = "fifo",
    **options,
) -> RunResult:
    """Convenience wrapper: build a :class:`RunConfig` and run it.

    Keyword arguments are forwarded to :class:`RunConfig`.
    """
    return Runner(RunConfig(dataset=dataset, policy=policy, **options)).run()
