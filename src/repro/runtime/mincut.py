"""Min-cut balanced vertex partitioning of the interaction graph.

Hash shards balance load only *in expectation* — one heavy shard stalls the
whole pool — and every cut edge inflates newborn quantity (see the
:mod:`repro.runtime.partition` module docstring), so hash-sharded provenance
is approximate exactly in proportion to the cut.  This module attacks both
problems at once with the shape borrowed from political districting
(partition a graph into k balanced parts minimising cut edges, heuristic
first with an exact mode for small instances):

* the **weighted vertex-interaction graph** is built from a network's cached
  :class:`~repro.core.blocks.InteractionBlock` with pure numpy — edge weight
  is the interaction count between a vertex pair (both directions coalesced
  via sort/unique on the id columns), vertex load is the number of
  interactions the vertex *sources* (shard work follows source vertices);
* a **deterministic, seeded multilevel partitioner** — heavy-edge-matching
  coarsening, greedy balanced seeding on the coarsest graph,
  label-propagation refinement with a hard balance cap, and boundary-move
  (FM-style) polish at every uncoarsening level;
* an **exhaustive exact mode** for tiny instances: after grouping vertices
  into connected components the movable units are enumerated by
  branch-and-bound (warm-started with the heuristic incumbent, first-shard
  symmetry breaking), minimising ``(cut_weight, max shard load)``
  lexicographically — the heuristic-warm-start-then-exact structure of the
  districting exemplar, sized to ``<= EXACT_UNIT_LIMIT`` movable units.

Everything is deterministic for a given ``seed`` (``numpy``'s seeded
``default_rng`` drives every tie-broken ordering), so the same plan is
produced across runs and platforms.  :class:`PartitionStats` records the
measured quality — cut edges, cut weight, imbalance, build time — for any
membership, which is how hash and component plans get comparable numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.blocks import InteractionBlock
from repro.exceptions import RunConfigurationError

__all__ = [
    "PartitionStats",
    "DEFAULT_IMBALANCE",
    "EXACT_UNIT_LIMIT",
    "interaction_graph",
    "mincut_membership",
    "membership_stats",
]

#: Default hard cap on shard imbalance: max shard load may exceed the ideal
#: (total load / shards) by at most this factor.
DEFAULT_IMBALANCE = 1.1

#: Exact branch-and-bound runs when the movable units (connected components,
#: or raw vertices of a single tiny component) number at most this.
EXACT_UNIT_LIMIT = 15

#: Coarsening stops once the graph is at most this many vertices (scaled by
#: the shard count so every shard keeps a few units to seed from).
_COARSE_TARGET = 48

#: Refinement passes per level; label propagation converges quickly and the
#: cap keeps worst-case build time linear in the edge count.
_REFINE_PASSES = 8


@dataclass(frozen=True)
class PartitionStats:
    """Measured quality of one partition plan.

    ``cut_edges`` counts distinct vertex *pairs* with endpoints on different
    shards; ``cut_weight`` counts the interactions riding those pairs (the
    quantity that drives the documented newborn overestimate).  ``imbalance``
    is the max shard load over the ideal load (total / shards), loads being
    interaction counts — the straggler predictor.  ``build_seconds`` is the
    partitioning time, excluded from every timed run region.
    """

    strategy: str
    shards: int
    cut_edges: int
    cut_weight: int
    imbalance: float
    build_seconds: float
    balance_cap: Optional[float] = None
    seed: Optional[int] = None
    exact: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "strategy": self.strategy,
            "shards": self.shards,
            "cut_edges": self.cut_edges,
            "cut_weight": self.cut_weight,
            "imbalance": self.imbalance,
            "build_seconds": self.build_seconds,
            "balance_cap": self.balance_cap,
            "seed": self.seed,
            "exact": self.exact,
        }


# ----------------------------------------------------------------------
# graph construction (pure numpy over the block's id columns)
# ----------------------------------------------------------------------
def interaction_graph(
    block: InteractionBlock, num_vertices: Optional[int] = None
) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The weighted undirected vertex graph of an interaction block.

    Returns ``(n, edge_u, edge_v, edge_weight, load)``: unique undirected
    vertex pairs (self-loops dropped — they can never be cut) with their
    interaction counts as weights, plus each vertex's *load* — the number of
    interactions it sources, which is exactly the work a shard inherits by
    owning it.  One ``np.unique`` over the fused pair keys coalesces both
    directions; no Python loop touches the stream.
    """
    n = num_vertices if num_vertices is not None else len(block.interner)
    src = block.src_ids.astype(np.int64, copy=False)
    dst = block.dst_ids.astype(np.int64, copy=False)
    load = np.bincount(src, minlength=n)
    low = np.minimum(src, dst)
    high = np.maximum(src, dst)
    off_diagonal = low != high
    pairs = low[off_diagonal] * n + high[off_diagonal]
    unique, counts = np.unique(pairs, return_counts=True)
    return n, unique // n, unique % n, counts.astype(np.int64), load


def membership_stats(
    membership: np.ndarray,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    edge_weight: np.ndarray,
    load: np.ndarray,
    num_shards: int,
) -> Tuple[int, int, float]:
    """``(cut_edges, cut_weight, imbalance)`` of any membership array."""
    cut = membership[edge_u] != membership[edge_v]
    cut_edges = int(np.count_nonzero(cut))
    cut_weight = int(edge_weight[cut].sum()) if cut_edges else 0
    shard_load = np.bincount(membership, weights=load, minlength=num_shards)
    total = float(shard_load.sum())
    if total <= 0 or num_shards < 1:
        return cut_edges, cut_weight, 1.0
    ideal = total / num_shards
    return cut_edges, cut_weight, float(shard_load.max() / ideal)


# ----------------------------------------------------------------------
# adjacency + coarsening
# ----------------------------------------------------------------------
def _adjacency(
    n: int, edge_u: np.ndarray, edge_v: np.ndarray, edge_weight: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR adjacency of the undirected graph (both directions)."""
    heads = np.concatenate([edge_u, edge_v])
    tails = np.concatenate([edge_v, edge_u])
    weights = np.concatenate([edge_weight, edge_weight])
    order = np.argsort(heads, kind="stable")
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(heads, minlength=n), out=indptr[1:])
    return indptr, tails[order], weights[order]


def _heavy_edge_matching(
    n: int,
    indptr: np.ndarray,
    tails: np.ndarray,
    weights: np.ndarray,
    load: np.ndarray,
    max_unit: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Coarse-vertex map via heavy-edge aggregation.

    Vertices are visited in a seeded random order; each ungrouped vertex
    joins the group of its neighbour with the maximum edge weight (ties to
    the lowest id) as long as the combined load stays under ``max_unit`` —
    joining an *existing* group is allowed, which is what collapses stars
    (pure pairwise matching leaves a hub's leaves unmatched against each
    other and stalls).  The load cap keeps coarse units a fraction of a
    shard, so balance stays reachable.  Group ids are renumbered in
    fine-id order, so the map is deterministic given the visit order.
    """
    indptr_list = indptr.tolist()
    tails_list = tails.tolist()
    weights_list = weights.tolist()
    load_list = load.tolist()
    group = [-1] * n
    group_load: List[int] = []
    for vertex in rng.permutation(n).tolist():
        if group[vertex] >= 0:
            continue
        best = -1
        best_weight = 0
        budget = max_unit - load_list[vertex]
        for position in range(indptr_list[vertex], indptr_list[vertex + 1]):
            neighbour = tails_list[position]
            if neighbour == vertex:
                continue
            neighbour_group = group[neighbour]
            joined_load = (
                group_load[neighbour_group]
                if neighbour_group >= 0
                else load_list[neighbour]
            )
            if joined_load > budget:
                continue
            weight = weights_list[position]
            if weight > best_weight or (
                weight == best_weight and (best < 0 or neighbour < best)
            ):
                best = neighbour
                best_weight = weight
        if best >= 0 and group[best] >= 0:
            group[vertex] = group[best]
            group_load[group[best]] += load_list[vertex]
        elif best >= 0:
            group[vertex] = group[best] = len(group_load)
            group_load.append(load_list[vertex] + load_list[best])
        else:
            group[vertex] = len(group_load)
            group_load.append(load_list[vertex])
    coarse_map = np.empty(n, dtype=np.int64)
    renumber: Dict[int, int] = {}
    for vertex in range(n):
        coarse_map[vertex] = renumber.setdefault(group[vertex], len(renumber))
    return coarse_map


def _contract(
    coarse_map: np.ndarray,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    edge_weight: np.ndarray,
    load: np.ndarray,
) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Contract a graph along a coarse-vertex map, summing weights."""
    n_coarse = int(coarse_map.max()) + 1 if len(coarse_map) else 0
    coarse_load = np.bincount(coarse_map, weights=load, minlength=n_coarse).astype(np.int64)
    cu = coarse_map[edge_u]
    cv = coarse_map[edge_v]
    low = np.minimum(cu, cv)
    high = np.maximum(cu, cv)
    off_diagonal = low != high
    pairs = low[off_diagonal] * n_coarse + high[off_diagonal]
    weight = edge_weight[off_diagonal]
    unique, inverse = np.unique(pairs, return_inverse=True)
    summed = np.bincount(inverse, weights=weight, minlength=len(unique)).astype(np.int64)
    return n_coarse, unique // n_coarse, unique % n_coarse, summed, coarse_load


# ----------------------------------------------------------------------
# seeding + refinement
# ----------------------------------------------------------------------
def _greedy_seed(
    n: int,
    indptr: np.ndarray,
    tails: np.ndarray,
    weights: np.ndarray,
    load: np.ndarray,
    num_shards: int,
    cap_load: int,
) -> np.ndarray:
    """Balanced greedy seeding: heaviest vertex first into the best shard.

    A vertex goes to the shard it is most connected to among those with
    room; without any fitting shard, to the lightest.  Ties break toward
    the lighter (then lower-indexed) shard, so seeding is deterministic.
    """
    membership = np.full(n, -1, dtype=np.int64)
    shard_load = [0] * num_shards
    order = sorted(range(n), key=lambda v: (-load[v], v))
    indptr_list = indptr.tolist()
    tails_list = tails.tolist()
    weights_list = weights.tolist()
    load_list = load.tolist()
    membership_list = membership.tolist()
    for vertex in order:
        connection = [0] * num_shards
        for position in range(indptr_list[vertex], indptr_list[vertex + 1]):
            neighbour_shard = membership_list[tails_list[position]]
            if neighbour_shard >= 0:
                connection[neighbour_shard] += weights_list[position]
        best = -1
        best_key = None
        for shard in range(num_shards):
            fits = shard_load[shard] + load_list[vertex] <= cap_load
            key = (0 if fits else 1, -connection[shard], shard_load[shard], shard)
            if best_key is None or key < best_key:
                best = shard
                best_key = key
        membership_list[vertex] = best
        shard_load[best] += load_list[vertex]
    return np.asarray(membership_list, dtype=np.int64)


def _refine(
    n: int,
    indptr: np.ndarray,
    tails: np.ndarray,
    weights: np.ndarray,
    load: np.ndarray,
    membership: np.ndarray,
    num_shards: int,
    cap_load: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Label-propagation / boundary-move polish under the hard balance cap.

    Greedy sequential passes in a seeded order: a vertex moves to the
    neighbouring shard with the largest positive cut gain whose load stays
    under the cap; zero-gain moves are taken only when they strictly
    improve balance (max-load reduction), which is what drains stragglers
    without churning the cut.  Stops at the first pass with no moves.
    """
    indptr_list = indptr.tolist()
    tails_list = tails.tolist()
    weights_list = weights.tolist()
    load_list = load.tolist()
    membership_list = membership.tolist()
    shard_load = [0] * num_shards
    for vertex in range(n):
        shard_load[membership_list[vertex]] += load_list[vertex]
    for _ in range(_REFINE_PASSES):
        moves = 0
        for vertex in rng.permutation(n).tolist():
            current = membership_list[vertex]
            begin, end = indptr_list[vertex], indptr_list[vertex + 1]
            if begin == end and load_list[vertex] == 0:
                continue
            connection: Dict[int, int] = {}
            for position in range(begin, end):
                shard = membership_list[tails_list[position]]
                connection[shard] = connection.get(shard, 0) + weights_list[position]
            here = connection.get(current, 0)
            vertex_load = load_list[vertex]
            best = -1
            best_key = None
            for shard, weight in connection.items():
                if shard == current:
                    continue
                if shard_load[shard] + vertex_load > cap_load:
                    continue
                gain = weight - here
                if gain < 0:
                    continue
                if gain == 0 and not (
                    vertex_load > 0
                    and shard_load[current] > shard_load[shard] + vertex_load
                ):
                    continue
                key = (-gain, shard_load[shard], shard)
                if best_key is None or key < best_key:
                    best = shard
                    best_key = key
            if best >= 0:
                membership_list[vertex] = best
                shard_load[current] -= vertex_load
                shard_load[best] += vertex_load
                moves += 1
        if not moves:
            break
    return np.asarray(membership_list, dtype=np.int64)


def _rebalance(
    n: int,
    indptr: np.ndarray,
    tails: np.ndarray,
    weights: np.ndarray,
    load: np.ndarray,
    membership: np.ndarray,
    num_shards: int,
    cap_load: int,
) -> np.ndarray:
    """Force overloaded shards under the cap with cheapest-cut-loss moves.

    Refinement alone can stall above the cap when every positive-gain move
    is exhausted; this pass keeps evicting the overloaded shard's vertex
    with the smallest cut penalty into the most connected shard with room
    until the cap holds (or no vertex is movable, e.g. a single vertex
    heavier than the cap — the cap is then infeasible and reported as-is).
    """
    indptr_list = indptr.tolist()
    tails_list = tails.tolist()
    weights_list = weights.tolist()
    load_list = load.tolist()
    membership_list = membership.tolist()
    shard_load = [0] * num_shards
    for vertex in range(n):
        shard_load[membership_list[vertex]] += load_list[vertex]
    for _ in range(n):
        heavy = max(range(num_shards), key=lambda s: (shard_load[s], -s))
        if shard_load[heavy] <= cap_load:
            break
        best_vertex = -1
        best_target = -1
        best_key = None
        for vertex in range(n):
            if membership_list[vertex] != heavy:
                continue
            vertex_load = load_list[vertex]
            if vertex_load == 0:
                continue
            connection: Dict[int, int] = {}
            for position in range(indptr_list[vertex], indptr_list[vertex + 1]):
                shard = membership_list[tails_list[position]]
                connection[shard] = connection.get(shard, 0) + weights_list[position]
            here = connection.get(heavy, 0)
            for shard in range(num_shards):
                if shard == heavy:
                    continue
                if shard_load[shard] + vertex_load > cap_load:
                    continue
                loss = here - connection.get(shard, 0)
                key = (loss, shard_load[shard], vertex, shard)
                if best_key is None or key < best_key:
                    best_vertex = vertex
                    best_target = shard
                    best_key = key
        if best_vertex < 0:
            break  # nothing movable: the cap is infeasible for this graph
        membership_list[best_vertex] = best_target
        shard_load[heavy] -= load_list[best_vertex]
        shard_load[best_target] += load_list[best_vertex]
    return np.asarray(membership_list, dtype=np.int64)


# ----------------------------------------------------------------------
# exact mode: branch-and-bound over movable units
# ----------------------------------------------------------------------
def _connected_component_units(
    n: int, edge_u: np.ndarray, edge_v: np.ndarray
) -> np.ndarray:
    """Component id per vertex (union-find over the edge list)."""
    parent = list(range(n))

    def find(vertex: int) -> int:
        root = vertex
        while parent[root] != root:
            root = parent[root]
        while parent[vertex] != root:
            parent[vertex], vertex = root, parent[vertex]
        return root

    for u, v in zip(edge_u.tolist(), edge_v.tolist()):
        root_u, root_v = find(u), find(v)
        if root_u != root_v:
            parent[root_v] = root_u
    labels: Dict[int, int] = {}
    component = np.empty(n, dtype=np.int64)
    for vertex in range(n):
        root = find(vertex)
        component[vertex] = labels.setdefault(root, len(labels))
    return component


def _branch_and_bound(
    unit_load: Sequence[int],
    unit_edges: Sequence[Tuple[int, int, int]],
    num_shards: int,
    cap_load: int,
    incumbent: Tuple[int, int],
) -> Optional[List[int]]:
    """Exact unit assignment minimising ``(cut_weight, max shard load)``.

    Depth-first over units in load-descending order with first-shard
    symmetry breaking (a unit may open at most one previously-empty shard)
    and two prunes: partial cut already at/above the incumbent cut, and the
    balance cap.  ``incumbent`` is the heuristic's ``(cut, max_load)`` —
    the warm start that makes the search practical.  Returns the best
    assignment strictly better than the incumbent, else ``None``.
    """
    units = len(unit_load)
    order = sorted(range(units), key=lambda u: (-unit_load[u], u))
    adjacency: List[List[Tuple[int, int]]] = [[] for _ in range(units)]
    for u, v, w in unit_edges:
        adjacency[u].append((v, w))
        adjacency[v].append((u, w))
    assignment = [-1] * units
    shard_load = [0] * num_shards
    best: Dict[str, Any] = {"key": incumbent, "assignment": None}

    def descend(depth: int, cut: int) -> None:
        if cut > best["key"][0]:
            return
        if depth == units:
            key = (cut, max(shard_load))
            if key < best["key"]:
                best["key"] = key
                best["assignment"] = assignment.copy()
            return
        unit = order[depth]
        used = 0
        for shard in range(num_shards):
            if assignment_counts[shard]:
                used = shard + 1
        # symmetry breaking: a unit may extend into at most one new shard
        for shard in range(min(used + 1, num_shards)):
            if shard_load[shard] + unit_load[unit] > cap_load:
                continue
            extra = 0
            for neighbour, weight in adjacency[unit]:
                neighbour_shard = assignment[neighbour]
                if neighbour_shard >= 0 and neighbour_shard != shard:
                    extra += weight
            if cut + extra > best["key"][0]:
                continue
            assignment[unit] = shard
            assignment_counts[shard] += 1
            shard_load[shard] += unit_load[unit]
            descend(depth + 1, cut + extra)
            shard_load[shard] -= unit_load[unit]
            assignment_counts[shard] -= 1
            assignment[unit] = -1

    assignment_counts = [0] * num_shards
    descend(0, 0)
    return best["assignment"]


def _exact_polish(
    n: int,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    edge_weight: np.ndarray,
    load: np.ndarray,
    membership: np.ndarray,
    num_shards: int,
    cap_load: int,
) -> Tuple[np.ndarray, bool]:
    """Try the exact search; fall back to the heuristic membership.

    Movable units are the connected components when each fits under the
    cap (assigning whole components can always reach cut 0, so the search
    optimises pure balance); a single component small enough is searched
    vertex by vertex.  Instances above :data:`EXACT_UNIT_LIMIT` movable
    units keep the heuristic result untouched.
    """
    component = _connected_component_units(n, edge_u, edge_v)
    num_components = int(component.max()) + 1 if n else 0
    component_load = np.bincount(component, weights=load, minlength=num_components).astype(np.int64)

    if (
        1 < num_components <= EXACT_UNIT_LIMIT
        and num_components >= num_shards
        and bool((component_load <= cap_load).all())
    ):
        unit_load = component_load.tolist()
        unit_edges: List[Tuple[int, int, int]] = []  # components share no edges
        unit_of = component
    elif n <= EXACT_UNIT_LIMIT:
        unit_load = load.astype(np.int64).tolist()
        unit_edges = list(
            zip(edge_u.tolist(), edge_v.tolist(), edge_weight.tolist())
        )
        unit_of = np.arange(n, dtype=np.int64)
    else:
        return membership, False

    _, cut_weight, _ = membership_stats(
        membership, edge_u, edge_v, edge_weight, load, num_shards
    )
    shard_load = np.bincount(membership, weights=load, minlength=num_shards)
    incumbent = (cut_weight, int(shard_load.max()))
    improved = _branch_and_bound(
        unit_load, unit_edges, num_shards, cap_load, incumbent
    )
    if improved is None:
        return membership, True
    unit_assignment = np.asarray(improved, dtype=np.int64)
    return unit_assignment[unit_of], True


# ----------------------------------------------------------------------
# the partitioner
# ----------------------------------------------------------------------
def mincut_membership(
    n: int,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    edge_weight: np.ndarray,
    load: np.ndarray,
    num_shards: int,
    *,
    imbalance: float = DEFAULT_IMBALANCE,
    seed: int = 0,
) -> Tuple[np.ndarray, bool]:
    """Shard assignment per vertex id; returns ``(membership, exact)``.

    Deterministic for a given ``seed``.  The hard balance cap is
    ``floor(imbalance * total_load / num_shards)`` — floor, so the measured
    ``max_load * num_shards / total_load`` imbalance never exceeds the
    requested factor — widened to the two feasibility floors below which no
    partition exists: the perfectly balanced bound
    ``ceil(total_load / num_shards)`` and the heaviest single vertex (the
    cap is infeasible below vertex granularity; the partitioner then gets
    as close as moves allow and the true imbalance is reported in the
    stats).
    """
    if num_shards < 1:
        raise RunConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    if imbalance < 1.0:
        raise RunConfigurationError(
            f"imbalance cap must be >= 1.0, got {imbalance}"
        )
    if n == 0:
        return np.empty(0, dtype=np.int64), True
    if num_shards == 1:
        return np.zeros(n, dtype=np.int64), True

    load = load.astype(np.int64, copy=False)
    total_load = int(load.sum())
    ideal = total_load / num_shards if num_shards else 0.0
    cap_load = max(int(imbalance * ideal), int(np.ceil(ideal)), 1)
    heaviest = int(load.max()) if n else 0
    cap_load = max(cap_load, heaviest)
    # Coarse units above a fraction of a shard make balanced seeding
    # impossible; cap matched-unit weight well under the shard ideal.
    max_unit = max(int(ideal // 3), heaviest, 1)

    rng = np.random.default_rng(seed)

    # --- coarsen ------------------------------------------------------
    levels: List[Tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
    graph = (n, edge_u, edge_v, edge_weight, load)
    target = max(_COARSE_TARGET, 4 * num_shards)
    while graph[0] > target:
        gn, gu, gv, gw, gload = graph
        indptr, tails, weights = _adjacency(gn, gu, gv, gw)
        coarse_map = _heavy_edge_matching(gn, indptr, tails, weights, gload, max_unit, rng)
        n_coarse = int(coarse_map.max()) + 1 if gn else 0
        if n_coarse > int(0.95 * gn):  # stalled — further levels buy nothing
            break
        levels.append((gn, gu, gv, gw, gload, coarse_map))
        graph = _contract(coarse_map, gu, gv, gw, gload)

    # --- seed at the coarsest level -----------------------------------
    gn, gu, gv, gw, gload = graph
    indptr, tails, weights = _adjacency(gn, gu, gv, gw)
    membership = _greedy_seed(gn, indptr, tails, weights, gload, num_shards, cap_load)
    membership = _refine(
        gn, indptr, tails, weights, gload, membership, num_shards, cap_load, rng
    )

    # --- uncoarsen + polish -------------------------------------------
    for fine_n, fu, fv, fw, fload, coarse_map in reversed(levels):
        membership = membership[coarse_map]
        indptr, tails, weights = _adjacency(fine_n, fu, fv, fw)
        membership = _refine(
            fine_n, indptr, tails, weights, fload, membership,
            num_shards, cap_load, rng,
        )

    indptr, tails, weights = _adjacency(n, edge_u, edge_v, edge_weight)
    membership = _rebalance(
        n, indptr, tails, weights, load, membership, num_shards, cap_load
    )

    # --- exact mode for tiny instances --------------------------------
    # (an exact result already respects the cap, so no rebalance after)
    membership, exact = _exact_polish(
        n, edge_u, edge_v, edge_weight, load, membership, num_shards, cap_load
    )
    return membership, exact
