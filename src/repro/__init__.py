"""repro: provenance tracking in temporal interaction networks.

A faithful, pure-Python reproduction of *Provenance in Temporal Interaction
Networks* (Kosyfaki & Mamoulis, ICDE 2022).  The library tracks the origins
(and optionally the transfer paths) of quantities that flow between the
vertices of a temporal interaction network, under all the selection policies
studied by the paper, together with the scalable restrictions of the
proportional policy and the full experimental harness.

Quick start::

    from repro import ProvenanceEngine, FifoPolicy, datasets

    network = datasets.load_preset("taxis")
    engine = ProvenanceEngine(FifoPolicy())
    engine.run(network)
    vertex = max(engine.buffer_totals(), key=engine.buffer_total)
    print(engine.origins(vertex).top(5))
"""

from repro import analysis, datasets, lazy, metrics, paths, runtime, sources, stores
from repro.core.engine import ProvenanceEngine, RunStatistics
from repro.sources import (
    CsvTailSource,
    GeneratorSource,
    InteractionSource,
    MergeSource,
    MicroBatchScheduler,
    SequenceSource,
)
from repro.stores import (
    DenseNumpyStore,
    DictStore,
    ProvenanceStore,
    SqliteStore,
    StoreSpec,
    StoreStats,
    available_store_backends,
    resolve_store_spec,
)
from repro.runtime import RunConfig, Runner, RunResult
from repro.lazy.replay import ReplayProvenance
from repro.core.blocks import InteractionBlock, VertexInterner
from repro.core.interaction import Interaction, Vertex
from repro.core.network import TemporalInteractionNetwork
from repro.core.provenance import UNKNOWN_ORIGIN, OriginSet, ProvenanceSnapshot
from repro.exceptions import (
    DatasetError,
    InvalidInteractionError,
    MemoryBudgetExceededError,
    PolicyConfigurationError,
    PolicyNotRegisteredError,
    ReproError,
    UnknownVertexError,
)
from repro.paths.tracker import PathProvenance, PathRecord, PathStatistics
from repro.policies.base import SelectionPolicy
from repro.policies.generation_time import LeastRecentlyBornPolicy, MostRecentlyBornPolicy
from repro.policies.no_provenance import NoProvenancePolicy
from repro.policies.proportional import ProportionalDensePolicy, ProportionalSparsePolicy
from repro.policies.receipt_order import FifoPolicy, LifoPolicy
from repro.policies.registry import available_policies, make_policy
from repro.scalable.budget import BudgetProportionalPolicy
from repro.scalable.grouped import GroupedProportionalPolicy
from repro.scalable.selective import SelectiveProportionalPolicy
from repro.scalable.time_window import TimeWindowedProportionalPolicy
from repro.scalable.windowing import WindowedProportionalPolicy

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # substrate
    "Interaction",
    "Vertex",
    "TemporalInteractionNetwork",
    "InteractionBlock",
    "VertexInterner",
    "ProvenanceEngine",
    "RunStatistics",
    # runtime (Runner pipeline)
    "Runner",
    "RunConfig",
    "RunResult",
    # streaming ingestion (sources + scheduler)
    "InteractionSource",
    "SequenceSource",
    "CsvTailSource",
    "GeneratorSource",
    "MergeSource",
    "MicroBatchScheduler",
    "OriginSet",
    "ProvenanceSnapshot",
    "UNKNOWN_ORIGIN",
    # policies (Section 4)
    "SelectionPolicy",
    "NoProvenancePolicy",
    "LeastRecentlyBornPolicy",
    "MostRecentlyBornPolicy",
    "FifoPolicy",
    "LifoPolicy",
    "ProportionalDensePolicy",
    "ProportionalSparsePolicy",
    # scalable proportional (Section 5)
    "SelectiveProportionalPolicy",
    "GroupedProportionalPolicy",
    "WindowedProportionalPolicy",
    "TimeWindowedProportionalPolicy",
    "BudgetProportionalPolicy",
    # how-provenance (Section 6)
    "PathProvenance",
    "PathRecord",
    "PathStatistics",
    # lazy provenance (future work, Section 8)
    "ReplayProvenance",
    # registry
    "available_policies",
    "make_policy",
    # provenance stores
    "ProvenanceStore",
    "StoreSpec",
    "StoreStats",
    "DictStore",
    "DenseNumpyStore",
    "SqliteStore",
    "available_store_backends",
    "resolve_store_spec",
    # subpackages
    "analysis",
    "datasets",
    "lazy",
    "metrics",
    "paths",
    "runtime",
    "sources",
    "stores",
    # exceptions
    "ReproError",
    "InvalidInteractionError",
    "UnknownVertexError",
    "PolicyConfigurationError",
    "PolicyNotRegisteredError",
    "DatasetError",
    "MemoryBudgetExceededError",
]
