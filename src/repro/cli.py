"""Command-line interface: ``tin-provenance`` / ``python -m repro``.

Subcommands
-----------
``run``
    Run a selection policy over a dataset preset or a CSV file and print the
    provenance of the largest buffers.
``experiment``
    Regenerate one of the paper's tables or figures and print it.
``datasets``
    List the built-in dataset presets.
``policies``
    List the registered selection policies.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.bench import experiments as _experiments
from repro.datasets.catalog import available_presets, load_preset
from repro.exceptions import ReproError
from repro.metrics.memory import format_bytes
from repro.metrics.tables import format_table
from repro.policies.registry import available_policies
from repro.runtime import DEFAULT_BATCH_SIZE, RunConfig, Runner
from repro.stores import available_store_backends

__all__ = ["main", "build_parser"]

#: Experiment subcommand name -> callable producing an ExperimentResult.
EXPERIMENTS = {
    "table6": _experiments.table6_datasets,
    "table7": _experiments.table7_runtime,
    "table8": _experiments.table8_memory,
    "table9": _experiments.table9_shrinking,
    "table10": _experiments.table10_paths,
    "figure2": _experiments.figure2_accumulation,
    "figure5": _experiments.figure5_selective_grouped,
    "figure6": _experiments.figure6_cumulative,
    "figure7": _experiments.figure7_windowing,
    "figure8": _experiments.figure8_budget,
    "figure9": _experiments.figure9_alerts,
    "ablation-buffers": _experiments.ablation_buffer_structures,
    "ablation-dense-sparse": _experiments.ablation_dense_vs_sparse,
    "ablation-budget": _experiments.ablation_budget_policies,
    "ablation-lazy": _experiments.ablation_lazy_vs_proactive,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing and documentation)."""
    parser = argparse.ArgumentParser(
        prog="tin-provenance",
        description="Provenance tracking in temporal interaction networks "
        "(reproduction of Kosyfaki & Mamoulis, ICDE 2022).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run a selection policy over a dataset and report provenance"
    )
    run_parser.add_argument(
        "--dataset",
        default="taxis",
        help="dataset preset name or path to a CSV file of interactions",
    )
    run_parser.add_argument(
        "--policy",
        default="fifo",
        choices=available_policies(),
        help="selection policy to run",
    )
    run_parser.add_argument(
        "--scale", type=float, default=1.0, help="scale factor for preset datasets"
    )
    run_parser.add_argument(
        "--limit", type=int, default=None, help="process at most this many interactions"
    )
    run_parser.add_argument(
        "--top", type=int, default=5, help="number of largest buffers to report"
    )
    run_parser.add_argument(
        "--budget", type=int, default=100,
        help="per-vertex budget (proportional-budget policy only)",
    )
    run_parser.add_argument(
        "--window", type=int, default=1000,
        help="window size in interactions (proportional-windowed policy only)",
    )
    run_parser.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH_SIZE,
        help="interactions per process_many() batch (0 or 1: per-interaction)",
    )
    run_parser.add_argument(
        "--columnar", action=argparse.BooleanOptionalAction, default=None,
        help="columnar fast path: drive the policy over interned-id array "
        "blocks (--columnar forces it, --no-columnar disables it; default: "
        "automatic whenever the policy has an array kernel for its store "
        "backend). Results are bit-identical either way.",
    )
    run_parser.add_argument(
        "--kernel", choices=("auto", "fused", "batch"), default="auto",
        help="columnar execution tier: 'auto'/'fused' run whole-run fused "
        "kernels (compiled backend when available, pure numpy otherwise), "
        "'batch' keeps the per-chunk columnar loop. Results are "
        "bit-identical across tiers.",
    )
    run_parser.add_argument(
        "--stream", action="store_true",
        help="stream CSV datasets lazily instead of loading them into memory",
    )
    run_parser.add_argument(
        "--follow", action="store_true",
        help="tail a CSV dataset for appended rows (streaming ingestion); "
        "pair with --idle-timeout so an idle producer ends the run",
    )
    run_parser.add_argument(
        "--micro-batch", type=int, default=None,
        help="micro-batch size of the streaming scheduler (default: --batch-size)",
    )
    run_parser.add_argument(
        "--max-in-flight", type=int, default=None,
        help="bound on interactions buffered between source and policy "
        "(backpressure; default: 4x the micro-batch)",
    )
    run_parser.add_argument(
        "--flush-interval", type=float, default=None,
        help="flush a partial micro-batch after this many seconds (slow feeds)",
    )
    run_parser.add_argument(
        "--idle-timeout", type=float, default=None,
        help="with --follow: end the run after this many seconds without new rows",
    )
    run_parser.add_argument(
        "--checkpoint", type=str, default=None, metavar="PATH",
        help="write the engine state to PATH after the run (and periodically "
        "with --checkpoint-every)",
    )
    run_parser.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="also checkpoint every N processed interactions "
        "(streaming runs checkpoint at batch-clipped offsets)",
    )
    run_parser.add_argument(
        "--resume-from", type=str, default=None, metavar="PATH",
        help="resume from an engine checkpoint: restore the policy state and "
        "skip the interactions it already processed",
    )
    run_parser.add_argument(
        "--store", choices=available_store_backends(), default=None,
        help="provenance-store backend for the policy state (default: "
        "REPRO_DEFAULT_STORE env var, then in-memory dicts); 'mmap' is the "
        "dense arena with zero-copy snapshot sidecars for checkpoint/resume",
    )
    run_parser.add_argument(
        "--hot-capacity", type=int, default=None,
        help="resident entries per store before spilling (sqlite store only)",
    )
    run_parser.add_argument(
        "--hot-bytes", type=int, default=None,
        help="serialized-byte budget for the resident tier; size-aware LRU "
        "eviction (sqlite store only)",
    )
    run_parser.add_argument(
        "--spill-batch", type=int, default=None,
        help="LRU entries spilled per overflow in one batched write "
        "(sqlite store only)",
    )
    run_parser.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="additionally write the structured run record (RunResult.to_json) "
        "to PATH ('-' for stdout)",
    )
    run_parser.add_argument(
        "--shards", type=int, default=0,
        help="partition the network into this many vertex shards (0: no sharding)",
    )
    run_parser.add_argument(
        "--shard-by", choices=("components", "hash", "mincut"),
        default="components",
        help="partitioning mode: weakly-connected components (exact), "
        "stable vertex hash (approximate) or seeded min-cut (balanced with "
        "minimal cross-shard interactions)",
    )
    run_parser.add_argument(
        "--shard-strategy", choices=("component", "hash", "mincut"),
        default=None,
        help="alias for --shard-by ('component' selects the exact "
        "components mode); overrides it when both are given",
    )
    run_parser.add_argument(
        "--shard-imbalance", type=float, default=1.1,
        help="min-cut balance cap: the heaviest shard's interaction load "
        "may exceed the ideal by at most this factor (default 1.1)",
    )
    run_parser.add_argument(
        "--partition-seed", type=int, default=0,
        help="seed of the min-cut partitioner; the same seed reproduces "
        "the same plan bit for bit",
    )
    run_parser.add_argument(
        "--shard-executor", choices=("serial", "threads", "processes"),
        default="serial", help="how shard engines are executed",
    )
    run_parser.add_argument(
        "--shared-memory", action=argparse.BooleanOptionalAction, default=None,
        help="zero-copy shard fabric for --shard-executor processes: shard "
        "columns live in shared-memory segments and a persistent worker "
        "pool receives (segment, offset, length, dtype) handles instead of "
        "pickled shard payloads; results are bit-identical",
    )
    run_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker count for parallel shard executors",
    )
    run_parser.add_argument(
        "--streaming-shards", type=int, default=0,
        help="partitioned streaming: route the stream to this many vertex "
        "shards and dispatch micro-batches through rolling shared-memory "
        "segments into resident worker engines (0: single consumer); "
        "--shard-by selects the routing (hash, or mincut frozen from a "
        "warm-up prefix); results are bit-identical to eager sharded runs",
    )
    run_parser.add_argument(
        "--streaming-ring", type=int, default=4,
        help="reusable shared-memory segments per shard; a shard with every "
        "slot in flight backpressures the producer (default 4)",
    )
    run_parser.add_argument(
        "--streaming-warmup", type=int, default=None,
        help="warm-up prefix length used to freeze a min-cut membership for "
        "source-fed runs with --shard-by mincut (default 4096)",
    )
    run_parser.add_argument(
        "--max-task-retries", type=int, default=1,
        help="worker respawns per shard before the shard is quarantined "
        "(shared-memory and partitioned-streaming runs; 0 disables "
        "self-healing, default 1)",
    )
    run_parser.add_argument(
        "--retry-backoff", type=float, default=0.05,
        help="base seconds of the exponential backoff between a worker "
        "crash and the shard's re-dispatch (default 0.05)",
    )
    run_parser.add_argument(
        "--degradation", choices=("auto", "off"), default="auto",
        help="'auto' falls back to slower executors when the shared-memory "
        "fabric cannot run (segment allocation failure, respawn storm): "
        "pickled processes, then serial; 'off' raises instead",
    )
    run_parser.add_argument(
        "--on-bad-row", choices=("raise", "skip"), default="raise",
        help="malformed rows in a tailed CSV (--follow): 'raise' aborts the "
        "run (default), 'skip' drops the row, counts it and keeps tailing",
    )

    experiment_parser = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's tables or figures"
    )
    experiment_parser.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment_parser.add_argument(
        "--scale", type=float, default=1.0, help="dataset scale factor"
    )

    subparsers.add_parser("datasets", help="list the built-in dataset presets")
    subparsers.add_parser("policies", help="list the registered selection policies")
    return parser


def _policy_options(args: argparse.Namespace) -> dict:
    """Map CLI flags onto the structural options of the named policy."""
    name = args.policy
    if name == "proportional-budget":
        return {"capacity": args.budget}
    if name == "proportional-windowed":
        return {"window": args.window}
    if name == "proportional-selective":
        return {"k": args.top}
    if name == "proportional-grouped":
        return {"num_groups": args.top}
    return {}


def _command_run(args: argparse.Namespace) -> int:
    store_options = {}
    if args.hot_capacity is not None:
        store_options["hot_capacity"] = args.hot_capacity
    if args.hot_bytes is not None:
        store_options["hot_bytes"] = args.hot_bytes
    if args.spill_batch is not None:
        store_options["spill_batch"] = args.spill_batch
    config = RunConfig(
        dataset=args.dataset,
        scale=args.scale,
        columnar=args.columnar,
        kernel=args.kernel,
        stream=args.stream,
        follow=args.follow,
        micro_batch=args.micro_batch,
        max_in_flight=args.max_in_flight,
        flush_interval=args.flush_interval,
        idle_timeout=args.idle_timeout,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume_from=args.resume_from,
        policy=args.policy,
        policy_options=_policy_options(args),
        store=args.store,
        store_options=store_options,
        limit=args.limit,
        batch_size=args.batch_size,
        shards=args.shards,
        shard_by=args.shard_by,
        shard_strategy=args.shard_strategy,
        shard_imbalance=args.shard_imbalance,
        partition_seed=args.partition_seed,
        shard_executor=args.shard_executor,
        shared_memory=args.shared_memory,
        max_workers=args.workers,
        streaming_shards=args.streaming_shards,
        streaming_ring=args.streaming_ring,
        streaming_warmup=args.streaming_warmup,
        max_task_retries=args.max_task_retries,
        retry_backoff=args.retry_backoff,
        degradation=args.degradation,
        on_bad_row=args.on_bad_row,
    )
    result = Runner(config).run()
    statistics = result.statistics

    # result.policy_name reports what actually ran — for --resume-from that
    # is the checkpoint's restored policy, not the --policy flag.
    ran_policy = result.policy_name
    print(
        f"processed {statistics.interactions} interactions of "
        f"{result.dataset_name!r} with policy {ran_policy!r} "
        f"in {statistics.elapsed_seconds:.3f}s"
    )
    if args.resume_from is not None and ran_policy != args.policy:
        print(
            f"note: resumed from {args.resume_from!r}, which restores the "
            f"checkpointed policy {ran_policy!r} (--policy {args.policy!r} "
            f"does not apply)"
        )
    if result.scheduler_stats is not None and config.uses_scheduler:
        sched = result.scheduler_stats
        flushes = ", ".join(
            f"{trigger}={count}"
            for trigger, count in sched["flushes"].items()
            if count
        ) or "none"
        print(
            f"micro-batched: {sched['batches']} batches "
            f"(micro-batch {sched['micro_batch']}, "
            f"peak in-flight {sched['peak_in_flight']}/{sched['max_in_flight']}, "
            f"flushes: {flushes})"
        )
    if result.columnar_stats is not None:
        col = result.columnar_stats
        print(
            f"columnar {col['mode']}: {col['interned_vertices']} interned "
            f"vertices, {format_bytes(col['block_bytes'])} of column arrays"
            + ("" if col["kernel"] else " (adapter: no array kernel)")
        )
    if result.kernel_stats is not None:
        kern = result.kernel_stats
        line = (
            f"kernel {kern['mode']}: backend {kern['backend']}, "
            f"{kern['chunks']} chunk{'s' if kern['chunks'] != 1 else ''}"
        )
        if kern["compile_seconds"]:
            line += f", compile {kern['compile_seconds']:.3f}s (outside timed region)"
        print(line)
    spec = config.store_spec
    if spec is not None:
        entries = sum(stats.entries for stats in result.store_stats.values())
        line = f"store backend {spec.backend!r}: {entries} entries"
        if result.spilled_bytes:
            spill_reads = sum(
                stats.spill_reads for stats in result.store_stats.values()
            )
            line += (
                f", spilled {format_bytes(result.spilled_bytes)} to disk "
                f"({spill_reads} faults back in)"
            )
        print(line)
    if result.sharded and result.partition is not None:
        shard_sizes = ", ".join(
            str(run.statistics.interactions) for run in result.shard_runs
        )
        exactness = "exact" if result.partition.exact else "approximate"
        pruned = (
            f", {result.partition.pruned_shards} empty pruned"
            if result.partition.pruned_shards
            else ""
        )
        print(
            f"sharded over {len(result.shard_runs)} {result.partition.mode} "
            f"shards ({exactness}; per-shard interactions: {shard_sizes}"
            f"{pruned})"
        )
        quality = result.partition_stats
        if quality is not None:
            straggler = result.straggler_ratio
            print(
                f"partition quality: {quality['cut_edges']} cut edges, "
                f"cut weight {quality['cut_weight']}, imbalance "
                f"{quality['imbalance']:.3f}, built in "
                f"{quality['build_seconds']:.3f}s (outside the timed region)"
                + (
                    f", straggler ratio {straggler:.2f}"
                    if straggler is not None
                    else ""
                )
            )
    if result.stream_stats is not None:
        stream = result.stream_stats
        fabric = stream["fabric"]
        stalls = fabric["backpressure_stalls"]
        straggler = result.straggler_ratio
        print(
            f"partitioned streaming ({stream['routing']} routing): "
            f"{stream['shards']} shards x ring {fabric['ring']}, "
            f"{fabric['batches']} micro-batches, "
            f"{fabric['segment_reuses']} segment reuses, "
            f"{stalls} backpressure stall{'s' if stalls != 1 else ''}"
            + (f", {stream['checkpoints']} checkpoints" if stream["checkpoints"] else "")
            + (f", straggler ratio {straggler:.2f}" if straggler is not None else "")
        )
    if result.shm_stats is not None:
        fabric = result.shm_stats
        print(
            f"shared-memory fabric ({fabric['backend']}): "
            f"{fabric['workers']} persistent workers, "
            f"{format_bytes(fabric['segment_bytes'])} of shard columns in "
            f"segments, {format_bytes(fabric['dispatch_bytes'])} dispatched "
            f"across the fork boundary"
            + (
                f", {format_bytes(fabric['state_bytes'])} of state adopted "
                f"zero-copy"
                if fabric["state_bytes"]
                else ""
            )
        )
    if result.fault_stats is not None:
        faults = result.fault_stats
        parts = []
        if faults.get("respawns"):
            parts.append(f"{faults['respawns']} worker respawn(s)")
        if faults.get("retries"):
            parts.append(f"{faults['retries']} task retr{'y' if faults['retries'] == 1 else 'ies'}")
        if faults.get("replayed_batches"):
            parts.append(f"{faults['replayed_batches']} batches replayed")
        if faults.get("recovery_seconds"):
            parts.append(f"recovery {faults['recovery_seconds']:.3f}s")
        for rung in faults.get("degradations", ()):
            parts.append(f"degraded {rung['from']} -> {rung['to']} ({rung['reason']})")
        if faults.get("bad_rows"):
            parts.append(f"{faults['bad_rows']} malformed row(s) skipped")
        if parts:
            print("self-healing: " + ", ".join(parts))
    rows = []
    for vertex, total in result.top_buffers(args.top):
        origins = result.origins(vertex)
        top_origins = ", ".join(
            f"{origin!r}:{quantity:.3g}" for origin, quantity in origins.top(3)
        )
        rows.append(
            {
                "vertex": vertex,
                "buffered_quantity": total,
                "distinct_origins": len(origins),
                "top_origins": top_origins or "(no provenance tracked)",
            }
        )
    print(format_table(rows, title=f"top {args.top} buffers"))
    if args.json:
        document = result.to_json()
        if args.json == "-":
            print(document)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(document + "\n")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    factory = EXPERIMENTS[args.name]
    result = factory(scale=args.scale)
    print(result.to_text())
    return 0


def _command_datasets(_args: argparse.Namespace) -> int:
    rows = []
    for name in available_presets():
        network_spec = load_preset(name, scale=0.02)  # tiny sample just for a sanity row
        rows.append(
            {
                "preset": name,
                "sample_vertices": network_spec.num_vertices,
                "sample_interactions": network_spec.num_interactions,
            }
        )
    print(format_table(rows, title="built-in dataset presets (tiny samples)"))
    return 0


def _command_policies(_args: argparse.Namespace) -> int:
    for name in available_policies():
        print(name)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _command_run,
        "experiment": _command_experiment,
        "datasets": _command_datasets,
        "policies": _command_policies,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
