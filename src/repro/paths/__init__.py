"""How-provenance: transfer-path tracking and queries (Section 6)."""

from repro.paths.tracker import PathProvenance, PathRecord, PathStatistics

__all__ = ["PathProvenance", "PathRecord", "PathStatistics"]
