"""Streaming ingestion: interaction sources and the micro-batch scheduler.

The paper's policies consume a *time-ordered stream* of interactions; this
package decouples **where that stream comes from** (the
:class:`InteractionSource` backends) from **how it is fed to a policy**
(the :class:`MicroBatchScheduler`, which flushes micro-batches by size or
time under a bounded in-flight queue):

* :class:`SequenceSource` — lists, generators, streamed CSV readers (the
  eager datasets the repository always handled);
* :class:`CsvTailSource` — follow a growing CSV file, ``tail -f`` style,
  with an idle-timeout termination guard;
* :class:`GeneratorSource` — rate-limited synthetic/replay feed (a live
  feed stand-in with no network dependency);
* :class:`MergeSource` — k-way time-ordered merge of sources, stable on
  timestamp ties and stalling (not misordering) on quiet live inputs.

Every execution path — eager, sharded and streaming — drives policies
through the scheduler (see :meth:`repro.core.engine.ProvenanceEngine.run`),
and a scheduled run is bit-identical to an eager run over the same
interaction sequence for every policy and store backend.
"""

from repro.sources.base import InteractionSource
from repro.sources.csv_tail import CsvTailSource
from repro.sources.generator import GeneratorSource
from repro.sources.merge import MergeSource
from repro.sources.scheduler import (
    DEFAULT_MAX_IN_FLIGHT_FACTOR,
    MicroBatchScheduler,
    PartitionedScheduler,
    ShardFlush,
)
from repro.sources.sequence import SequenceSource

__all__ = [
    "InteractionSource",
    "SequenceSource",
    "CsvTailSource",
    "GeneratorSource",
    "MergeSource",
    "MicroBatchScheduler",
    "PartitionedScheduler",
    "ShardFlush",
    "DEFAULT_MAX_IN_FLIGHT_FACTOR",
]
