"""Micro-batch scheduling with bounded in-flight queueing (backpressure).

The :class:`MicroBatchScheduler` sits between an
:class:`~repro.sources.base.InteractionSource` and the engine's
``process_many`` fast paths.  It accumulates polled interactions in a
bounded pending queue and flushes a micro-batch when the first of these
triggers fires:

* **size** — ``micro_batch`` interactions are pending (the throughput
  trigger; this is the only trigger eager sources ever need);
* **wall time** — ``flush_interval`` seconds have passed since the oldest
  pending interaction arrived (bounds latency on slow feeds);
* **event time** — the pending batch spans more than ``event_time_window``
  stream-time units (bounds how much stream time one batch may cover);
* **end of stream** — the source is exhausted: whatever is pending flushes.

Backpressure is structural: the scheduler never holds more than
``max_in_flight`` interactions and never polls the source for more than the
remaining room, so a fast producer cannot balloon memory between the source
and the policy — the source stays ahead by at most ``max_in_flight``
interactions, exactly like a bounded consumer queue.

:meth:`next_batch` blocks (sleeping ``poll_interval`` between polls) until
it can return a batch or the stream ends, so drive loops stay simple:

    while (batch := scheduler.next_batch()) is not None:
        policy.process_many(batch)

Equivalence: the scheduler only *chunks* the stream — it never reorders,
drops or duplicates — so a scheduled run is bit-identical to an eager run
over the same interaction sequence for every policy and store backend (the
tests under ``tests/sources/`` enforce this).
"""

from __future__ import annotations

import time as _time
from collections import deque
from typing import Callable, Deque, Dict, List, Mapping, Optional, Tuple

from repro.core.blocks import InteractionBlock, VertexInterner
from repro.core.interaction import Interaction, Vertex
from repro.exceptions import RunConfigurationError
from repro.sources.base import InteractionSource

__all__ = [
    "MicroBatchScheduler",
    "PartitionedScheduler",
    "ShardFlush",
    "DEFAULT_MAX_IN_FLIGHT_FACTOR",
]

#: Default bound on pending interactions, as a multiple of ``micro_batch``.
DEFAULT_MAX_IN_FLIGHT_FACTOR = 4


class MicroBatchScheduler:
    """Flush-by-size/time micro-batching over an interaction source."""

    def __init__(
        self,
        source: InteractionSource,
        *,
        micro_batch: int = 256,
        max_in_flight: Optional[int] = None,
        flush_interval: Optional[float] = None,
        event_time_window: Optional[float] = None,
        max_pull: Optional[int] = None,
        poll_interval: float = 0.01,
        clock: Callable[[], float] = _time.monotonic,
        sleep: Callable[[float], None] = _time.sleep,
    ) -> None:
        if micro_batch < 1:
            raise RunConfigurationError(
                f"micro_batch must be >= 1, got {micro_batch!r}"
            )
        if max_in_flight is None:
            max_in_flight = micro_batch * DEFAULT_MAX_IN_FLIGHT_FACTOR
        if max_in_flight < micro_batch:
            raise RunConfigurationError(
                f"max_in_flight ({max_in_flight}) must be >= micro_batch "
                f"({micro_batch}) or no full batch could ever accumulate"
            )
        if flush_interval is not None and flush_interval <= 0:
            raise RunConfigurationError(
                f"flush_interval must be positive, got {flush_interval!r}"
            )
        if event_time_window is not None and event_time_window <= 0:
            raise RunConfigurationError(
                f"event_time_window must be positive, got {event_time_window!r}"
            )
        if max_pull is not None and max_pull < 0:
            raise RunConfigurationError(
                f"max_pull must be >= 0, got {max_pull!r}"
            )
        #: Hard bound on total interactions consumed from the source.  A
        #: run with ``limit=`` sets this so read-ahead never drains a
        #: caller's source past what the run will actually process.
        self.max_pull = max_pull
        self._pulled = 0
        self.source = source
        self.micro_batch = micro_batch
        self.max_in_flight = max_in_flight
        self.flush_interval = flush_interval
        self.event_time_window = event_time_window
        self.poll_interval = poll_interval
        self._clock = clock
        self._sleep = sleep
        self._pending: Deque[Interaction] = deque()
        self._oldest_arrival: Optional[float] = None
        #: flush counters by trigger, for RunResult/bench reporting.
        self._flushes: Dict[str, int] = {"size": 0, "timer": 0, "window": 0, "final": 0}
        self._batches = 0
        self._interactions = 0
        self._peak_pending = 0
        self._waits = 0

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def _pull(self) -> int:
        """Poll the source for up to the backpressure room; returns count.

        Always asks for the full remaining room, not just the next batch's
        shortfall: a bursty source runs ahead of the policy by up to
        ``max_in_flight`` interactions (bounded read-ahead), which is what
        the knob buys — and all it allows.
        """
        room = self.max_in_flight - len(self._pending)
        if self.max_pull is not None:
            room = min(room, self.max_pull - self._pulled)
        if room <= 0 or self.source.exhausted:
            return 0
        got = self.source.poll(room)
        if got:
            self._pulled += len(got)
            if self._oldest_arrival is None:
                self._oldest_arrival = self._clock()
            self._pending.extend(got)
            if len(self._pending) > self._peak_pending:
                self._peak_pending = len(self._pending)
        return len(got)

    def _input_done(self) -> bool:
        """No more interactions will ever enter the pending queue."""
        if self.source.exhausted:
            return True
        return self.max_pull is not None and self._pulled >= self.max_pull

    def _flush(self, size: int, trigger: str) -> List[Interaction]:
        pending = self._pending
        size = min(size, len(pending))
        batch = [pending.popleft() for _ in range(size)]
        if not pending:
            # Items left pending keep the original arrival stamp: they are
            # no younger than the flushed ones, so the flush_interval
            # latency bound holds across clipped (partial) flushes.
            self._oldest_arrival = None
        self._flushes[trigger] += 1
        self._batches += 1
        self._interactions += len(batch)
        return batch

    def _event_span_exceeded(self) -> bool:
        window = self.event_time_window
        if window is None or len(self._pending) < 2:
            return False
        return self._pending[-1].time - self._pending[0].time > window

    def _window_prefix(self, limit: int) -> int:
        """How many pending items fit inside one event-time window.

        Counts the prefix whose timestamps lie within ``event_time_window``
        of the oldest pending item (at least one, so progress is always
        made), capped at ``limit``.
        """
        pending = self._pending
        horizon = pending[0].time + self.event_time_window
        count = 0
        for interaction in pending:
            if count >= limit or interaction.time > horizon:
                break
            count += 1
        return max(count, 1)

    def next_batch(self, max_items: Optional[int] = None) -> Optional[List[Interaction]]:
        """The next micro-batch, or ``None`` once the stream is finished.

        ``max_items`` caps this batch below ``micro_batch`` — the engine
        uses it to clip batches at sampling and checkpoint boundaries so a
        scheduled run samples at exactly the positions of an eager run.
        Blocks (sleeping ``poll_interval`` between source polls) while a
        live source has nothing to hand out and no flush trigger has fired.
        """
        target = self.micro_batch if max_items is None else min(max_items, self.micro_batch)
        if target < 1:
            raise RunConfigurationError(f"max_items must be >= 1, got {max_items!r}")
        windowed = self.event_time_window is not None
        if not self._pending and not windowed and self.source.eager:
            # Poll-through fast path: with nothing pending and no event-time
            # windowing, an eager source that can fill the batch right now
            # hands it to the policy directly — no per-item round-trip
            # through the pending deque.  Every batched network run takes
            # this path on almost every batch; partial polls fall back to
            # the buffered loop below.  Live sources never take it: for
            # them the read-ahead buffering is the backpressure contract.
            room = target
            if self.max_pull is not None:
                room = min(room, self.max_pull - self._pulled)
            if room == target and not self.source.exhausted:
                batch = self.source.poll(target)
                if len(batch) == target:
                    self._pulled += target
                    self._flushes["size"] += 1
                    self._batches += 1
                    self._interactions += target
                    return batch
                if batch:
                    self._pulled += len(batch)
                    self._oldest_arrival = self._clock()
                    self._pending.extend(batch)
                    if len(self._pending) > self._peak_pending:
                        self._peak_pending = len(self._pending)
        while True:
            if len(self._pending) < target:
                self._pull()
            if len(self._pending) >= target:
                if windowed:
                    prefix = self._window_prefix(target)
                    if prefix < target:
                        return self._flush(prefix, "window")
                return self._flush(target, "size")
            if self._event_span_exceeded():
                return self._flush(self._window_prefix(target), "window")
            if self._input_done():
                if not self._pending:
                    return None
                if windowed:
                    prefix = self._window_prefix(target)
                    if prefix < min(target, len(self._pending)):
                        return self._flush(prefix, "window")
                return self._flush(target, "final")
            if (
                self.flush_interval is not None
                and self._pending
                and self._clock() - self._oldest_arrival >= self.flush_interval
            ):
                return self._flush(target, "timer")
            # Live source, nothing flushable yet: wait a poll tick.
            self._waits += 1
            self._sleep(self.poll_interval)

    def next_block(
        self,
        max_items: Optional[int] = None,
        *,
        interner: VertexInterner,
    ) -> Optional[InteractionBlock]:
        """The next micro-batch as a columnar block, or ``None`` at the end.

        Same flush semantics as :meth:`next_batch`; the flushed objects are
        columnarised against ``interner`` (typically one table per run), so
        array-kernel policies can consume live streams.
        """
        batch = self.next_batch(max_items)
        if batch is None:
            return None
        return InteractionBlock.from_interactions(batch, interner)

    def __iter__(self):
        while True:
            batch = self.next_batch()
            if batch is None:
                return
            yield batch

    # ------------------------------------------------------------------
    # accounting / lifecycle
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Interactions currently buffered between source and policy."""
        return len(self._pending)

    @property
    def pulled(self) -> int:
        """Total interactions consumed from the source so far."""
        return self._pulled

    def stats(self) -> Dict[str, object]:
        """Scheduler accounting for run reports and the bench record."""
        return {
            "micro_batch": self.micro_batch,
            "max_in_flight": self.max_in_flight,
            "batches": self._batches,
            "interactions": self._interactions,
            "peak_in_flight": self._peak_pending,
            "waits": self._waits,
            "flushes": dict(self._flushes),
            "watermark": self.source.watermark,
            "bad_rows": getattr(self.source, "bad_rows", 0),
        }

    def close(self) -> None:
        self._pending.clear()
        self.source.close()


class ShardFlush:
    """One flushed micro-batch, addressed to a shard.

    A tiny record rather than a dataclass: flushes are on the partitioned
    hot path and ``__slots__`` keeps them allocation-cheap.
    """

    __slots__ = ("shard", "batch", "trigger")

    def __init__(self, shard: int, batch: List[Interaction], trigger: str) -> None:
        self.shard = shard
        self.batch = batch
        self.trigger = trigger

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardFlush(shard={self.shard}, n={len(self.batch)}, {self.trigger!r})"


class PartitionedScheduler:
    """Micro-batch scheduling fanned out over vertex shards.

    The partitioned sibling of :class:`MicroBatchScheduler`: interactions
    are polled from one source, routed to their shard by *source vertex*
    (the same routing rule as :func:`repro.runtime.partition.partition_network`),
    and buffered in one pending queue per shard.  Each shard flushes
    independently under the same triggers as the single-consumer scheduler
    — size, wall time, event-time span, end of stream — so a slow shard
    never delays a busy one, while the **global** ``max_in_flight`` bound
    keeps total read-ahead identical to the unpartitioned scheduler.

    ``membership`` is either a mapping ``{vertex: shard}`` (a frozen
    partition plan assignment) or a callable ``vertex -> shard``; vertices
    absent from a mapping fall back to the stable hash, so live streams may
    introduce vertices the plan never saw.  Routing is memoised per vertex
    — after first sight a vertex costs one dict hit, the object-stream
    analogue of the vectorised ``stable_shard_indices`` fancy-index.

    Equivalence: per shard, the flushed batches concatenate to exactly the
    subsequence of the stream whose source vertices map to that shard, in
    stream order — the partitioned run processes what an eager sharded run
    (:func:`repro.runtime.partition.partition_network`) would hand the same
    shard.
    """

    def __init__(
        self,
        source: InteractionSource,
        num_shards: int,
        membership,
        *,
        micro_batch: int = 256,
        max_in_flight: Optional[int] = None,
        flush_interval: Optional[float] = None,
        event_time_window: Optional[float] = None,
        max_pull: Optional[int] = None,
        poll_interval: float = 0.01,
        clock: Callable[[], float] = _time.monotonic,
        sleep: Callable[[float], None] = _time.sleep,
    ) -> None:
        if num_shards < 1:
            raise RunConfigurationError(f"num_shards must be >= 1, got {num_shards!r}")
        if micro_batch < 1:
            raise RunConfigurationError(f"micro_batch must be >= 1, got {micro_batch!r}")
        if max_in_flight is None:
            max_in_flight = micro_batch * DEFAULT_MAX_IN_FLIGHT_FACTOR * num_shards
        if max_in_flight < micro_batch:
            raise RunConfigurationError(
                f"max_in_flight ({max_in_flight}) must be >= micro_batch "
                f"({micro_batch}) or no full batch could ever accumulate"
            )
        if flush_interval is not None and flush_interval <= 0:
            raise RunConfigurationError(
                f"flush_interval must be positive, got {flush_interval!r}"
            )
        if event_time_window is not None and event_time_window <= 0:
            raise RunConfigurationError(
                f"event_time_window must be positive, got {event_time_window!r}"
            )
        if max_pull is not None and max_pull < 0:
            raise RunConfigurationError(f"max_pull must be >= 0, got {max_pull!r}")
        from repro.runtime.partition import stable_shard_index

        if callable(membership):
            fallback = membership
        elif isinstance(membership, Mapping):
            table = membership

            def fallback(vertex: Vertex, _table=table) -> int:
                shard = _table.get(vertex)
                if shard is None:
                    shard = stable_shard_index(vertex, num_shards)
                return shard

        else:
            raise RunConfigurationError(
                "membership must be a mapping {vertex: shard} or a callable "
                f"vertex -> shard, got {type(membership).__name__}"
            )
        self._fallback = fallback
        #: Memoised vertex -> shard routing table (grows with the stream).
        self._route_cache: Dict[Vertex, int] = (
            dict(membership) if isinstance(membership, Mapping) else {}
        )
        self.max_pull = max_pull
        self._pulled = 0
        self.source = source
        self.num_shards = num_shards
        self.micro_batch = micro_batch
        self.max_in_flight = max_in_flight
        self.flush_interval = flush_interval
        self.event_time_window = event_time_window
        self.poll_interval = poll_interval
        self._clock = clock
        self._sleep = sleep
        self._pending: List[Deque[Interaction]] = [deque() for _ in range(num_shards)]
        self._total_pending = 0
        self._oldest_arrival: List[Optional[float]] = [None] * num_shards
        self._flushes: Dict[str, int] = {
            "size": 0, "timer": 0, "window": 0, "final": 0, "barrier": 0,
        }
        self._batches = 0
        self._interactions = 0
        self._shard_batches = [0] * num_shards
        self._shard_interactions = [0] * num_shards
        self._peak_pending = 0
        self._waits = 0

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, vertex: Vertex) -> int:
        """The shard a given source vertex is assigned to."""
        cache = self._route_cache
        shard = cache.get(vertex)
        if shard is None:
            shard = int(self._fallback(vertex))
            if not 0 <= shard < self.num_shards:
                raise RunConfigurationError(
                    f"membership routed {vertex!r} to shard {shard}, outside "
                    f"[0, {self.num_shards})"
                )
            cache[vertex] = shard
        return shard

    def prefeed(self, interactions: List[Interaction]) -> None:
        """Route already-consumed interactions (a warm-up prefix) first.

        A frozen min-cut membership is computed from a prefix the caller has
        already pulled off the source; those interactions still have to be
        processed, ahead of anything polled later.  They enter the pending
        queues directly (they are already consumed — the in-flight bound
        governs *read-ahead*, not replay of a prefix the caller holds).
        """
        now = self._clock()
        for interaction in interactions:
            shard = self.route(interaction.source)
            if self._oldest_arrival[shard] is None:
                self._oldest_arrival[shard] = now
            self._pending[shard].append(interaction)
        self._total_pending += len(interactions)
        self._pulled += len(interactions)
        if self._total_pending > self._peak_pending:
            self._peak_pending = self._total_pending

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def _pull(self) -> int:
        room = self.max_in_flight - self._total_pending
        if self.max_pull is not None:
            room = min(room, self.max_pull - self._pulled)
        if room <= 0 or self.source.exhausted:
            return 0
        got = self.source.poll(room)
        if got:
            self._pulled += len(got)
            now = self._clock()
            route = self.route
            pending = self._pending
            oldest = self._oldest_arrival
            for interaction in got:
                shard = route(interaction.source)
                if oldest[shard] is None:
                    oldest[shard] = now
                pending[shard].append(interaction)
            self._total_pending += len(got)
            if self._total_pending > self._peak_pending:
                self._peak_pending = self._total_pending
        return len(got)

    def _input_done(self) -> bool:
        if self.source.exhausted:
            return True
        return self.max_pull is not None and self._pulled >= self.max_pull

    def _flush(self, shard: int, size: int, trigger: str) -> ShardFlush:
        pending = self._pending[shard]
        size = min(size, len(pending))
        batch = [pending.popleft() for _ in range(size)]
        self._total_pending -= len(batch)
        if not pending:
            self._oldest_arrival[shard] = None
        self._flushes[trigger] += 1
        self._batches += 1
        self._interactions += len(batch)
        self._shard_batches[shard] += 1
        self._shard_interactions[shard] += len(batch)
        return ShardFlush(shard, batch, trigger)

    def _window_prefix(self, shard: int, limit: int) -> int:
        pending = self._pending[shard]
        horizon = pending[0].time + self.event_time_window
        count = 0
        for interaction in pending:
            if count >= limit or interaction.time > horizon:
                break
            count += 1
        return max(count, 1)

    def _ready_flushes(self) -> List[ShardFlush]:
        """All flushes whose size/window trigger fires right now."""
        windowed = self.event_time_window is not None
        target = self.micro_batch
        ready: List[ShardFlush] = []
        for shard in range(self.num_shards):
            pending = self._pending[shard]
            while len(pending) >= target:
                if windowed:
                    prefix = self._window_prefix(shard, target)
                    if prefix < target:
                        ready.append(self._flush(shard, prefix, "window"))
                        continue
                ready.append(self._flush(shard, target, "size"))
            if (
                windowed
                and len(pending) >= 2
                and pending[-1].time - pending[0].time > self.event_time_window
            ):
                ready.append(self._flush(shard, self._window_prefix(shard, target), "window"))
        return ready

    def _drain_flushes(self, trigger: str) -> List[ShardFlush]:
        """Flush every pending queue down to empty (end of stream/barrier)."""
        drained: List[ShardFlush] = []
        for shard in range(self.num_shards):
            while self._pending[shard]:
                drained.append(self._flush(shard, self.micro_batch, trigger))
        return drained

    def _timer_flushes(self) -> List[ShardFlush]:
        if self.flush_interval is None:
            return []
        now = self._clock()
        fired: List[ShardFlush] = []
        for shard in range(self.num_shards):
            oldest = self._oldest_arrival[shard]
            if (
                oldest is not None
                and self._pending[shard]
                and now - oldest >= self.flush_interval
            ):
                fired.append(self._flush(shard, self.micro_batch, "timer"))
        return fired

    def next_flushes(self) -> Optional[List[ShardFlush]]:
        """The next group of per-shard micro-batches, or ``None`` at the end.

        Each call returns at least one :class:`ShardFlush` (possibly several,
        across shards or even for one busy shard) or ``None`` once the
        stream is finished and every queue is drained.  Within one shard the
        flushed batches preserve stream order; the caller dispatches them in
        list order.  When ``max_pull`` caps consumption before the source
        exhausts (a checkpoint barrier), the drain is tagged ``"barrier"``
        and the scheduler can keep going after the cap is raised.
        """
        while True:
            ready = self._ready_flushes()
            if ready:
                return ready
            if self._input_done():
                if self._total_pending:
                    trigger = "final" if self.source.exhausted else "barrier"
                    return self._drain_flushes(trigger)
                if self.source.exhausted:
                    return None
                if self.max_pull is not None and self._pulled >= self.max_pull:
                    return None  # barrier reached; caller raises max_pull
            if self._pull():
                continue
            fired = self._timer_flushes()
            if fired:
                return fired
            if self._input_done():
                continue  # drain on the next iteration
            self._waits += 1
            self._sleep(self.poll_interval)

    # ------------------------------------------------------------------
    # accounting / lifecycle
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Interactions currently buffered across all shard queues."""
        return self._total_pending

    @property
    def pulled(self) -> int:
        return self._pulled

    def stats(self) -> Dict[str, object]:
        """Scheduler accounting for run reports and the bench record."""
        return {
            "shards": self.num_shards,
            "micro_batch": self.micro_batch,
            "max_in_flight": self.max_in_flight,
            "batches": self._batches,
            "interactions": self._interactions,
            "peak_in_flight": self._peak_pending,
            "waits": self._waits,
            "flushes": dict(self._flushes),
            "watermark": self.source.watermark,
            "bad_rows": getattr(self.source, "bad_rows", 0),
            "per_shard": [
                {
                    "shard": shard,
                    "batches": self._shard_batches[shard],
                    "interactions": self._shard_interactions[shard],
                }
                for shard in range(self.num_shards)
            ],
        }

    def close(self) -> None:
        for pending in self._pending:
            pending.clear()
        self._total_pending = 0
        self.source.close()
