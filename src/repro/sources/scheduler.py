"""Micro-batch scheduling with bounded in-flight queueing (backpressure).

The :class:`MicroBatchScheduler` sits between an
:class:`~repro.sources.base.InteractionSource` and the engine's
``process_many`` fast paths.  It accumulates polled interactions in a
bounded pending queue and flushes a micro-batch when the first of these
triggers fires:

* **size** — ``micro_batch`` interactions are pending (the throughput
  trigger; this is the only trigger eager sources ever need);
* **wall time** — ``flush_interval`` seconds have passed since the oldest
  pending interaction arrived (bounds latency on slow feeds);
* **event time** — the pending batch spans more than ``event_time_window``
  stream-time units (bounds how much stream time one batch may cover);
* **end of stream** — the source is exhausted: whatever is pending flushes.

Backpressure is structural: the scheduler never holds more than
``max_in_flight`` interactions and never polls the source for more than the
remaining room, so a fast producer cannot balloon memory between the source
and the policy — the source stays ahead by at most ``max_in_flight``
interactions, exactly like a bounded consumer queue.

:meth:`next_batch` blocks (sleeping ``poll_interval`` between polls) until
it can return a batch or the stream ends, so drive loops stay simple:

    while (batch := scheduler.next_batch()) is not None:
        policy.process_many(batch)

Equivalence: the scheduler only *chunks* the stream — it never reorders,
drops or duplicates — so a scheduled run is bit-identical to an eager run
over the same interaction sequence for every policy and store backend (the
tests under ``tests/sources/`` enforce this).
"""

from __future__ import annotations

import time as _time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.core.blocks import InteractionBlock, VertexInterner
from repro.core.interaction import Interaction
from repro.exceptions import RunConfigurationError
from repro.sources.base import InteractionSource

__all__ = ["MicroBatchScheduler", "DEFAULT_MAX_IN_FLIGHT_FACTOR"]

#: Default bound on pending interactions, as a multiple of ``micro_batch``.
DEFAULT_MAX_IN_FLIGHT_FACTOR = 4


class MicroBatchScheduler:
    """Flush-by-size/time micro-batching over an interaction source."""

    def __init__(
        self,
        source: InteractionSource,
        *,
        micro_batch: int = 256,
        max_in_flight: Optional[int] = None,
        flush_interval: Optional[float] = None,
        event_time_window: Optional[float] = None,
        max_pull: Optional[int] = None,
        poll_interval: float = 0.01,
        clock: Callable[[], float] = _time.monotonic,
        sleep: Callable[[float], None] = _time.sleep,
    ) -> None:
        if micro_batch < 1:
            raise RunConfigurationError(
                f"micro_batch must be >= 1, got {micro_batch!r}"
            )
        if max_in_flight is None:
            max_in_flight = micro_batch * DEFAULT_MAX_IN_FLIGHT_FACTOR
        if max_in_flight < micro_batch:
            raise RunConfigurationError(
                f"max_in_flight ({max_in_flight}) must be >= micro_batch "
                f"({micro_batch}) or no full batch could ever accumulate"
            )
        if flush_interval is not None and flush_interval <= 0:
            raise RunConfigurationError(
                f"flush_interval must be positive, got {flush_interval!r}"
            )
        if event_time_window is not None and event_time_window <= 0:
            raise RunConfigurationError(
                f"event_time_window must be positive, got {event_time_window!r}"
            )
        if max_pull is not None and max_pull < 0:
            raise RunConfigurationError(
                f"max_pull must be >= 0, got {max_pull!r}"
            )
        #: Hard bound on total interactions consumed from the source.  A
        #: run with ``limit=`` sets this so read-ahead never drains a
        #: caller's source past what the run will actually process.
        self.max_pull = max_pull
        self._pulled = 0
        self.source = source
        self.micro_batch = micro_batch
        self.max_in_flight = max_in_flight
        self.flush_interval = flush_interval
        self.event_time_window = event_time_window
        self.poll_interval = poll_interval
        self._clock = clock
        self._sleep = sleep
        self._pending: Deque[Interaction] = deque()
        self._oldest_arrival: Optional[float] = None
        #: flush counters by trigger, for RunResult/bench reporting.
        self._flushes: Dict[str, int] = {"size": 0, "timer": 0, "window": 0, "final": 0}
        self._batches = 0
        self._interactions = 0
        self._peak_pending = 0
        self._waits = 0

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def _pull(self) -> int:
        """Poll the source for up to the backpressure room; returns count.

        Always asks for the full remaining room, not just the next batch's
        shortfall: a bursty source runs ahead of the policy by up to
        ``max_in_flight`` interactions (bounded read-ahead), which is what
        the knob buys — and all it allows.
        """
        room = self.max_in_flight - len(self._pending)
        if self.max_pull is not None:
            room = min(room, self.max_pull - self._pulled)
        if room <= 0 or self.source.exhausted:
            return 0
        got = self.source.poll(room)
        if got:
            self._pulled += len(got)
            if self._oldest_arrival is None:
                self._oldest_arrival = self._clock()
            self._pending.extend(got)
            if len(self._pending) > self._peak_pending:
                self._peak_pending = len(self._pending)
        return len(got)

    def _input_done(self) -> bool:
        """No more interactions will ever enter the pending queue."""
        if self.source.exhausted:
            return True
        return self.max_pull is not None and self._pulled >= self.max_pull

    def _flush(self, size: int, trigger: str) -> List[Interaction]:
        pending = self._pending
        size = min(size, len(pending))
        batch = [pending.popleft() for _ in range(size)]
        if not pending:
            # Items left pending keep the original arrival stamp: they are
            # no younger than the flushed ones, so the flush_interval
            # latency bound holds across clipped (partial) flushes.
            self._oldest_arrival = None
        self._flushes[trigger] += 1
        self._batches += 1
        self._interactions += len(batch)
        return batch

    def _event_span_exceeded(self) -> bool:
        window = self.event_time_window
        if window is None or len(self._pending) < 2:
            return False
        return self._pending[-1].time - self._pending[0].time > window

    def _window_prefix(self, limit: int) -> int:
        """How many pending items fit inside one event-time window.

        Counts the prefix whose timestamps lie within ``event_time_window``
        of the oldest pending item (at least one, so progress is always
        made), capped at ``limit``.
        """
        pending = self._pending
        horizon = pending[0].time + self.event_time_window
        count = 0
        for interaction in pending:
            if count >= limit or interaction.time > horizon:
                break
            count += 1
        return max(count, 1)

    def next_batch(self, max_items: Optional[int] = None) -> Optional[List[Interaction]]:
        """The next micro-batch, or ``None`` once the stream is finished.

        ``max_items`` caps this batch below ``micro_batch`` — the engine
        uses it to clip batches at sampling and checkpoint boundaries so a
        scheduled run samples at exactly the positions of an eager run.
        Blocks (sleeping ``poll_interval`` between source polls) while a
        live source has nothing to hand out and no flush trigger has fired.
        """
        target = self.micro_batch if max_items is None else min(max_items, self.micro_batch)
        if target < 1:
            raise RunConfigurationError(f"max_items must be >= 1, got {max_items!r}")
        windowed = self.event_time_window is not None
        if not self._pending and not windowed and self.source.eager:
            # Poll-through fast path: with nothing pending and no event-time
            # windowing, an eager source that can fill the batch right now
            # hands it to the policy directly — no per-item round-trip
            # through the pending deque.  Every batched network run takes
            # this path on almost every batch; partial polls fall back to
            # the buffered loop below.  Live sources never take it: for
            # them the read-ahead buffering is the backpressure contract.
            room = target
            if self.max_pull is not None:
                room = min(room, self.max_pull - self._pulled)
            if room == target and not self.source.exhausted:
                batch = self.source.poll(target)
                if len(batch) == target:
                    self._pulled += target
                    self._flushes["size"] += 1
                    self._batches += 1
                    self._interactions += target
                    return batch
                if batch:
                    self._pulled += len(batch)
                    self._oldest_arrival = self._clock()
                    self._pending.extend(batch)
                    if len(self._pending) > self._peak_pending:
                        self._peak_pending = len(self._pending)
        while True:
            if len(self._pending) < target:
                self._pull()
            if len(self._pending) >= target:
                if windowed:
                    prefix = self._window_prefix(target)
                    if prefix < target:
                        return self._flush(prefix, "window")
                return self._flush(target, "size")
            if self._event_span_exceeded():
                return self._flush(self._window_prefix(target), "window")
            if self._input_done():
                if not self._pending:
                    return None
                if windowed:
                    prefix = self._window_prefix(target)
                    if prefix < min(target, len(self._pending)):
                        return self._flush(prefix, "window")
                return self._flush(target, "final")
            if (
                self.flush_interval is not None
                and self._pending
                and self._clock() - self._oldest_arrival >= self.flush_interval
            ):
                return self._flush(target, "timer")
            # Live source, nothing flushable yet: wait a poll tick.
            self._waits += 1
            self._sleep(self.poll_interval)

    def next_block(
        self,
        max_items: Optional[int] = None,
        *,
        interner: VertexInterner,
    ) -> Optional[InteractionBlock]:
        """The next micro-batch as a columnar block, or ``None`` at the end.

        Same flush semantics as :meth:`next_batch`; the flushed objects are
        columnarised against ``interner`` (typically one table per run), so
        array-kernel policies can consume live streams.
        """
        batch = self.next_batch(max_items)
        if batch is None:
            return None
        return InteractionBlock.from_interactions(batch, interner)

    def __iter__(self):
        while True:
            batch = self.next_batch()
            if batch is None:
                return
            yield batch

    # ------------------------------------------------------------------
    # accounting / lifecycle
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Interactions currently buffered between source and policy."""
        return len(self._pending)

    @property
    def pulled(self) -> int:
        """Total interactions consumed from the source so far."""
        return self._pulled

    def stats(self) -> Dict[str, object]:
        """Scheduler accounting for run reports and the bench record."""
        return {
            "micro_batch": self.micro_batch,
            "max_in_flight": self.max_in_flight,
            "batches": self._batches,
            "interactions": self._interactions,
            "peak_in_flight": self._peak_pending,
            "waits": self._waits,
            "flushes": dict(self._flushes),
            "watermark": self.source.watermark,
        }

    def close(self) -> None:
        self._pending.clear()
        self.source.close()
