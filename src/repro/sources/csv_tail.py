"""``CsvTailSource``: follow a growing interaction CSV (``tail -f`` for runs).

A producer process appends ``source,destination,time,quantity`` rows to a
file; a provenance run polls the file and processes whatever has landed
since the previous poll.  This is the file-system stand-in for a message
queue: the same micro-batching, backpressure and checkpointing apply to a
real feed, only :meth:`poll` changes.

Robustness details:

* **Partial writes** — a row is only parsed once its terminating newline is
  on disk; a half-written tail line is buffered and completed on a later
  poll, so a reader never sees torn rows.
* **Termination guard** — with ``follow=True`` the source never exhausts on
  EOF by itself; ``idle_timeout`` bounds how long it keeps a run alive with
  no new data (the CI smoke run uses this so a stalled producer cannot hang
  the job).  ``follow=False`` reads exactly the rows present and exhausts.
* **Clean shutdown** — :meth:`close` (or exhausting) releases the handle.
"""

from __future__ import annotations

import csv
import time as _time
from collections import deque
from pathlib import Path
from typing import Callable, Deque, List, Optional, Tuple, Union

from repro.core.interaction import Interaction
from repro.datasets.io import is_header_row, parse_interaction_row
from repro.exceptions import DatasetError, RunConfigurationError
from repro.sources.base import InteractionSource

__all__ = ["CsvTailSource"]

#: Upper bound on remembered (emitted-count -> byte offset) pairs.  The ring
#: only needs to span the gap between two checkpoints; positions that fall
#: off the front simply make :meth:`CsvTailSource.resume_token` return
#: ``None`` for them, which degrades to the replay-and-skip resume path.
_MAX_RESUME_POSITIONS = 1 << 17


class CsvTailSource(InteractionSource):
    """Poll an interaction CSV file, optionally following appended rows.

    Parameters
    ----------
    path:
        The CSV file (header optional).  Must exist unless
        ``must_exist=False`` (valid only with ``follow=True``), in which
        case polls before creation return nothing until the file appears.
    vertex_type:
        Converter for the vertex columns (e.g. ``int``).
    follow:
        Keep polling after EOF for rows appended later (``tail -f``).
        Without it the source exhausts at the current end of file.
    idle_timeout:
        With ``follow=True``: exhaust after this many seconds without a new
        complete row.  ``None`` follows forever (stop via :meth:`close`).
    on_bad_row:
        ``"raise"`` (default) propagates the :class:`DatasetError` for a
        malformed row; ``"skip"`` drops the row, counts it in
        :attr:`bad_rows` and keeps tailing — the right policy for a live
        feed where one corrupt line must not kill an unbounded run.
    clock:
        Monotonic time function; injectable for deterministic tests.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        vertex_type: type = str,
        follow: bool = False,
        idle_timeout: Optional[float] = None,
        must_exist: bool = True,
        on_bad_row: str = "raise",
        clock: Callable[[], float] = _time.monotonic,
    ) -> None:
        super().__init__()
        if on_bad_row not in ("raise", "skip"):
            raise RunConfigurationError(
                f"on_bad_row must be 'raise' or 'skip', got {on_bad_row!r}"
            )
        self._path = Path(path)
        if must_exist and not self._path.exists():
            raise DatasetError(f"interaction file {self._path} does not exist")
        if not must_exist and not follow:
            # Without follow, a missing file would exhaust on the first poll
            # before the producer ever creates it — waiting for creation
            # only makes sense for a tailing source.
            raise RunConfigurationError(
                "must_exist=False needs follow=True: a non-following source "
                "cannot wait for the file to appear"
            )
        self._vertex_type = vertex_type
        self._on_bad_row = on_bad_row
        self.bad_rows = 0
        self._follow = bool(follow)
        self._idle_timeout = idle_timeout
        self._clock = clock
        self._handle = None
        self._partial = ""
        self._progressed = False
        self._line_number = 0
        self._done = False
        self._last_progress = clock()
        #: Recent (emitted count, byte offset, line number) triples, one per
        #: emitted interaction: the byte offset is the file position right
        #: after that interaction's terminating newline, i.e. where a
        #: resumed reader should start.
        self._positions: Deque[Tuple[int, int, int]] = deque()

    # ------------------------------------------------------------------
    # file plumbing
    # ------------------------------------------------------------------
    def _ensure_handle(self) -> bool:
        if self._handle is not None:
            return True
        if not self._path.exists():
            return False
        self._handle = self._path.open("r", newline="")
        return True

    def _read_complete_line(self) -> Optional[str]:
        """The next newline-terminated line, or ``None`` when not yet on disk."""
        chunk = self._handle.readline()
        if not chunk:
            return None
        if not chunk.endswith("\n"):
            # Torn tail line: stash it and retry once the writer finishes
            # it.  Partial bytes still count as producer progress — the
            # idle clock must not expire mid-write of a slow producer.
            self._partial += chunk
            self._progressed = True
            return None
        line = self._partial + chunk
        self._partial = ""
        self._line_number += 1
        return line

    def _parse_line(self, line: str) -> Optional[Interaction]:
        """One complete CSV line -> interaction (None: blank/header line).

        The single row-handling path for polled and end-of-stream-drained
        lines: blank/header skipping, parsing, time-order validation and
        watermark bookkeeping all live here.
        """
        row = next(csv.reader([line]), [])
        if not row or all(not cell.strip() for cell in row):
            return None
        if self._line_number == 1 and is_header_row(row):
            return None
        try:
            interaction = parse_interaction_row(
                row,
                vertex_type=self._vertex_type,
                path=self._path,
                line_number=self._line_number,
            )
        except DatasetError:
            if self._on_bad_row == "skip":
                self.bad_rows += 1
                return None
            raise
        self._check_order(interaction)
        self._emit([interaction])
        return interaction

    # ------------------------------------------------------------------
    # source interface
    # ------------------------------------------------------------------
    def poll(self, max_items: int) -> List[Interaction]:
        if self._done or max_items <= 0:
            return []
        batch: List[Interaction] = []
        if self._ensure_handle():
            while len(batch) < max_items:
                line = self._read_complete_line()
                if line is None:
                    break
                interaction = self._parse_line(line)
                if interaction is not None:
                    batch.append(interaction)
                    # A complete line was just consumed, so no partial bytes
                    # are buffered: tell() is exactly the resume position
                    # after this interaction.
                    positions = self._positions
                    positions.append(
                        (self._emitted, self._handle.tell(), self._line_number)
                    )
                    if len(positions) > _MAX_RESUME_POSITIONS:
                        positions.popleft()
        now = self._clock()
        if batch or self._progressed:
            self._progressed = False
            self._last_progress = now
        if batch:
            return batch
        # EOF with nothing new: either finish (no follow / idle timeout hit)
        # or report "nothing yet" and let the scheduler decide how to wait.
        if not self._follow or (
            self._idle_timeout is not None
            and now - self._last_progress >= self._idle_timeout
        ):
            # A final row without a trailing newline is complete once the
            # stream is declared over — parse it instead of dropping it,
            # matching what the eager reader yields for the same bytes.  On
            # an idle timeout this may be a torn write of a still-alive
            # producer; declaring the stream over IS the idle-timeout
            # contract, so the bytes on disk are final either way.  The
            # handle is released even if the fragment fails to parse.
            try:
                final = self._drain_partial()
            finally:
                self._finish()
            if final is not None:
                return [final]
        return []

    def _drain_partial(self) -> Optional[Interaction]:
        """Parse a stashed unterminated tail line at end of stream."""
        if not self._partial:
            return None
        line, self._partial = self._partial, ""
        self._line_number += 1
        return self._parse_line(line)

    def _finish(self) -> None:
        self._done = True
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @property
    def exhausted(self) -> bool:
        return self._done

    # ------------------------------------------------------------------
    # offset-committing resume: the offset is a byte position in the file
    # ------------------------------------------------------------------
    def resume_token(self, emitted: int, watermark: Optional[float]) -> Optional[dict]:
        if emitted <= 0:
            byte, line = 0, 0
        else:
            positions = self._positions
            # Positions before the requested one can never be asked for
            # again (checkpoints only move forward) — trim as we look up.
            while positions and positions[0][0] < emitted:
                positions.popleft()
            if not positions or positions[0][0] != emitted:
                return None
            _, byte, line = positions[0]
        return {
            "kind": "csv-tail",
            "byte": int(byte),
            "line": int(line),
            "emitted": int(emitted),
            "watermark": watermark,
        }

    def seek_resume(self, token: dict) -> bool:
        if not isinstance(token, dict) or token.get("kind") != "csv-tail":
            return False
        if self._done or self.interactions_emitted:
            return False
        if not self._ensure_handle():
            return False
        self._handle.seek(int(token.get("byte", 0)))
        self._line_number = int(token.get("line", 0))
        self._partial = ""
        self._restore_progress(token)
        self._last_progress = self._clock()
        return True

    def close(self) -> None:
        self._finish()
