"""``SequenceSource``: today's lists and iterators behind the source interface.

Wraps any in-memory sequence or lazy iterable of interactions — a network's
interaction list, a streamed CSV reader, a generator — so the eager datasets
the repository already handles flow through the same
source/scheduler pipeline as live feeds.  A ``SequenceSource`` is never
"empty but alive": every poll either returns data or exhausts the source,
so schedulers never wait on it.
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Iterable, List, Optional

from repro.core.interaction import Interaction
from repro.exceptions import InvalidInteractionError
from repro.sources.base import InteractionSource

__all__ = ["SequenceSource"]


class SequenceSource(InteractionSource):
    """Source over a fully-determined (though possibly lazy) iterable.

    ``validate=True`` additionally rejects out-of-order input at the cost of
    one comparison per interaction; the default trusts the input the way the
    engine's eager path always has.
    """

    eager = True

    def __init__(
        self,
        interactions: Iterable[Interaction],
        *,
        limit: Optional[int] = None,
        validate: bool = False,
    ) -> None:
        super().__init__()
        iterator = iter(interactions)
        if limit is not None:
            iterator = islice(iterator, max(limit, 0))
        self._iterator = iterator
        self._validate = validate
        self._done = False

    def poll(self, max_items: int) -> List[Interaction]:
        if self._done or max_items <= 0:
            return []
        batch = list(islice(self._iterator, max_items))
        if len(batch) < max_items:
            self._done = True
        if self._validate:
            previous = self.watermark
            for interaction in batch:
                if previous is not None and interaction.time < previous:
                    raise InvalidInteractionError(
                        f"SequenceSource input is not time-ordered: "
                        f"{interaction.time} follows {previous}"
                    )
                previous = interaction.time
        return self._emit(batch)

    @property
    def exhausted(self) -> bool:
        return self._done

    # ------------------------------------------------------------------
    # offset-committing resume: the offset is simply the item index
    # ------------------------------------------------------------------
    def resume_token(self, emitted: int, watermark: Optional[float]) -> Optional[dict]:
        return {
            "kind": "sequence",
            "index": int(emitted),
            "emitted": int(emitted),
            "watermark": watermark,
        }

    def seek_resume(self, token: dict) -> bool:
        if not isinstance(token, dict) or token.get("kind") != "sequence":
            return False
        if self._done or self.interactions_emitted:
            return False
        index = max(int(token.get("index", 0)), 0)
        # Fast-forward the iterator without materialising the prefix: for
        # in-memory sequences this is a C-speed skip, for lazy iterables it
        # still avoids re-validating/re-boxing the processed interactions.
        deque(islice(self._iterator, index), maxlen=0)
        self._restore_progress(token)
        return True

    def close(self) -> None:
        self._done = True
        close = getattr(self._iterator, "close", None)
        if close is not None:
            close()
