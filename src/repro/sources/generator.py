"""``GeneratorSource``: a rate-limited synthetic or replay feed.

Replays any interaction iterable as if it were arriving live: a token
bucket caps how many interactions per second the source releases, so a
recorded dataset can exercise the scheduler's waiting, backpressure and
time-based flushing exactly like a websocket/Kafka consumer would — without
any network dependency.  With ``rate=None`` the bucket is disabled and the
source behaves like :class:`repro.sources.SequenceSource`.

The clock is injectable so tests drive the bucket deterministically.
"""

from __future__ import annotations

import time as _time
from itertools import islice
from typing import Callable, Iterable, List, Optional

from repro.core.interaction import Interaction
from repro.exceptions import RunConfigurationError
from repro.sources.base import InteractionSource

__all__ = ["GeneratorSource"]


class GeneratorSource(InteractionSource):
    """Replay an iterable at a bounded rate (interactions per second).

    Parameters
    ----------
    interactions:
        Any time-ordered iterable (list, generator, CSV reader, synthetic
        dataset) to replay.
    rate:
        Maximum interactions released per second (token bucket), or ``None``
        for unthrottled replay.
    burst:
        Bucket capacity — the largest batch releasable at once after an idle
        spell.  Defaults to one second's worth of tokens (min 1).
    clock:
        Monotonic time function; injectable for deterministic tests.
    max_wait:
        Longest single sleep :meth:`poll` takes while waiting for the bucket
        to refill.  Bounds the caller's latency when the rate is tiny; the
        scheduler's own poll loop covers the remainder of the wait.
    sleep:
        Sleep function used while waiting on an empty bucket; injectable for
        deterministic tests.
    """

    def __init__(
        self,
        interactions: Iterable[Interaction],
        *,
        rate: Optional[float] = None,
        burst: Optional[int] = None,
        clock: Callable[[], float] = _time.monotonic,
        max_wait: float = 0.5,
        sleep: Callable[[float], None] = _time.sleep,
    ) -> None:
        super().__init__()
        if rate is not None and rate <= 0:
            raise RunConfigurationError(f"rate must be positive, got {rate!r}")
        if burst is not None and burst < 1:
            raise RunConfigurationError(f"burst must be >= 1, got {burst!r}")
        if max_wait < 0:
            raise RunConfigurationError(f"max_wait must be >= 0, got {max_wait!r}")
        self._iterator = iter(interactions)
        self._rate = rate
        self._burst = burst if burst is not None else max(1, int(rate)) if rate else 1
        self._clock = clock
        self._max_wait = max_wait
        self._sleep = sleep
        self._tokens = float(self._burst)
        self._last_refill = clock()
        self._done = False

    def _allowance(self) -> int:
        """Whole tokens currently available (refills from elapsed time)."""
        if self._rate is None:
            return -1  # unlimited
        now = self._clock()
        self._tokens = min(
            float(self._burst), self._tokens + (now - self._last_refill) * self._rate
        )
        self._last_refill = now
        return int(self._tokens)

    def poll(self, max_items: int) -> List[Interaction]:
        if self._done or max_items <= 0:
            return []
        allowance = self._allowance()
        size = max_items if allowance < 0 else min(max_items, allowance)
        if size <= 0:
            # Empty bucket: sleep until the next whole token accrues instead
            # of returning [] immediately, which would make the scheduler
            # hot-spin its poll loop against a deterministic refill instant.
            # The wait is capped so a tiny rate cannot wedge the caller, and
            # whatever accrued during the sleep is released in this call.
            wait = min((1.0 - self._tokens) / self._rate, self._max_wait)
            if wait > 0:
                self._sleep(wait)
            size = min(max_items, self._allowance())
            if size <= 0:
                return []
        batch = list(islice(self._iterator, size))
        if len(batch) < size:
            self._done = True
        if self._rate is not None:
            self._tokens -= len(batch)
        return self._emit(batch)

    @property
    def exhausted(self) -> bool:
        return self._done

    def close(self) -> None:
        self._done = True
        close = getattr(self._iterator, "close", None)
        if close is not None:
            close()
