"""The :class:`InteractionSource` interface: where interaction streams come from.

The paper's provenance policies are defined over a *time-ordered stream* of
interactions; historically the repository was file-shaped — a run resolved
its whole dataset up front (a network, or a fully-known CSV iterator) before
the engine started.  An :class:`InteractionSource` inverts that: it is a
pull-based handle on a possibly *unbounded, still-growing* stream that the
:class:`repro.sources.MicroBatchScheduler` polls for micro-batches.

The contract is deliberately small:

* :meth:`poll` — return up to ``max_items`` interactions that are available
  *right now*, in time order.  An empty list does **not** mean the stream
  ended; it means nothing has arrived yet (a tailed file between writes, a
  rate-limited feed between tokens).
* :attr:`exhausted` — ``True`` once the source will never produce another
  interaction.  Only then may a consumer stop polling.
* :attr:`watermark` — the timestamp of the last interaction handed out, the
  stream-progress marker used by time-windowed flushes and monitoring.
* :meth:`close` — release external resources (file handles); idempotent.

Sources must hand out interactions in non-decreasing time order; the
:class:`repro.sources.MergeSource` combinator enforces this across inputs
the way :func:`repro.core.stream.merge_streams` does for plain iterables.
"""

from __future__ import annotations

import abc
import time as _time
from typing import Iterator, List, Optional

from repro.core.interaction import Interaction
from repro.exceptions import InvalidInteractionError

__all__ = ["InteractionSource"]

#: poll() sizing used by plain iteration (__iter__) over a source.
_ITER_CHUNK = 1024

#: Sleep between empty polls when iterating a live source directly.
_ITER_POLL_INTERVAL = 0.01


class InteractionSource(abc.ABC):
    """Pull-based handle on a (possibly unbounded) interaction stream."""

    #: Whether the source is *eager*: every poll either returns data or
    #: exhausts it, never "nothing yet".  Schedulers skip read-ahead
    #: buffering for eager sources (hand the polled batch straight to the
    #: policy); live sources keep the bounded read-ahead that
    #: ``max_in_flight`` buys.
    eager: bool = False

    #: Number of malformed input rows skipped so far.  Stays 0 for sources
    #: without a skip policy; :class:`repro.sources.CsvTailSource` counts
    #: here under ``on_bad_row="skip"`` and run reports surface the total.
    bad_rows: int = 0

    def __init__(self) -> None:
        self._watermark: Optional[float] = None
        self._emitted = 0

    # ------------------------------------------------------------------
    # to implement
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def poll(self, max_items: int) -> List[Interaction]:
        """Up to ``max_items`` interactions available now (maybe empty).

        An empty list means "nothing yet", not "finished" — consult
        :attr:`exhausted` to distinguish the two.  Implementations must
        yield interactions in non-decreasing time order and should call
        :meth:`_emit` on every returned batch so the watermark advances.
        """

    @property
    @abc.abstractmethod
    def exhausted(self) -> bool:
        """True once the source will never produce another interaction."""

    # ------------------------------------------------------------------
    # shared bookkeeping
    # ------------------------------------------------------------------
    def _emit(self, batch: List[Interaction]) -> List[Interaction]:
        """Advance the watermark over ``batch`` and return it (chainable)."""
        if batch:
            self._watermark = batch[-1].time
            self._emitted += len(batch)
        return batch

    @property
    def watermark(self) -> Optional[float]:
        """Timestamp of the last interaction handed out (None before any)."""
        return self._watermark

    @property
    def interactions_emitted(self) -> int:
        """Total number of interactions handed out so far."""
        return self._emitted

    def _check_order(self, interaction: Interaction) -> Interaction:
        """Reject an interaction older than the current watermark."""
        if self._watermark is not None and interaction.time < self._watermark:
            raise InvalidInteractionError(
                f"{type(self).__name__} produced an out-of-order interaction: "
                f"{interaction.time} follows {self._watermark}"
            )
        return interaction

    # ------------------------------------------------------------------
    # offset-committing resume (optional per source)
    # ------------------------------------------------------------------
    def resume_token(self, emitted: int, watermark: Optional[float]) -> Optional[dict]:
        """An opaque token for resuming this stream after ``emitted`` items.

        Checkpoints store the token so a later run can :meth:`seek_resume`
        a *fresh* source of the same kind straight to the position after
        the ``emitted``-th interaction instead of replaying and discarding
        the processed prefix.  ``None`` means the source cannot produce a
        token for that position (not seekable, or the position has been
        forgotten) — resume then falls back to the replay-and-skip path.
        """
        return None

    def seek_resume(self, token: dict) -> bool:
        """Restore the read position from a :meth:`resume_token`.

        Must be called on a fresh source before anything was polled.
        Returns ``False`` when the token is not recognised (the caller
        falls back to replaying); on success the source's emitted count
        and watermark are restored from the token.
        """
        return False

    def _restore_progress(self, token: dict) -> None:
        """Adopt the emitted count / watermark recorded in a resume token."""
        self._emitted = int(token.get("emitted", 0))
        watermark = token.get("watermark")
        if watermark is not None:
            self._watermark = float(watermark)

    # ------------------------------------------------------------------
    # lifecycle / convenience
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release external resources; idempotent."""

    def __enter__(self) -> "InteractionSource":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __iter__(self) -> Iterator[Interaction]:
        """Drain the source by polling until exhausted.

        Convenience for tests and per-interaction consumers (the engine's
        observer path iterates sources directly).  A live source that has
        nothing to hand out is waited on with a short sleep per empty poll,
        so following a quiet feed does not spin a core; scheduled
        consumption (:class:`repro.sources.MicroBatchScheduler`) remains the
        richer way to drive a feed (configurable waits, flush triggers,
        backpressure accounting).
        """
        return self.iter_limited(None)

    def iter_limited(self, limit: Optional[int]) -> Iterator[Interaction]:
        """Iterate at most ``limit`` interactions, bounding CONSUMPTION.

        Unlike ``islice(iter(source), n)`` — whose chunked polling would
        consume up to a whole chunk beyond ``n`` and silently drop it —
        polls never ask the source for more than the remainder, so whatever
        lies past the limit stays available for continuation runs.
        ``limit=None`` iterates everything.
        """
        remaining = None if limit is None else max(limit, 0)
        while remaining is None or remaining > 0:
            size = _ITER_CHUNK if remaining is None else min(remaining, _ITER_CHUNK)
            batch = self.poll(size)
            if batch:
                if remaining is not None:
                    remaining -= len(batch)
                yield from batch
            elif self.exhausted:
                return
            else:
                _time.sleep(_ITER_POLL_INTERVAL)
