"""``MergeSource``: k-way time-ordered merge of interaction sources.

Combines several sources (shard feeds, per-region CSV tails, replayed
histories covering different time ranges) into one time-ordered stream, the
source-level counterpart of :func:`repro.core.stream.merge_streams`:

* the output is globally non-decreasing in time;
* ties are broken by input position — equal timestamps come out in the
  order the sources were passed, deterministically;
* an input that hands out an out-of-order interaction is rejected with
  :class:`~repro.exceptions.InvalidInteractionError`;
* **watermark correctness over live inputs** — while any non-exhausted
  input has nothing buffered, the merge emits nothing at all, because that
  input could still produce the globally-smallest timestamp.  The merge
  therefore stalls (returns an empty poll) rather than emit early; it
  exhausts only when every input is exhausted and every lookahead drained.
"""

from __future__ import annotations

import heapq
import time as _time
from collections import deque
from typing import Deque, Iterator, List

from repro.core.interaction import Interaction
from repro.exceptions import InvalidInteractionError, RunConfigurationError
from repro.sources.base import _ITER_POLL_INTERVAL, InteractionSource

__all__ = ["MergeSource"]

#: Default interactions buffered per input between merge rounds.
_LOOKAHEAD = 256


class MergeSource(InteractionSource):
    """Merge several :class:`InteractionSource` inputs in time order.

    ``lookahead`` is how many interactions are pulled (and order-validated)
    per input per refill: larger values amortise polling, ``lookahead=1``
    reproduces strictly lazy pull-one-ahead semantics — an ordering
    violation is then only detected when the offending interaction is
    actually reached, after the valid prefix has been emitted (this is what
    :func:`repro.core.stream.merge_streams` uses).
    """

    def __init__(self, *sources: InteractionSource, lookahead: int = _LOOKAHEAD) -> None:
        super().__init__()
        if not sources:
            raise RunConfigurationError("MergeSource needs at least one input source")
        if lookahead < 1:
            raise RunConfigurationError(f"lookahead must be >= 1, got {lookahead!r}")
        self._sources = list(sources)
        self._lookahead_size = lookahead
        self._lookahead: List[Deque[Interaction]] = [deque() for _ in sources]
        self._last_times: List[float] = [float("-inf")] * len(sources)

    def _fill(self, index: int) -> None:
        """Top up one input's lookahead, validating per-input time order."""
        source = self._sources[index]
        queue = self._lookahead[index]
        if queue or source.exhausted:
            return
        batch = source.poll(self._lookahead_size)
        last = self._last_times[index]
        for interaction in batch:
            if interaction.time < last:
                raise InvalidInteractionError(
                    f"merge input #{index} is not time-ordered: "
                    f"{interaction.time} follows {last}"
                )
            last = interaction.time
        if batch:
            self._last_times[index] = last
            queue.extend(batch)

    def poll(self, max_items: int) -> List[Interaction]:
        if max_items <= 0:
            return []
        ready = True
        for index in range(len(self._sources)):
            self._fill(index)
            if not self._lookahead[index] and not self._sources[index].exhausted:
                # A live input may still deliver the smallest timestamp;
                # emitting now could break global time order.
                ready = False
        if not ready:
            return []
        # Every contributing input has lookahead: merge the fronts.  The heap
        # orders by (time, input position) so equal timestamps are stable.
        heap = [
            (queue[0].time, index)
            for index, queue in enumerate(self._lookahead)
            if queue
        ]
        heapq.heapify(heap)
        batch: List[Interaction] = []
        while heap and len(batch) < max_items:
            _time_key, index = heapq.heappop(heap)
            queue = self._lookahead[index]
            batch.append(queue.popleft())
            if len(batch) >= max_items:
                break  # defer the refill (and its validation) to the next poll
            if not queue:
                self._fill(index)
                if not queue and not self._sources[index].exhausted:
                    break  # input went quiet mid-merge: stop before ordering breaks
            if queue:
                heapq.heappush(heap, (queue[0].time, index))
        return self._emit(batch)

    def __iter__(self) -> Iterator[Interaction]:
        """Lazy merged iteration with one persistent heap.

        O(log k) per interaction for k inputs — unlike repeated ``poll``
        calls, which rebuild the front heap per batch.  Ordering violations
        surface only when the offending interaction is pulled, after the
        valid prefix has been yielded (with ``lookahead=1`` exactly one
        input item beyond the yield point is ever consumed).  Live inputs
        that are quiet are waited on with a short sleep, like
        :meth:`InteractionSource.__iter__`.
        """
        def await_lookahead(index: int) -> None:
            while True:
                self._fill(index)
                if self._lookahead[index] or self._sources[index].exhausted:
                    return
                _time.sleep(_ITER_POLL_INTERVAL)

        heap: List = []
        for index in range(len(self._sources)):
            await_lookahead(index)
            if self._lookahead[index]:
                heap.append((self._lookahead[index][0].time, index))
        heapq.heapify(heap)
        while heap:
            _time_key, index = heapq.heappop(heap)
            queue = self._lookahead[index]
            interaction = queue.popleft()
            self._emit([interaction])
            yield interaction
            if not queue:
                await_lookahead(index)
            if queue:
                heapq.heappush(heap, (queue[0].time, index))

    @property
    def exhausted(self) -> bool:
        return all(source.exhausted for source in self._sources) and not any(
            self._lookahead
        )

    def close(self) -> None:
        for source in self._sources:
            source.close()
