"""Shared experiment harness used by the benchmark suite.

The functions here wrap the :class:`repro.runtime.Runner` pipeline with the
instrumentation needed to regenerate the paper's tables and figures:
wall-clock timing, deep memory accounting, an optional memory ceiling that
classifies configurations as infeasible (the ``--`` entries of Tables 7 and
8), and caching of generated networks so one benchmark session does not
regenerate the same synthetic dataset for every policy.

The paper's experiments measure the *per-interaction* algorithms, so the
harness drives policies with ``batch_size=1`` by default; pass a larger
``batch_size`` to measure the batched execution path instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine import RunStatistics
from repro.core.network import TemporalInteractionNetwork
from repro.datasets.catalog import load_preset
from repro.metrics.tables import format_table
from repro.policies.base import SelectionPolicy
from repro.runtime import RunConfig, Runner

__all__ = [
    "PolicyRunResult",
    "ExperimentResult",
    "run_policy",
    "load_network_cached",
    "clear_network_cache",
    "DEFAULT_DATASETS",
    "LARGE_DATASETS",
]

#: Datasets used by experiments that sweep every preset (Tables 7, 8, 10).
DEFAULT_DATASETS: Tuple[str, ...] = ("bitcoin", "ctu", "prosper", "flights", "taxis")

#: The three largest networks (by vertex count), used by the scalable
#: proportional experiments (Figures 5-8, Table 9), as in the paper.
LARGE_DATASETS: Tuple[str, ...] = ("bitcoin", "ctu", "prosper")

_NETWORK_CACHE: Dict[Tuple[str, float, Optional[int]], TemporalInteractionNetwork] = {}


def load_network_cached(
    name: str, *, scale: float = 1.0, seed: Optional[int] = None
) -> TemporalInteractionNetwork:
    """Load a preset network, memoising the result for the process lifetime.

    Synthetic generation is deterministic, so caching only trades memory for
    the (non-trivial) regeneration time when several benchmarks sweep the
    same datasets.
    """
    key = (name, scale, seed)
    network = _NETWORK_CACHE.get(key)
    if network is None:
        network = load_preset(name, scale=scale, seed=seed)
        _NETWORK_CACHE[key] = network
    return network


def clear_network_cache() -> None:
    """Drop all cached networks (used by tests)."""
    _NETWORK_CACHE.clear()


@dataclass
class PolicyRunResult:
    """Outcome of running one policy over one dataset."""

    dataset: str
    policy: str
    feasible: bool
    runtime_seconds: Optional[float] = None
    memory_bytes: Optional[int] = None
    interactions: int = 0
    entry_count: int = 0
    statistics: Optional[RunStatistics] = None
    note: str = ""

    def as_row(self) -> Dict[str, object]:
        """Flatten the result into a report row (None marks infeasible)."""
        return {
            "dataset": self.dataset,
            "policy": self.policy,
            "runtime_s": self.runtime_seconds if self.feasible else None,
            "memory_bytes": self.memory_bytes if self.feasible else None,
            "interactions": self.interactions,
            "entries": self.entry_count if self.feasible else None,
        }


@dataclass
class ExperimentResult:
    """Rows (and optional per-series data) produced by one experiment."""

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    series: Dict[str, List[Dict[str, object]]] = field(default_factory=dict)

    def to_text(self, *, float_digits: int = 4) -> str:
        """Render the experiment in the paper's table layout as plain text."""
        parts = [format_table(self.rows, title=f"{self.experiment_id}: {self.title}",
                              float_digits=float_digits)]
        for series_name, series_rows in self.series.items():
            parts.append("")
            parts.append(format_table(series_rows, title=series_name,
                                      float_digits=float_digits))
        return "\n".join(parts)


def run_policy(
    network: TemporalInteractionNetwork,
    policy: SelectionPolicy,
    *,
    memory_ceiling_bytes: Optional[int] = None,
    memory_check_every: Optional[int] = None,
    sample_every: int = 0,
    limit: Optional[int] = None,
    batch_size: int = 1,
) -> PolicyRunResult:
    """Run ``policy`` over ``network`` with timing and memory accounting.

    A thin wrapper over the :class:`repro.runtime.Runner` pipeline that maps
    its result onto the benchmark suite's :class:`PolicyRunResult`.  When a
    memory ceiling is given and exceeded, the run is reported as infeasible
    instead of raising, mirroring how the paper reports configurations that
    exceeded the machine's RAM.  By default the ceiling is checked only
    once, after the run, so the memory accounting does not distort the
    measured runtime; pass ``memory_check_every`` to also check periodically
    and abort early (useful when even materialising the state once would be
    too expensive).
    """
    config = RunConfig(
        dataset=network,
        policy=policy,
        batch_size=batch_size,
        sample_every=sample_every,
        limit=limit,
        memory_ceiling_bytes=memory_ceiling_bytes,
        memory_check_every=memory_check_every,
        measure_memory=True,
    )
    result = Runner(config).run()
    return PolicyRunResult(
        dataset=network.name,
        policy=policy.describe(),
        feasible=result.feasible,
        runtime_seconds=result.statistics.elapsed_seconds if result.feasible else None,
        memory_bytes=result.memory_bytes,
        interactions=result.statistics.interactions,
        entry_count=result.statistics.final_entry_count if result.feasible else 0,
        statistics=result.statistics if result.feasible else None,
        note=result.note,
    )
