"""Shared experiment harness used by the benchmark suite.

The functions here wrap the library's engine with the instrumentation needed
to regenerate the paper's tables and figures: wall-clock timing, deep memory
accounting, an optional memory ceiling that classifies configurations as
infeasible (the ``--`` entries of Tables 7 and 8), and caching of generated
networks so one benchmark session does not regenerate the same synthetic
dataset for every policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine import ProvenanceEngine, RunStatistics
from repro.core.network import TemporalInteractionNetwork
from repro.datasets.catalog import load_preset
from repro.exceptions import MemoryBudgetExceededError
from repro.metrics.memory import MemoryCeiling, policy_memory_bytes
from repro.metrics.tables import format_table
from repro.policies.base import SelectionPolicy

__all__ = [
    "PolicyRunResult",
    "ExperimentResult",
    "run_policy",
    "load_network_cached",
    "clear_network_cache",
    "DEFAULT_DATASETS",
    "LARGE_DATASETS",
]

#: Datasets used by experiments that sweep every preset (Tables 7, 8, 10).
DEFAULT_DATASETS: Tuple[str, ...] = ("bitcoin", "ctu", "prosper", "flights", "taxis")

#: The three largest networks (by vertex count), used by the scalable
#: proportional experiments (Figures 5-8, Table 9), as in the paper.
LARGE_DATASETS: Tuple[str, ...] = ("bitcoin", "ctu", "prosper")

_NETWORK_CACHE: Dict[Tuple[str, float, Optional[int]], TemporalInteractionNetwork] = {}


def load_network_cached(
    name: str, *, scale: float = 1.0, seed: Optional[int] = None
) -> TemporalInteractionNetwork:
    """Load a preset network, memoising the result for the process lifetime.

    Synthetic generation is deterministic, so caching only trades memory for
    the (non-trivial) regeneration time when several benchmarks sweep the
    same datasets.
    """
    key = (name, scale, seed)
    network = _NETWORK_CACHE.get(key)
    if network is None:
        network = load_preset(name, scale=scale, seed=seed)
        _NETWORK_CACHE[key] = network
    return network


def clear_network_cache() -> None:
    """Drop all cached networks (used by tests)."""
    _NETWORK_CACHE.clear()


@dataclass
class PolicyRunResult:
    """Outcome of running one policy over one dataset."""

    dataset: str
    policy: str
    feasible: bool
    runtime_seconds: Optional[float] = None
    memory_bytes: Optional[int] = None
    interactions: int = 0
    entry_count: int = 0
    statistics: Optional[RunStatistics] = None
    note: str = ""

    def as_row(self) -> Dict[str, object]:
        """Flatten the result into a report row (None marks infeasible)."""
        return {
            "dataset": self.dataset,
            "policy": self.policy,
            "runtime_s": self.runtime_seconds if self.feasible else None,
            "memory_bytes": self.memory_bytes if self.feasible else None,
            "interactions": self.interactions,
            "entries": self.entry_count if self.feasible else None,
        }


@dataclass
class ExperimentResult:
    """Rows (and optional per-series data) produced by one experiment."""

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    series: Dict[str, List[Dict[str, object]]] = field(default_factory=dict)

    def to_text(self, *, float_digits: int = 4) -> str:
        """Render the experiment in the paper's table layout as plain text."""
        parts = [format_table(self.rows, title=f"{self.experiment_id}: {self.title}",
                              float_digits=float_digits)]
        for series_name, series_rows in self.series.items():
            parts.append("")
            parts.append(format_table(series_rows, title=series_name,
                                      float_digits=float_digits))
        return "\n".join(parts)


def run_policy(
    network: TemporalInteractionNetwork,
    policy: SelectionPolicy,
    *,
    memory_ceiling_bytes: Optional[int] = None,
    memory_check_every: Optional[int] = None,
    sample_every: int = 0,
    limit: Optional[int] = None,
) -> PolicyRunResult:
    """Run ``policy`` over ``network`` with timing and memory accounting.

    When a memory ceiling is given and exceeded, the run is reported as
    infeasible instead of raising, mirroring how the paper reports
    configurations that exceeded the machine's RAM.  By default the ceiling
    is checked only once, after the run, so the memory accounting does not
    distort the measured runtime; pass ``memory_check_every`` to also check
    periodically and abort early (useful when even materialising the state
    once would be too expensive).
    """
    engine = ProvenanceEngine(policy)
    ceiling: Optional[MemoryCeiling] = None
    if memory_ceiling_bytes is not None and memory_check_every is not None:
        ceiling = MemoryCeiling(memory_ceiling_bytes, check_every=memory_check_every)
        engine.add_observer(ceiling)

    try:
        statistics = engine.run(network, sample_every=sample_every, limit=limit)
    except MemoryBudgetExceededError as error:
        return PolicyRunResult(
            dataset=network.name,
            policy=policy.describe(),
            feasible=False,
            memory_bytes=error.used_bytes,
            interactions=engine.interactions_processed,
            note=str(error),
        )

    memory_bytes = policy_memory_bytes(policy)
    if ceiling is not None:
        memory_bytes = max(memory_bytes, ceiling.peak_bytes)
    if memory_ceiling_bytes is not None and memory_bytes > memory_ceiling_bytes:
        # The provenance state exceeds the configured ceiling: report the
        # configuration as infeasible, exactly like an aborted run.
        return PolicyRunResult(
            dataset=network.name,
            policy=policy.describe(),
            feasible=False,
            memory_bytes=memory_bytes,
            interactions=statistics.interactions,
            note=(
                f"final provenance state uses {memory_bytes} bytes which "
                f"exceeds the ceiling of {memory_ceiling_bytes} bytes"
            ),
        )
    return PolicyRunResult(
        dataset=network.name,
        policy=policy.describe(),
        feasible=True,
        runtime_seconds=statistics.elapsed_seconds,
        memory_bytes=memory_bytes,
        interactions=statistics.interactions,
        entry_count=statistics.final_entry_count,
        statistics=statistics,
    )
