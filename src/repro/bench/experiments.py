"""Experiment implementations for every table and figure of the paper.

Each public function regenerates one table or figure of the paper's
evaluation (Section 7) and returns an
:class:`~repro.bench.harness.ExperimentResult` whose rows mirror the paper's
layout.  The ``benchmarks/`` directory contains one pytest-benchmark target
per experiment that calls these functions and prints the resulting tables.

Absolute numbers differ from the paper (pure Python on synthetic, scaled
datasets versus C on the real data); the comparisons of interest — which
policy is faster, how costs scale with k / W / C / stream length — are
preserved.  See EXPERIMENTS.md for the paper-versus-measured discussion.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.alerts import NeighbourOriginAlertRule
from repro.analysis.contributors import top_receivers
from repro.analysis.distribution import AccumulationTracker
from repro.bench.harness import (
    DEFAULT_DATASETS,
    LARGE_DATASETS,
    ExperimentResult,
    PolicyRunResult,
    load_network_cached,
    run_policy,
)
from repro.core.network import TemporalInteractionNetwork
from repro.datasets.catalog import get_spec
from repro.lazy.replay import ReplayProvenance
from repro.runtime import RunConfig, Runner
from repro.metrics.memory import policy_memory_bytes
from repro.paths.tracker import PathProvenance
from repro.policies.generation_time import LeastRecentlyBornPolicy, MostRecentlyBornPolicy
from repro.policies.no_provenance import NoProvenancePolicy
from repro.policies.proportional import ProportionalDensePolicy, ProportionalSparsePolicy
from repro.policies.receipt_order import FifoPolicy, LifoPolicy
from repro.scalable.budget import BudgetProportionalPolicy, keep_by_priority, keep_largest
from repro.scalable.grouped import GroupedProportionalPolicy
from repro.scalable.selective import SelectiveProportionalPolicy
from repro.scalable.windowing import WindowedProportionalPolicy

__all__ = [
    "table6_datasets",
    "table7_runtime",
    "table8_memory",
    "policy_comparison",
    "figure5_selective_grouped",
    "figure6_cumulative",
    "figure7_windowing",
    "figure8_budget",
    "table9_shrinking",
    "table10_paths",
    "figure2_accumulation",
    "figure9_alerts",
    "ablation_buffer_structures",
    "ablation_dense_vs_sparse",
    "ablation_budget_policies",
    "ablation_lazy_vs_proactive",
]

#: Default memory ceiling (bytes) used to classify a policy/dataset pair as
#: infeasible, standing in for the paper machine's 32 GB of RAM.
DEFAULT_MEMORY_CEILING = 256 * 1024 * 1024


# ----------------------------------------------------------------------
# Table 6 — dataset characteristics
# ----------------------------------------------------------------------
def table6_datasets(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    *,
    scale: float = 1.0,
) -> ExperimentResult:
    """Characteristics of the (synthetic) datasets, next to the paper's."""
    rows: List[Dict[str, object]] = []
    for name in datasets:
        spec = get_spec(name, scale=scale)
        network = load_network_cached(name, scale=scale)
        paper_vertices, paper_interactions, paper_avg_quantity = (
            spec.paper_statistics or (None, None, None)
        )
        rows.append(
            {
                "dataset": name,
                "nodes": network.num_vertices,
                "interactions": network.num_interactions,
                "avg_quantity": network.average_quantity(),
                "density": network.num_interactions / network.num_vertices,
                "paper_nodes": paper_vertices,
                "paper_interactions": paper_interactions,
                "paper_avg_quantity": paper_avg_quantity,
            }
        )
    return ExperimentResult(
        experiment_id="table6",
        title="Characteristics of datasets (synthetic presets vs. paper)",
        rows=rows,
    )


# ----------------------------------------------------------------------
# Tables 7 and 8 — runtime and memory of every selection policy
# ----------------------------------------------------------------------
def _policy_suite(network: TemporalInteractionNetwork):
    """The seven policies compared in Tables 7 and 8, as (label, policy) pairs."""
    return [
        ("no-provenance", NoProvenancePolicy()),
        ("least-recently-born", LeastRecentlyBornPolicy()),
        ("most-recently-born", MostRecentlyBornPolicy()),
        ("lifo", LifoPolicy()),
        ("fifo", FifoPolicy()),
        ("proportional-dense", ProportionalDensePolicy(network.vertices)),
        ("proportional-sparse", ProportionalSparsePolicy()),
    ]


def policy_comparison(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    *,
    scale: float = 1.0,
    memory_ceiling_bytes: Optional[int] = DEFAULT_MEMORY_CEILING,
) -> List[PolicyRunResult]:
    """Run every selection policy on every dataset (shared by Tables 7 and 8)."""
    results: List[PolicyRunResult] = []
    for name in datasets:
        network = load_network_cached(name, scale=scale)
        for label, policy in _policy_suite(network):
            result = run_policy(
                network,
                policy,
                memory_ceiling_bytes=memory_ceiling_bytes,
            )
            result.policy = label
            results.append(result)
    return results


def _pivot_by_policy(
    results: Iterable[PolicyRunResult], value_of
) -> List[Dict[str, object]]:
    """Pivot run results into one row per dataset with one column per policy."""
    rows: Dict[str, Dict[str, object]] = {}
    order: List[str] = []
    for result in results:
        row = rows.get(result.dataset)
        if row is None:
            row = {"dataset": result.dataset}
            rows[result.dataset] = row
            order.append(result.dataset)
        row[result.policy] = value_of(result) if result.feasible else None
    return [rows[name] for name in order]


def table7_runtime(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    *,
    scale: float = 1.0,
    memory_ceiling_bytes: Optional[int] = DEFAULT_MEMORY_CEILING,
    results: Optional[List[PolicyRunResult]] = None,
) -> ExperimentResult:
    """Table 7: runtime (seconds) for each selection policy and dataset."""
    if results is None:
        results = policy_comparison(
            datasets, scale=scale, memory_ceiling_bytes=memory_ceiling_bytes
        )
    rows = _pivot_by_policy(results, lambda result: result.runtime_seconds)
    return ExperimentResult(
        experiment_id="table7",
        title="Runtime (sec) for each selection policy",
        rows=rows,
    )


def table8_memory(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    *,
    scale: float = 1.0,
    memory_ceiling_bytes: Optional[int] = DEFAULT_MEMORY_CEILING,
    results: Optional[List[PolicyRunResult]] = None,
) -> ExperimentResult:
    """Table 8: peak provenance memory (MB) for each policy and dataset."""
    if results is None:
        results = policy_comparison(
            datasets, scale=scale, memory_ceiling_bytes=memory_ceiling_bytes
        )
    rows = _pivot_by_policy(
        results,
        lambda result: (result.memory_bytes or 0) / (1024 * 1024),
    )
    return ExperimentResult(
        experiment_id="table8",
        title="Peak memory (MB) used by each selection policy",
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 5 — selective and grouped proportional provenance vs. k
# ----------------------------------------------------------------------
def figure5_selective_grouped(
    datasets: Sequence[str] = LARGE_DATASETS,
    *,
    k_values: Sequence[int] = (5, 20, 50, 100, 150, 200),
    scale: float = 1.0,
) -> ExperimentResult:
    """Figure 5: runtime and memory of selective/grouped provenance vs. k."""
    rows: List[Dict[str, object]] = []
    for name in datasets:
        network = load_network_cached(name, scale=scale)
        for k in k_values:
            selective = SelectiveProportionalPolicy.for_top_contributors(network, k)
            selective_result = run_policy(network, selective)
            grouped = GroupedProportionalPolicy.round_robin(network.vertices, k)
            grouped_result = run_policy(network, grouped)
            rows.append(
                {
                    "dataset": name,
                    "k": k,
                    "selective_runtime_s": selective_result.runtime_seconds,
                    "grouped_runtime_s": grouped_result.runtime_seconds,
                    "selective_memory_mb": (selective_result.memory_bytes or 0)
                    / (1024 * 1024),
                    "grouped_memory_mb": (grouped_result.memory_bytes or 0)
                    / (1024 * 1024),
                }
            )
    return ExperimentResult(
        experiment_id="figure5",
        title="Selective and grouped proportional provenance vs. k",
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 6 — cumulative cost of sparse proportional provenance
# ----------------------------------------------------------------------
def figure6_cumulative(
    datasets: Sequence[str] = LARGE_DATASETS,
    *,
    num_checkpoints: int = 5,
    limit: Optional[int] = None,
    scale: float = 1.0,
) -> ExperimentResult:
    """Figure 6: cumulative runtime and provenance size vs. processed interactions."""
    result = ExperimentResult(
        experiment_id="figure6",
        title="Cumulative cost of full sparse proportional provenance",
    )
    for name in datasets:
        network = load_network_cached(name, scale=scale)
        total = limit if limit is not None else network.num_interactions
        sample_every = max(1, total // num_checkpoints)
        policy = ProportionalSparsePolicy()
        run = run_policy(network, policy, sample_every=sample_every, limit=limit)
        series_rows: List[Dict[str, object]] = []
        statistics = run.statistics
        if statistics is not None:
            for position, entries, seconds in zip(
                statistics.samples,
                statistics.sampled_entry_counts,
                statistics.sampled_elapsed_seconds,
            ):
                series_rows.append(
                    {
                        "interactions": position,
                        "cumulative_s": seconds,
                        "provenance_entries": entries,
                    }
                )
        result.series[f"{name} (cumulative)"] = series_rows
        result.rows.append(
            {
                "dataset": name,
                "interactions": run.interactions,
                "total_runtime_s": run.runtime_seconds,
                "final_memory_mb": (run.memory_bytes or 0) / (1024 * 1024),
                "avg_list_length": policy.average_list_length(),
            }
        )
    return result


# ----------------------------------------------------------------------
# Figure 7 — windowing approach
# ----------------------------------------------------------------------
def figure7_windowing(
    datasets: Sequence[str] = LARGE_DATASETS,
    *,
    window_sizes: Sequence[int] = (2_000, 4_000, 8_000, 16_000),
    scale: float = 1.0,
) -> ExperimentResult:
    """Figure 7: runtime and memory of windowed proportional provenance vs. W."""
    rows: List[Dict[str, object]] = []
    for name in datasets:
        network = load_network_cached(name, scale=scale)
        for window in window_sizes:
            policy = WindowedProportionalPolicy(window=window)
            run = run_policy(network, policy)
            rows.append(
                {
                    "dataset": name,
                    "window": window,
                    "runtime_s": run.runtime_seconds,
                    "memory_mb": (run.memory_bytes or 0) / (1024 * 1024),
                    "resets": policy.resets_performed,
                }
            )
    return ExperimentResult(
        experiment_id="figure7",
        title="Windowing approach: cost vs. window size W",
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 8 / Table 9 — budget-based approach
# ----------------------------------------------------------------------
def figure8_budget(
    datasets: Sequence[str] = LARGE_DATASETS,
    *,
    budgets: Sequence[int] = (10, 50, 100, 200, 500, 1000),
    keep_fraction: float = 0.7,
    scale: float = 1.0,
) -> ExperimentResult:
    """Figure 8: runtime and memory of budget-based provenance vs. budget C."""
    rows: List[Dict[str, object]] = []
    for name in datasets:
        network = load_network_cached(name, scale=scale)
        for capacity in budgets:
            policy = BudgetProportionalPolicy(capacity, keep_fraction=keep_fraction)
            run = run_policy(network, policy)
            rows.append(
                {
                    "dataset": name,
                    "budget": capacity,
                    "runtime_s": run.runtime_seconds,
                    "memory_mb": (run.memory_bytes or 0) / (1024 * 1024),
                }
            )
    return ExperimentResult(
        experiment_id="figure8",
        title="Budget-based provenance: cost vs. per-vertex budget C",
        rows=rows,
    )


def table9_shrinking(
    datasets: Sequence[str] = LARGE_DATASETS,
    *,
    budgets: Sequence[int] = (10, 50, 100, 200, 500, 1000),
    keep_fraction: float = 0.7,
    scale: float = 1.0,
) -> ExperimentResult:
    """Table 9: shrink frequency statistics of budget-based provenance."""
    rows: List[Dict[str, object]] = []
    for name in datasets:
        network = load_network_cached(name, scale=scale)
        for capacity in budgets:
            policy = BudgetProportionalPolicy(capacity, keep_fraction=keep_fraction)
            run_policy(network, policy)
            non_empty = policy.non_empty_vertex_count()
            statistics = policy.shrink_statistics
            rows.append(
                {
                    "dataset": name,
                    "budget": capacity,
                    "avg_shrinks": statistics.average_shrinks(over_vertices=non_empty),
                    "pct_vertices_shrunk": (
                        100.0 * statistics.vertices_shrunk() / non_empty
                        if non_empty
                        else 0.0
                    ),
                }
            )
    return ExperimentResult(
        experiment_id="table9",
        title="Shrinking statistics in budget-based provenance",
        rows=rows,
    )


# ----------------------------------------------------------------------
# Table 10 — path tracking
# ----------------------------------------------------------------------
def _path_memory_bytes(policy: LifoPolicy) -> int:
    """Bytes used by the path tuples stored across all buffers (counted once)."""
    seen: set = set()
    total = 0
    for vertex in policy.tracked_vertices():
        for path, _quantity in policy.paths(vertex):
            if id(path) in seen:
                continue
            seen.add(id(path))
            total += sys.getsizeof(path)
            total += sum(sys.getsizeof(step) for step in path)
    return total


def table10_paths(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    *,
    scale: float = 1.0,
) -> ExperimentResult:
    """Table 10: overhead of tracking provenance paths (LIFO policy)."""
    rows: List[Dict[str, object]] = []
    for name in datasets:
        network = load_network_cached(name, scale=scale)

        baseline = LifoPolicy()
        baseline_run = run_policy(network, baseline)

        with_paths = LifoPolicy(track_paths=True)
        tracked_run = run_policy(network, with_paths)
        path_bytes = _path_memory_bytes(with_paths)
        entry_bytes = max((tracked_run.memory_bytes or 0) - path_bytes, 0)
        statistics = PathProvenance(with_paths).statistics()

        rows.append(
            {
                "dataset": name,
                "runtime_s": tracked_run.runtime_seconds,
                "baseline_runtime_s": baseline_run.runtime_seconds,
                "mem_entries_mb": entry_bytes / (1024 * 1024),
                "mem_paths_mb": path_bytes / (1024 * 1024),
                "total_mem_mb": (tracked_run.memory_bytes or 0) / (1024 * 1024),
                "avg_path_length": statistics.average_path_length,
            }
        )
    return ExperimentResult(
        experiment_id="table10",
        title="Tracking provenance paths in LIFO",
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 2 — accumulation and provenance distribution at one vertex
# ----------------------------------------------------------------------
def figure2_accumulation(
    dataset: str = "taxis",
    *,
    vertex=None,
    scale: float = 1.0,
    max_points: int = 25,
) -> ExperimentResult:
    """Figure 2: accumulated quantity and provenance mix at a watched vertex.

    When ``vertex`` is omitted, the vertex receiving the largest total
    quantity is watched — the synthetic stand-in for East Village (#79).
    """
    network = load_network_cached(dataset, scale=scale)
    if vertex is None:
        vertex = top_receivers(network, 1)[0]

    tracker = AccumulationTracker(watched=[vertex])
    Runner(RunConfig(dataset=network, policy=FifoPolicy(), observers=[tracker])).run()
    series = tracker.series(vertex)

    rows: List[Dict[str, object]] = []
    points = series.points
    stride = max(1, len(points) // max_points)
    for point in points[::stride]:
        top = point.origins.top(1)
        top_origin, top_quantity = top[0] if top else (None, 0.0)
        rows.append(
            {
                "interaction": point.interaction_index,
                "time": point.time,
                "buffered_quantity": point.buffered_quantity,
                "distinct_origins": len(point.origins),
                "top_origin": top_origin,
                "top_origin_share": (
                    top_quantity / point.buffered_quantity
                    if point.buffered_quantity
                    else 0.0
                ),
            }
        )
    result = ExperimentResult(
        experiment_id="figure2",
        title=f"Buffered quantity and provenance mix at vertex {vertex!r} ({dataset})",
        rows=rows,
    )
    result.series["summary"] = [
        {
            "watched_vertex": vertex,
            "deliveries": len(points),
            "peak_quantity": series.peak().buffered_quantity if points else 0.0,
            "distinct_origins_overall": series.distinct_origins(),
        }
    ]
    return result


# ----------------------------------------------------------------------
# Figure 9 — provenance alerts use case
# ----------------------------------------------------------------------
def figure9_alerts(
    dataset: str = "bitcoin",
    *,
    quantity_threshold: Optional[float] = None,
    threshold_multiplier: float = 1.0,
    max_neighbour_fraction: float = 0.0,
    limit: Optional[int] = None,
    scale: float = 1.0,
    few_contributor_threshold: int = 5,
) -> ExperimentResult:
    """Figure 9: smurfing alerts on the Bitcoin network.

    The paper alerts when a vertex buffers more than 10K BTC with none of it
    originating from direct neighbours.  The synthetic preset accumulates far
    smaller balances (it has ~1/1000 of the interactions), so the default
    threshold is ``threshold_multiplier`` times the average interaction
    quantity, which yields a comparable alert density; the neighbour rule
    itself is the paper's exact rule unless ``max_neighbour_fraction`` is
    relaxed.
    """
    network = load_network_cached(dataset, scale=scale)
    if quantity_threshold is None:
        quantity_threshold = threshold_multiplier * network.average_quantity()

    rule = NeighbourOriginAlertRule(
        quantity_threshold, max_neighbour_fraction=max_neighbour_fraction
    )
    Runner(
        RunConfig(
            dataset=network,
            policy=ProportionalSparsePolicy(),
            observers=[rule],
            limit=limit,
        )
    ).run()

    rows: List[Dict[str, object]] = []
    for alert in rule.alerts[:20]:
        top = alert.origins.top(1)
        top_origin, top_quantity = top[0] if top else (None, 0.0)
        rows.append(
            {
                "interaction": alert.interaction_index,
                "vertex": alert.vertex,
                "buffered_quantity": alert.buffered_quantity,
                "contributing_vertices": alert.contributing_vertices,
                "few_contributors": alert.is_few_contributors(few_contributor_threshold),
                "top_origin": top_origin,
                "top_origin_quantity": top_quantity,
            }
        )
    result = ExperimentResult(
        experiment_id="figure9",
        title=f"Provenance alerts on {dataset} (threshold {quantity_threshold:g})",
        rows=rows,
    )
    summary = rule.summary()
    summary["quantity_threshold"] = quantity_threshold
    result.series["summary"] = [summary]
    return result


# ----------------------------------------------------------------------
# Ablations (design decisions called out in DESIGN.md)
# ----------------------------------------------------------------------
def ablation_buffer_structures(
    dataset: str = "prosper",
    *,
    scale: float = 1.0,
) -> ExperimentResult:
    """Heap vs. FIFO vs. LIFO buffers: the cost of ordering by birth time."""
    network = load_network_cached(dataset, scale=scale)
    rows: List[Dict[str, object]] = []
    for label, policy in (
        ("heap (least-recently-born)", LeastRecentlyBornPolicy()),
        ("heap (most-recently-born)", MostRecentlyBornPolicy()),
        ("fifo queue", FifoPolicy()),
        ("lifo stack", LifoPolicy()),
    ):
        run = run_policy(network, policy)
        rows.append(
            {
                "buffer": label,
                "runtime_s": run.runtime_seconds,
                "memory_mb": (run.memory_bytes or 0) / (1024 * 1024),
                "entries": run.entry_count,
            }
        )
    return ExperimentResult(
        experiment_id="ablation-buffers",
        title=f"Buffer data structure ablation on {dataset}",
        rows=rows,
    )


def ablation_dense_vs_sparse(
    datasets: Sequence[str] = ("flights", "taxis"),
    *,
    scale: float = 1.0,
) -> ExperimentResult:
    """Dense vs. sparse proportional vectors on the small-vertex networks."""
    rows: List[Dict[str, object]] = []
    for name in datasets:
        network = load_network_cached(name, scale=scale)
        dense_run = run_policy(network, ProportionalDensePolicy(network.vertices))
        sparse_run = run_policy(network, ProportionalSparsePolicy())
        rows.append(
            {
                "dataset": name,
                "dense_runtime_s": dense_run.runtime_seconds,
                "sparse_runtime_s": sparse_run.runtime_seconds,
                "dense_memory_mb": (dense_run.memory_bytes or 0) / (1024 * 1024),
                "sparse_memory_mb": (sparse_run.memory_bytes or 0) / (1024 * 1024),
            }
        )
    return ExperimentResult(
        experiment_id="ablation-dense-sparse",
        title="Dense vs. sparse proportional provenance vectors",
        rows=rows,
    )


def ablation_lazy_vs_proactive(
    dataset: str = "prosper",
    *,
    query_counts: Sequence[int] = (0, 1, 10, 100),
    scale: float = 1.0,
) -> ExperimentResult:
    """Proactive (FIFO) vs. lazy replay provenance for varying query loads.

    The paper's future work (Section 8) suggests lazy, replay-based
    provenance.  This ablation measures the total cost (streaming + queries)
    of the proactive FIFO policy versus :class:`ReplayProvenance` for an
    increasing number of provenance queries issued after the stream: lazy
    wins when queries are rare, proactive wins when they are frequent.
    """
    import time as _time

    network = load_network_cached(dataset, scale=scale)
    queried = top_receivers(network, 1)[0]
    rows: List[Dict[str, object]] = []
    for queries in query_counts:
        # batch_size=1: this ablation times the paper's per-interaction
        # algorithms, like every other table/figure of the suite.
        proactive = FifoPolicy()
        proactive_runner = Runner(
            RunConfig(dataset=network, policy=proactive, batch_size=1)
        )
        start = _time.perf_counter()
        proactive_result = proactive_runner.run()
        for _ in range(queries):
            proactive_result.origins(queried)
        proactive_seconds = _time.perf_counter() - start

        lazy = ReplayProvenance(FifoPolicy)
        lazy_runner = Runner(RunConfig(dataset=network, policy=lazy, batch_size=1))
        start = _time.perf_counter()
        lazy_result = lazy_runner.run()
        for _ in range(queries):
            lazy_result.origins(queried)
        lazy_seconds = _time.perf_counter() - start

        rows.append(
            {
                "queries": queries,
                "proactive_total_s": proactive_seconds,
                "lazy_total_s": lazy_seconds,
                "lazy_replays": lazy.replay_count,
                "proactive_memory_mb": policy_memory_bytes(proactive) / (1024 * 1024),
                "lazy_memory_mb": policy_memory_bytes(lazy) / (1024 * 1024),
            }
        )
    return ExperimentResult(
        experiment_id="ablation-lazy",
        title=f"Proactive vs. lazy (replay) provenance on {dataset}",
        rows=rows,
    )


def ablation_budget_policies(
    dataset: str = "prosper",
    *,
    capacity: int = 50,
    scale: float = 1.0,
) -> ExperimentResult:
    """Budget shrink criteria: keep-largest vs. keep-by-priority (degree)."""
    network = load_network_cached(dataset, scale=scale)
    priority = {vertex: float(network.degree(vertex)) for vertex in network.vertices}
    rows: List[Dict[str, object]] = []
    for label, criterion in (
        ("keep-largest", keep_largest),
        ("keep-by-degree-priority", keep_by_priority(priority)),
    ):
        policy = BudgetProportionalPolicy(capacity, criterion=criterion)
        run = run_policy(network, policy)
        known = [
            policy.known_fraction(vertex) for vertex in policy.tracked_vertices()
        ]
        rows.append(
            {
                "criterion": label,
                "runtime_s": run.runtime_seconds,
                "memory_mb": (run.memory_bytes or 0) / (1024 * 1024),
                "avg_known_fraction": sum(known) / len(known) if known else 1.0,
                "shrinks": policy.shrink_statistics.total_shrinks,
            }
        )
    return ExperimentResult(
        experiment_id="ablation-budget",
        title=f"Budget shrink criterion ablation on {dataset} (C={capacity})",
        rows=rows,
    )
