"""Benchmark harness and per-table/figure experiment implementations."""

from repro.bench.harness import (
    DEFAULT_DATASETS,
    LARGE_DATASETS,
    ExperimentResult,
    PolicyRunResult,
    clear_network_cache,
    load_network_cached,
    run_policy,
)

__all__ = [
    "DEFAULT_DATASETS",
    "LARGE_DATASETS",
    "ExperimentResult",
    "PolicyRunResult",
    "clear_network_cache",
    "load_network_cached",
    "run_policy",
]
