"""Grouped provenance tracking (Section 5.2).

Instead of tracking provenance from individual vertices, vertices are
partitioned into ``m`` groups (by attribute, geography, clustering, or
round-robin) and provenance vectors have one slot per group.  The result of
a query is the quantity at each vertex that originates from each *group*.
Space and time drop to ``O(m * |V|)`` and ``O(m)`` per interaction.
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping, Optional, Sequence, Union

from repro.core.interaction import Vertex
from repro.exceptions import PolicyConfigurationError
from repro.policies.base import StoreArgument
from repro.scalable.reduced import ReducedVectorPolicy

__all__ = ["GroupedProportionalPolicy"]

#: A group assignment: either an explicit mapping or a callable.
GroupAssignment = Union[Mapping[Vertex, Hashable], Callable[[Vertex], Hashable]]


class GroupedProportionalPolicy(ReducedVectorPolicy):
    """Proportional provenance aggregated over vertex groups."""

    name = "proportional-grouped"

    def __init__(
        self,
        groups: Sequence[Hashable],
        assignment: GroupAssignment,
        *,
        default_group: Optional[Hashable] = None,
        store: StoreArgument = None,
    ) -> None:
        """Create a grouped policy.

        Parameters
        ----------
        groups:
            The group labels, one provenance slot each.
        assignment:
            Either a mapping ``vertex -> group`` or a callable computing the
            group of a vertex (e.g. ``lambda v: v % 10`` for round-robin).
        default_group:
            Group used for vertices missing from a mapping assignment.  When
            omitted, an unmapped vertex raises
            :class:`~repro.exceptions.PolicyConfigurationError` at processing
            time.
        """
        groups = list(dict.fromkeys(groups))
        if not groups:
            raise PolicyConfigurationError("at least one group is required")
        super().__init__(slot_labels=groups, store=store)
        self._group_index = {group: position for position, group in enumerate(groups)}
        self._assignment = assignment
        self._default_group = default_group
        if default_group is not None and default_group not in self._group_index:
            raise PolicyConfigurationError(
                f"default group {default_group!r} is not one of the declared groups"
            )

    @classmethod
    def round_robin(
        cls, vertices: Sequence[Vertex], num_groups: int, **options
    ) -> "GroupedProportionalPolicy":
        """Assign vertices to ``num_groups`` groups in round-robin order.

        This is the allocation used in the paper's experiments (Section 7.3),
        which notes that runtime and memory are insensitive to how vertices
        are allocated to groups.  Extra keyword arguments (e.g. ``store=``)
        are forwarded to the constructor.
        """
        if num_groups <= 0:
            raise PolicyConfigurationError(
                f"number of groups must be positive, got {num_groups!r}"
            )
        assignment = {
            vertex: position % num_groups for position, vertex in enumerate(vertices)
        }
        return cls(groups=list(range(num_groups)), assignment=assignment, **options)

    @property
    def m(self) -> int:
        """Number of groups."""
        return self.num_slots

    def group_of(self, vertex: Vertex) -> Hashable:
        """The group label assigned to ``vertex``."""
        if callable(self._assignment):
            group = self._assignment(vertex)
        else:
            group = self._assignment.get(vertex, self._default_group)
        if group is None or group not in self._group_index:
            raise PolicyConfigurationError(
                f"vertex {vertex!r} maps to unknown group {group!r}; declare the "
                f"group or provide a default_group"
            )
        return group

    def slot_of(self, origin: Vertex) -> int:
        return self._group_index[self.group_of(origin)]
