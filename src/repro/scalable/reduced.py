"""Reduced-dimension proportional provenance (Sections 5.1 and 5.2).

Selective and grouped provenance tracking replace the ``|V|``-length
provenance vectors of the full proportional policy with short vectors of
length ``k + 1`` (k tracked vertices plus an "everything else" slot) or
``m`` (m vertex groups).  Both share the same propagation arithmetic —
Algorithm 3 over dense numpy vectors — and differ only in how an origin
vertex is mapped to a vector slot.  :class:`ReducedVectorPolicy` implements
the shared machinery.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Sequence

import numpy as np

from repro.core.interaction import Interaction, Vertex
from repro.core.provenance import OriginSet
from repro.exceptions import PolicyConfigurationError
from repro.policies.base import SelectionPolicy, StoreArgument

__all__ = ["ReducedVectorPolicy"]

_PRUNE_EPSILON = 1e-12


class ReducedVectorPolicy(SelectionPolicy):
    """Proportional provenance over a reduced set of origin slots.

    Subclasses define the slot universe (via ``slot_labels``) and the
    mapping from an origin vertex to a slot index (:meth:`slot_of`).  The
    propagation is identical to the dense proportional policy, except the
    per-vertex vectors have ``len(slot_labels)`` components instead of
    ``|V|`` — giving the ``O(k * |V|)`` space and ``O(k)`` per-interaction
    time bounds of the paper.  The slot vectors have a fixed dimension, so
    the dense matrix store backend applies to them directly.
    """

    tracks_provenance = True
    supports_paths = False

    def __init__(
        self, slot_labels: Sequence[Hashable], *, store: StoreArgument = None
    ) -> None:
        if not slot_labels:
            raise PolicyConfigurationError("at least one provenance slot is required")
        super().__init__(store=store)
        self._slot_labels: List[Hashable] = list(slot_labels)
        self._vectors = self._make_store("vectors", dimension=len(self._slot_labels))
        self._totals = self._make_store("totals")

    # ------------------------------------------------------------------
    # to implement
    # ------------------------------------------------------------------
    def slot_of(self, origin: Vertex) -> int:
        """Map an origin vertex to the index of its provenance slot."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def slot_labels(self) -> List[Hashable]:
        """Labels of the provenance slots, in vector order."""
        return list(self._slot_labels)

    @property
    def num_slots(self) -> int:
        return len(self._slot_labels)

    def reset(self, vertices: Sequence[Vertex] = ()) -> None:
        self._vectors = self._make_store("vectors", dimension=len(self._slot_labels))
        self._totals = self._make_store("totals")

    def _zero_vector(self) -> np.ndarray:
        return np.zeros(self.num_slots, dtype=np.float64)

    def _vector(self, vertex: Vertex) -> np.ndarray:
        return self._vectors.get_or_create(vertex, self._zero_vector)

    def process(self, interaction: Interaction) -> None:
        source = interaction.source
        destination = interaction.destination
        quantity = interaction.quantity
        totals = self._totals
        source_total = totals.get(source, 0.0)

        # Arena-backed stores may reallocate on row allocation: reserve both
        # rows before fetching either view so neither can go stale.
        ensure_rows = getattr(self._vectors, "ensure_rows", None)
        if ensure_rows is not None:
            ensure_rows((source, destination))
        source_vector = self._vector(source)
        destination_vector = self._vector(destination)

        if quantity >= source_total:
            destination_vector += source_vector
            newborn = quantity - source_total
            if newborn > 0:
                destination_vector[self.slot_of(source)] += newborn
            source_vector[:] = 0.0
            totals.put(source, 0.0)
            totals.merge(destination, quantity)
        else:
            fraction = quantity / source_total
            moved = source_vector * fraction
            destination_vector += moved
            source_vector -= moved
            totals.put(source, source_total - quantity)
            totals.merge(destination, quantity)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def buffer_total(self, vertex: Vertex) -> float:
        return self._totals.get(vertex, 0.0)

    def origins(self, vertex: Vertex) -> OriginSet:
        """Origin decomposition labelled by slot label (vertex, group, ...)."""
        vector = self._vectors.get(vertex)
        origin_set = OriginSet()
        if vector is None:
            return origin_set
        for position in np.nonzero(vector > _PRUNE_EPSILON)[0]:
            origin_set.add(self._slot_labels[position], float(vector[position]))
        return origin_set

    def slot_quantities(self, vertex: Vertex) -> Dict[Hashable, float]:
        """All slot quantities of ``vertex`` including zero slots."""
        vector = self._vectors.get(vertex)
        if vector is None:
            return {label: 0.0 for label in self._slot_labels}
        return {
            label: float(vector[position])
            for position, label in enumerate(self._slot_labels)
        }

    def tracked_vertices(self) -> Iterator[Vertex]:
        return (vertex for vertex, total in self._totals.items() if total > 0)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        return len(self._vectors) * self.num_slots
