"""Sparse provenance-vector store shared by the scope-limiting policies.

The windowing and budget-based approaches of Section 5.3 both maintain
sparse provenance vectors (dict of ``origin -> quantity`` per vertex) and
apply the same proportional transfer arithmetic as Algorithm 3; they differ
only in when and how vectors are truncated.  :class:`SparseVectorStore`
centralises the transfer arithmetic so the policies only implement their
truncation rules.

The per-vertex vectors themselves live in a pluggable
:class:`~repro.stores.ProvenanceStore` backend (plain dicts by default), so
the scope-limiting policies participate in spill-to-disk runs like every
other policy.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.core.interaction import Vertex
from repro.core.provenance import OriginSet
from repro.stores import DictStore, ProvenanceStore

__all__ = ["SparseVectorStore"]

_PRUNE_EPSILON = 1e-12


class SparseVectorStore:
    """Per-vertex sparse provenance vectors with proportional transfer ops."""

    __slots__ = ("_vectors",)

    def __init__(self, backing: Optional[ProvenanceStore] = None) -> None:
        self._vectors: ProvenanceStore = backing if backing is not None else DictStore()

    # ------------------------------------------------------------------
    # basic access
    # ------------------------------------------------------------------
    def vector(self, vertex: Vertex) -> Dict[Vertex, float]:
        """The (mutable) sparse vector of ``vertex``, created on demand."""
        return self._vectors.get_or_create(vertex, dict)

    def peek(self, vertex: Vertex) -> Dict[Vertex, float]:
        """A copy of the sparse vector of ``vertex`` (empty if untouched)."""
        return dict(self._vectors.get(vertex) or {})

    def origins(self, vertex: Vertex) -> OriginSet:
        """The vector of ``vertex`` as an :class:`OriginSet`."""
        return OriginSet(self._vectors.get(vertex) or {})

    def replace(self, vertex: Vertex, vector: Dict[Vertex, float]) -> None:
        """Overwrite the vector of ``vertex`` (used by window resets)."""
        self._vectors.put(vertex, dict(vector))

    def vertices(self) -> Iterator[Vertex]:
        """Vertices with an allocated (possibly empty) vector."""
        return iter(self._vectors.keys())

    def clear(self) -> None:
        self._vectors.clear()

    @property
    def backing(self) -> ProvenanceStore:
        """The provenance-store backend holding the vectors."""
        return self._vectors

    # ------------------------------------------------------------------
    # proportional arithmetic
    # ------------------------------------------------------------------
    def transfer_all(self, source: Vertex, destination: Vertex) -> None:
        """Move the whole source vector into the destination vector."""
        source_vector = self.vector(source)
        destination_vector = self.vector(destination)
        for origin, amount in source_vector.items():
            destination_vector[origin] = destination_vector.get(origin, 0.0) + amount
        source_vector.clear()

    def transfer_fraction(
        self, source: Vertex, destination: Vertex, fraction: float
    ) -> None:
        """Move ``fraction`` of every component from source to destination."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be within [0, 1], got {fraction!r}")
        source_vector = self.vector(source)
        destination_vector = self.vector(destination)
        keep = 1.0 - fraction
        for origin in list(source_vector):
            amount = source_vector[origin]
            moved = amount * fraction
            destination_vector[origin] = destination_vector.get(origin, 0.0) + moved
            remaining = amount * keep
            if remaining > _PRUNE_EPSILON:
                source_vector[origin] = remaining
            else:
                del source_vector[origin]

    def add(self, vertex: Vertex, origin: Vertex, amount: float) -> None:
        """Add ``amount`` of quantity originating at ``origin`` to ``vertex``."""
        if amount <= 0:
            return
        vector = self.vector(vertex)
        vector[origin] = vector.get(origin, 0.0) + amount

    def apply_interaction(
        self,
        source: Vertex,
        destination: Vertex,
        quantity: float,
        source_total: float,
    ) -> None:
        """Apply Algorithm 3's vector updates for one interaction.

        ``source_total`` is the buffered quantity ``|B_source|`` *before* the
        interaction; the caller maintains scalar totals separately (the
        windowing approach shares one set of totals between two stores).
        """
        if quantity >= source_total:
            self.transfer_all(source, destination)
            newborn = quantity - source_total
            if newborn > 0:
                self.add(destination, source, newborn)
        else:
            self.transfer_fraction(source, destination, quantity / source_total)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        """Total number of non-zero components over all vectors.

        Counted incrementally on spilling backends (no cold-tier scan).
        """
        return self._vectors.entry_total()

    def list_lengths(self) -> Iterator[Tuple[Vertex, int]]:
        """``(vertex, number of components)`` pairs for every vector."""
        return ((vertex, len(vector)) for vertex, vector in self._vectors.items())
