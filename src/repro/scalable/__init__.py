"""Scalable variants of proportional provenance tracking (Section 5)."""

from repro.scalable.budget import (
    BudgetProportionalPolicy,
    ShrinkStatistics,
    keep_by_priority,
    keep_largest,
)
from repro.scalable.grouped import GroupedProportionalPolicy
from repro.scalable.reduced import ReducedVectorPolicy
from repro.scalable.selective import SelectiveProportionalPolicy
from repro.scalable.time_window import TimeWindowedProportionalPolicy
from repro.scalable.vector_store import SparseVectorStore
from repro.scalable.windowing import WindowedProportionalPolicy

__all__ = [
    "TimeWindowedProportionalPolicy",
    "BudgetProportionalPolicy",
    "ShrinkStatistics",
    "keep_by_priority",
    "keep_largest",
    "GroupedProportionalPolicy",
    "ReducedVectorPolicy",
    "SelectiveProportionalPolicy",
    "SparseVectorStore",
    "WindowedProportionalPolicy",
]
