"""Time-based windowing for scope-limited proportional provenance.

Section 5.3.1 of the paper defines the window ``W`` in *numbers of
interactions*.  In many streaming deployments the natural guarantee is a
*time* horizon instead ("we can explain any quantity generated during the
last hour").  :class:`TimeWindowedProportionalPolicy` provides that variant:
it keeps the same odd/even double-buffer scheme, but resets are triggered
when the interaction timestamps cross multiples of the window length, so
provenance is exact for quantities generated within the last ``W`` to
``2W`` time units.

The conclusions of the paper's windowing experiment carry over directly:
larger windows mean fewer resets (less time spent resetting, lower
information loss) and more retained provenance (more memory).
"""

from __future__ import annotations

from typing import Dict, Iterator, Sequence

from repro.core.interaction import Interaction, Vertex
from repro.core.provenance import OriginSet, UNKNOWN_ORIGIN
from repro.exceptions import PolicyConfigurationError
from repro.policies.base import SelectionPolicy, StoreArgument
from repro.scalable.vector_store import SparseVectorStore

__all__ = ["TimeWindowedProportionalPolicy"]


class TimeWindowedProportionalPolicy(SelectionPolicy):
    """Proportional provenance exact for the last ``window`` *time units*."""

    name = "proportional-time-windowed"
    tracks_provenance = True
    supports_paths = False

    def __init__(
        self,
        window: float,
        *,
        start_time: float = 0.0,
        store: StoreArgument = None,
    ) -> None:
        """Create a time-windowed policy.

        Parameters
        ----------
        window:
            Length of the guarantee window in the same time unit as the
            interaction timestamps; must be positive.
        start_time:
            Timestamp at which the first window begins (default 0.0, i.e.
            window boundaries fall at ``start_time + i * window``).
        """
        if window <= 0:
            raise PolicyConfigurationError(
                f"window length must be positive, got {window!r}"
            )
        super().__init__(store=store)
        self.window = float(window)
        self.start_time = float(start_time)
        self._totals = self._make_store("totals")
        self._odd = SparseVectorStore(self._make_store("odd"))
        self._even = SparseVectorStore(self._make_store("even"))
        self._boundaries_crossed = 0
        self._resets = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(self, vertices: Sequence[Vertex] = ()) -> None:
        self._totals = self._make_store("totals")
        self._odd = SparseVectorStore(self._make_store("odd"))
        self._even = SparseVectorStore(self._make_store("even"))
        self._boundaries_crossed = 0
        self._resets = 0

    def _boundary_index(self, time: float) -> int:
        """Number of whole windows elapsed by ``time``."""
        if time <= self.start_time:
            return 0
        return int((time - self.start_time) // self.window)

    def process(self, interaction: Interaction) -> None:
        # Cross any window boundaries that lie before this interaction.
        target_boundary = self._boundary_index(interaction.time)
        while self._boundaries_crossed < target_boundary:
            self._boundaries_crossed += 1
            self._reset_one_store(self._boundaries_crossed)

        source = interaction.source
        destination = interaction.destination
        quantity = interaction.quantity
        source_total = self._totals.get(source, 0.0)

        self._odd.apply_interaction(source, destination, quantity, source_total)
        self._even.apply_interaction(source, destination, quantity, source_total)

        if quantity >= source_total:
            self._totals.put(source, 0.0)
        else:
            self._totals.put(source, source_total - quantity)
        self._totals.merge(destination, quantity)

    def _reset_one_store(self, boundary_index: int) -> None:
        """Reset the odd or even store when a window boundary is crossed."""
        store = self._odd if boundary_index % 2 == 1 else self._even
        for vertex, total in self._totals.items():
            if total > 0:
                store.replace(vertex, {UNKNOWN_ORIGIN: total})
            else:
                store.replace(vertex, {})
        self._resets += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _query_store(self) -> SparseVectorStore:
        if self._resets == 0:
            return self._even
        last_reset_was_odd = self._boundaries_crossed % 2 == 1
        return self._even if last_reset_was_odd else self._odd

    def buffer_total(self, vertex: Vertex) -> float:
        return self._totals.get(vertex, 0.0)

    def origins(self, vertex: Vertex) -> OriginSet:
        return self._query_store().origins(vertex)

    def known_fraction(self, vertex: Vertex) -> float:
        """Fraction of the buffered quantity whose origin is still tracked."""
        origins = self.origins(vertex)
        total = origins.total
        if total <= 0:
            return 1.0
        return origins.known_total / total

    def tracked_vertices(self) -> Iterator[Vertex]:
        return (vertex for vertex, total in self._totals.items() if total > 0)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def resets_performed(self) -> int:
        """Number of window boundaries at which a store was reset."""
        return self._resets

    def entry_count(self) -> int:
        return self._odd.entry_count() + self._even.entry_count()
