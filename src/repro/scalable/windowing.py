"""The windowing approach to scope-limited proportional provenance (5.3.1).

Exact proportional provenance over the full interaction history is
infeasible on large networks, so the windowing approach guarantees exact
provenance only for quantities generated during the last ``W`` to ``2W``
interactions.  Every vertex keeps *two* sparse provenance vectors,
``p_odd`` and ``p_even``; both are updated at every interaction, but at every
``W``-th interaction one of them (alternating odd/even multiples of ``W``)
is reset to ``[(UNKNOWN_ORIGIN, |B_v|)]``.  Queries always use the vector
that was reset *least* recently, which therefore covers at least the last
``W`` interactions.
"""

from __future__ import annotations

from typing import Dict, Iterator, Sequence

from repro.core.interaction import Interaction, Vertex
from repro.core.provenance import OriginSet, UNKNOWN_ORIGIN
from repro.exceptions import PolicyConfigurationError
from repro.policies.base import SelectionPolicy, StoreArgument
from repro.scalable.vector_store import SparseVectorStore

__all__ = ["WindowedProportionalPolicy"]


class WindowedProportionalPolicy(SelectionPolicy):
    """Proportional provenance with an interaction-count window guarantee."""

    name = "proportional-windowed"
    tracks_provenance = True
    supports_paths = False

    def __init__(self, window: int, *, store: StoreArgument = None) -> None:
        if window <= 0:
            raise PolicyConfigurationError(
                f"window size must be a positive number of interactions, got {window!r}"
            )
        super().__init__(store=store)
        self.window = window
        self._totals = self._make_store("totals")
        self._odd = SparseVectorStore(self._make_store("odd"))
        self._even = SparseVectorStore(self._make_store("even"))
        self._interactions_processed = 0
        # Number of window boundaries hit so far; parity decides which store
        # is reset next and which one queries should use.
        self._resets = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(self, vertices: Sequence[Vertex] = ()) -> None:
        self._totals = self._make_store("totals")
        self._odd = SparseVectorStore(self._make_store("odd"))
        self._even = SparseVectorStore(self._make_store("even"))
        self._interactions_processed = 0
        self._resets = 0

    def process(self, interaction: Interaction) -> None:
        source = interaction.source
        destination = interaction.destination
        quantity = interaction.quantity
        source_total = self._totals.get(source, 0.0)

        # Both stores receive every update (Figure 4 of the paper).
        self._odd.apply_interaction(source, destination, quantity, source_total)
        self._even.apply_interaction(source, destination, quantity, source_total)

        if quantity >= source_total:
            self._totals.put(source, 0.0)
        else:
            self._totals.put(source, source_total - quantity)
        self._totals.merge(destination, quantity)

        self._interactions_processed += 1
        if self._interactions_processed % self.window == 0:
            self._reset_one_store()

    def _reset_one_store(self) -> None:
        """Reset the odd or the even store at a window boundary.

        Odd multiples of ``W`` reset ``p_odd``; even multiples reset
        ``p_even``.  A reset replaces every vertex's vector with a single
        entry attributing its whole buffered quantity to the artificial
        :data:`UNKNOWN_ORIGIN` vertex.
        """
        boundary_index = self._interactions_processed // self.window
        store = self._odd if boundary_index % 2 == 1 else self._even
        for vertex, total in self._totals.items():
            if total > 0:
                store.replace(vertex, {UNKNOWN_ORIGIN: total})
            else:
                store.replace(vertex, {})
        self._resets += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _query_store(self) -> SparseVectorStore:
        """The store that was reset least recently (or either, before any reset)."""
        if self._resets == 0:
            return self._even
        # The store reset at the most recent boundary is the "younger" one;
        # queries must use the other one to cover at least W interactions.
        last_reset_was_odd = (self._interactions_processed // self.window) % 2 == 1
        return self._even if last_reset_was_odd else self._odd

    def buffer_total(self, vertex: Vertex) -> float:
        return self._totals.get(vertex, 0.0)

    def origins(self, vertex: Vertex) -> OriginSet:
        return self._query_store().origins(vertex)

    def known_fraction(self, vertex: Vertex) -> float:
        """Fraction of the buffered quantity whose origin is still tracked."""
        origin_set = self.origins(vertex)
        total = origin_set.total
        if total <= 0:
            return 1.0
        return origin_set.known_total / total

    def tracked_vertices(self) -> Iterator[Vertex]:
        return (vertex for vertex, total in self._totals.items() if total > 0)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def interactions_processed(self) -> int:
        return self._interactions_processed

    @property
    def resets_performed(self) -> int:
        """Number of window boundaries at which a store was reset."""
        return self._resets

    def entry_count(self) -> int:
        return self._odd.entry_count() + self._even.entry_count()
