"""Budget-based proportional provenance (Section 5.3.2).

Every vertex is allotted a maximum capacity ``C`` for its sparse provenance
vector.  Whenever an update would leave a vector with more than ``C``
entries, the vector is *shrunk*: a fraction ``f`` of ``C`` entries is kept
(by default the ones with the largest quantities) and the total quantity of
the removed entries is merged into the artificial
:data:`~repro.core.provenance.UNKNOWN_ORIGIN` entry.  Space becomes
``O(|V| * C)`` while the information loss stays limited because shrinks are
infrequent in practice (Table 9 of the paper).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.interaction import Interaction, Vertex
from repro.core.provenance import OriginSet, UNKNOWN_ORIGIN
from repro.exceptions import PolicyConfigurationError
from repro.policies.base import SelectionPolicy, StoreArgument
from repro.scalable.vector_store import SparseVectorStore

__all__ = ["BudgetProportionalPolicy", "ShrinkStatistics", "keep_largest", "keep_by_priority"]

#: A shrink criterion: given ``(origin, quantity)`` items and the number of
#: entries to keep, return the entries to *keep*.
ShrinkCriterion = Callable[[List[Tuple[Vertex, float]], int], List[Tuple[Vertex, float]]]


def keep_largest(items: List[Tuple[Vertex, float]], keep: int) -> List[Tuple[Vertex, float]]:
    """Keep the ``keep`` entries with the largest quantities.

    This is the default criterion suggested by the paper; note (as the paper
    does) that it can bias provenance towards origins that generate
    quantities early.
    """
    ranked = sorted(items, key=lambda item: (-item[1], repr(item[0])))
    return ranked[:keep]


def keep_by_priority(priority: Dict[Vertex, float]) -> ShrinkCriterion:
    """Build a criterion keeping the entries whose origins have top priority.

    ``priority`` maps origins to importance scores (higher is more
    important); origins without a score rank lowest.
    """

    def criterion(items: List[Tuple[Vertex, float]], keep: int) -> List[Tuple[Vertex, float]]:
        ranked = sorted(
            items,
            key=lambda item: (-priority.get(item[0], float("-inf")), -item[1], repr(item[0])),
        )
        return ranked[:keep]

    return criterion


class ShrinkStatistics:
    """Bookkeeping of how often and where budget shrinks happened (Table 9)."""

    __slots__ = ("shrinks_by_vertex", "total_shrinks")

    def __init__(self) -> None:
        self.shrinks_by_vertex: Dict[Vertex, int] = {}
        self.total_shrinks = 0

    def record(self, vertex: Vertex) -> None:
        self.shrinks_by_vertex[vertex] = self.shrinks_by_vertex.get(vertex, 0) + 1
        self.total_shrinks += 1

    def vertices_shrunk(self) -> int:
        """Number of distinct vertices whose vector was shrunk at least once."""
        return len(self.shrinks_by_vertex)

    def average_shrinks(self, over_vertices: Optional[int] = None) -> float:
        """Average number of shrinks per vertex.

        When ``over_vertices`` is given, the average is computed over that
        many vertices (the paper averages over vertices with non-empty
        buffers); otherwise over the vertices that were shrunk at least once.
        """
        denominator = over_vertices if over_vertices else len(self.shrinks_by_vertex)
        if not denominator:
            return 0.0
        return self.total_shrinks / denominator


class BudgetProportionalPolicy(SelectionPolicy):
    """Proportional provenance with a per-vertex entry budget ``C``."""

    name = "proportional-budget"
    tracks_provenance = True
    supports_paths = False

    def __init__(
        self,
        capacity: int,
        *,
        keep_fraction: float = 0.7,
        criterion: ShrinkCriterion = keep_largest,
        store: StoreArgument = None,
    ) -> None:
        """Create a budget-based policy.

        Parameters
        ----------
        capacity:
            Maximum number of *named* origins a vertex vector may hold
            (the artificial unknown-origin entry does not count).
        keep_fraction:
            Fraction ``f`` of ``capacity`` kept at a shrink.  The paper
            suggests a value between 0.6 and 0.8.
        criterion:
            How to choose which entries survive a shrink; defaults to
            keeping the largest quantities.
        """
        if capacity <= 0:
            raise PolicyConfigurationError(
                f"budget capacity must be positive, got {capacity!r}"
            )
        if not 0.0 < keep_fraction <= 1.0:
            raise PolicyConfigurationError(
                f"keep_fraction must be in (0, 1], got {keep_fraction!r}"
            )
        super().__init__(store=store)
        self.capacity = capacity
        self.keep_fraction = keep_fraction
        self.criterion = criterion
        self._store = SparseVectorStore(self._make_store("vectors"))
        self._totals = self._make_store("totals")
        self.shrink_statistics = ShrinkStatistics()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(self, vertices: Sequence[Vertex] = ()) -> None:
        self._store = SparseVectorStore(self._make_store("vectors"))
        self._totals = self._make_store("totals")
        self.shrink_statistics = ShrinkStatistics()

    def process(self, interaction: Interaction) -> None:
        source = interaction.source
        destination = interaction.destination
        quantity = interaction.quantity
        source_total = self._totals.get(source, 0.0)

        self._store.apply_interaction(source, destination, quantity, source_total)

        if quantity >= source_total:
            self._totals.put(source, 0.0)
        else:
            self._totals.put(source, source_total - quantity)
        self._totals.merge(destination, quantity)

        self._enforce_budget(destination)

    def _enforce_budget(self, vertex: Vertex) -> None:
        """Shrink the vector of ``vertex`` if it exceeds the capacity."""
        vector = self._store.vector(vertex)
        named = [
            (origin, amount)
            for origin, amount in vector.items()
            if origin is not UNKNOWN_ORIGIN
        ]
        if len(named) <= self.capacity:
            return

        keep_count = max(1, int(self.capacity * self.keep_fraction))
        kept = self.criterion(list(named), keep_count)
        kept_origins = {origin for origin, _ in kept}
        removed_quantity = sum(
            amount for origin, amount in named if origin not in kept_origins
        )

        new_vector: Dict[Vertex, float] = {origin: amount for origin, amount in kept}
        unknown = vector.get(UNKNOWN_ORIGIN, 0.0) + removed_quantity
        if unknown > 0:
            new_vector[UNKNOWN_ORIGIN] = unknown
        self._store.replace(vertex, new_vector)
        self.shrink_statistics.record(vertex)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def buffer_total(self, vertex: Vertex) -> float:
        return self._totals.get(vertex, 0.0)

    def origins(self, vertex: Vertex) -> OriginSet:
        return self._store.origins(vertex)

    def known_fraction(self, vertex: Vertex) -> float:
        """Fraction of the buffered quantity whose origin is still tracked."""
        origin_set = self.origins(vertex)
        total = origin_set.total
        if total <= 0:
            return 1.0
        return origin_set.known_total / total

    def tracked_vertices(self) -> Iterator[Vertex]:
        return (vertex for vertex, total in self._totals.items() if total > 0)

    def non_empty_vertex_count(self) -> int:
        """Number of vertices currently holding a positive quantity."""
        return sum(1 for total in self._totals.values() if total > 0)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        return self._store.entry_count()
