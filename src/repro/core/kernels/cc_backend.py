"""Compiled-C kernel backend: a tiny translation unit built on first use
with the system C compiler and loaded through :mod:`ctypes`.

Nothing is installed: the source below is written to a per-user cache
directory (``REPRO_KERNEL_CACHE``, else ``~/.cache/repro-kernels``,
else a temp dir), compiled once per source hash with strict IEEE flags
(``-ffp-contract=off``, no fast-math — bit-identical doubles, no FMA
contraction) and reused across processes via an atomic rename.  Any
compiler absence or failure surfaces as an exception that the
dispatcher treats as "backend unavailable".

The exported functions replicate the columnar ``process_block`` loops
operation for operation; :func:`repro.core.kernels._reference.verify`
confirms bit-identity before a build is ever served.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Callable, Optional

__all__ = ["BACKEND", "available", "build"]

BACKEND = "cc"

_CANDIDATE_COMPILERS = ("cc", "gcc", "clang")

#: Strict IEEE semantics: optimise, but never contract a*b+c into an FMA
#: and never reassociate — the kernels must match Python float for float.
#: ``-ftree-vectorize`` is safe under these rules: the relay/split loops
#: below are element-wise independent, so SIMD lanes never reorder the
#: operations *within* an element, only run distinct elements together.
_CFLAGS = (
    "-O2",
    "-fPIC",
    "-shared",
    "-ffp-contract=off",
    "-fno-unsafe-math-optimizations",
    "-ftree-vectorize",
)

_SOURCE = r"""
#include <stdint.h>

/* Algorithm 1 without provenance: scalar totals and newborn bookkeeping.
 * Mirrors NoProvenancePolicy.process_block row for row.  Returns how many
 * first-newborn vertex ids were appended to gen_order. */
int64_t noprov_run(const int32_t *src, const int32_t *dst, const double *qty,
                   int64_t n, double *buffers, double *generated,
                   int64_t *gen_order)
{
    int64_t appended = 0;
    for (int64_t i = 0; i < n; i++) {
        int32_t source = src[i];
        double quantity = qty[i];
        double available = buffers[source];
        if (quantity < available) {
            buffers[source] = available - quantity;
        } else {
            buffers[source] = 0.0;
            if (quantity > available) {
                if (generated[source] == 0.0) {
                    gen_order[appended++] = (int64_t)source;
                }
                generated[source] += quantity - available;
            }
        }
        buffers[dst[i]] += quantity;
    }
    return appended;
}

/* Algorithm 3 dense proportional selection over arena rows.  arena is
 * the base of one contiguous row-major (capacity, universe) double
 * matrix (the CSR-flattened layout of DenseNumpyStore); rows maps each
 * universe position to its arena row; totals holds the position-indexed
 * buffer totals.  Row addresses are computed by index arithmetic — no
 * per-row pointer table to chase.  The three branches (zero source
 * shortcut, full relay, proportional split) replicate
 * ProportionalDensePolicy.process_block element for element, including
 * the self-loop aliasing behaviour when source == destination.
 *
 * The relay/split inner loops walk the universe in blocked strides of
 * RELAY_BLOCK with a fully unrolled body, then a scalar tail.  Every
 * element's arithmetic is independent of every other's and keeps its
 * exact per-element operation order, so the compiler can keep whole
 * blocks in SIMD registers while results stay bit-identical to the
 * scalar loop — including when source == destination aliases the two
 * vectors (distinct indices never interact within a block). */
#define RELAY_BLOCK 4

static void relay_add(double *destination_vector, const double *source_vector,
                      int64_t universe)
{
    int64_t j = 0;
    for (; j + RELAY_BLOCK <= universe; j += RELAY_BLOCK) {
        destination_vector[j]     += source_vector[j];
        destination_vector[j + 1] += source_vector[j + 1];
        destination_vector[j + 2] += source_vector[j + 2];
        destination_vector[j + 3] += source_vector[j + 3];
    }
    for (; j < universe; j++) {
        destination_vector[j] += source_vector[j];
    }
}

static void relay_clear(double *source_vector, int64_t universe)
{
    int64_t j = 0;
    for (; j + RELAY_BLOCK <= universe; j += RELAY_BLOCK) {
        source_vector[j]     = 0.0;
        source_vector[j + 1] = 0.0;
        source_vector[j + 2] = 0.0;
        source_vector[j + 3] = 0.0;
    }
    for (; j < universe; j++) {
        source_vector[j] = 0.0;
    }
}

static void split_move(double *destination_vector, double *source_vector,
                       double fraction, int64_t universe)
{
    int64_t j = 0;
    for (; j + RELAY_BLOCK <= universe; j += RELAY_BLOCK) {
        double moved0 = source_vector[j]     * fraction;
        double moved1 = source_vector[j + 1] * fraction;
        double moved2 = source_vector[j + 2] * fraction;
        double moved3 = source_vector[j + 3] * fraction;
        destination_vector[j]     += moved0;
        destination_vector[j + 1] += moved1;
        destination_vector[j + 2] += moved2;
        destination_vector[j + 3] += moved3;
        source_vector[j]     -= moved0;
        source_vector[j + 1] -= moved1;
        source_vector[j + 2] -= moved2;
        source_vector[j + 3] -= moved3;
    }
    for (; j < universe; j++) {
        double moved = source_vector[j] * fraction;
        destination_vector[j] += moved;
        source_vector[j] -= moved;
    }
}

void propdense_run(const int32_t *src, const int32_t *dst, const double *qty,
                   int64_t n, int64_t universe, double *arena,
                   const int32_t *rows, double *totals)
{
    for (int64_t i = 0; i < n; i++) {
        int32_t source = src[i];
        int32_t destination = dst[i];
        double quantity = qty[i];
        double *source_vector = arena + (int64_t)rows[source] * universe;
        double *destination_vector = arena + (int64_t)rows[destination] * universe;
        double source_total = totals[source];
        if (source_total == 0.0) {
            if (quantity > 0.0) {
                destination_vector[source] += quantity;
            }
            totals[destination] += quantity;
        } else if (quantity >= source_total) {
            relay_add(destination_vector, source_vector, universe);
            double newborn = quantity - source_total;
            if (newborn > 0.0) {
                destination_vector[source] += newborn;
            }
            relay_clear(source_vector, universe);
            totals[source] = 0.0;
            totals[destination] += quantity;
        } else {
            double fraction = quantity / source_total;
            split_move(destination_vector, source_vector, fraction, universe);
            totals[source] = source_total - quantity;
            totals[destination] += quantity;
        }
    }
}
"""

_library: Optional[ctypes.CDLL] = None


def _compiler() -> Optional[str]:
    override = os.environ.get("CC")
    if override:
        return override if shutil.which(override) else None
    for candidate in _CANDIDATE_COMPILERS:
        if shutil.which(candidate):
            return candidate
    return None


def available() -> bool:
    """True when a usable C compiler is on PATH (``CC`` overrides)."""
    return _compiler() is not None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    home = Path.home()
    if os.access(home, os.W_OK):
        return home / ".cache" / "repro-kernels"
    return Path(tempfile.gettempdir()) / f"repro-kernels-{os.getuid()}"


def _compile_and_load() -> ctypes.CDLL:
    compiler = _compiler()
    if compiler is None:
        raise RuntimeError("no C compiler found on PATH")
    digest = hashlib.sha256(
        "\x00".join((_SOURCE, compiler, " ".join(_CFLAGS))).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    cache.mkdir(parents=True, exist_ok=True)
    library_path = cache / f"repro_kernels_{digest}.so"
    if not library_path.exists():
        source_path = cache / f"repro_kernels_{digest}.c"
        source_path.write_text(_SOURCE)
        scratch_path = cache / f".build_{digest}_{os.getpid()}.so"
        try:
            completed = subprocess.run(
                [compiler, *_CFLAGS, "-o", str(scratch_path), str(source_path)],
                capture_output=True,
                text=True,
            )
            if completed.returncode != 0:
                raise RuntimeError(
                    f"{compiler} failed ({completed.returncode}): "
                    f"{completed.stderr.strip()[:500]}"
                )
            os.replace(scratch_path, library_path)  # atomic publish
        finally:
            if scratch_path.exists():  # pragma: no cover - failed build residue
                scratch_path.unlink()
    return ctypes.CDLL(str(library_path))


def _load() -> ctypes.CDLL:
    global _library
    if _library is None:
        library = _compile_and_load()
        library.noprov_run.restype = ctypes.c_int64
        library.noprov_run.argtypes = [
            ctypes.c_void_p,  # src int32*
            ctypes.c_void_p,  # dst int32*
            ctypes.c_void_p,  # qty double*
            ctypes.c_int64,  # n
            ctypes.c_void_p,  # buffers double*
            ctypes.c_void_p,  # generated double*
            ctypes.c_void_p,  # gen_order int64*
        ]
        library.propdense_run.restype = None
        library.propdense_run.argtypes = [
            ctypes.c_void_p,  # src int32*
            ctypes.c_void_p,  # dst int32*
            ctypes.c_void_p,  # qty double*
            ctypes.c_int64,  # n
            ctypes.c_int64,  # universe
            ctypes.c_void_p,  # arena double*
            ctypes.c_void_p,  # rows int32*
            ctypes.c_void_p,  # totals double*
        ]
        _library = library
    return _library


def build(name: str) -> Callable:
    """Build (or load from cache) the kernel for ``name``.

    Callers guarantee contiguous arrays of the documented dtypes; the
    wrappers only forward raw data pointers.
    """
    library = _load()
    if name == "noprov":
        run = library.noprov_run

        def noprov(src, dst, qty, buffers, generated, gen_order):
            n = len(src)
            if n == 0:
                return 0
            return int(
                run(
                    src.ctypes.data,
                    dst.ctypes.data,
                    qty.ctypes.data,
                    n,
                    buffers.ctypes.data,
                    generated.ctypes.data,
                    gen_order.ctypes.data,
                )
            )

        return noprov
    if name == "proportional-dense":
        run = library.propdense_run

        def propdense(src, dst, qty, arena, rows, totals):
            n = len(src)
            if n == 0:
                return None
            run(
                src.ctypes.data,
                dst.ctypes.data,
                qty.ctypes.data,
                n,
                arena.shape[1],
                arena.ctypes.data,
                rows.ctypes.data,
                totals.ctypes.data,
            )
            return None

        return propdense
    raise KeyError(name)
