"""Pure reference implementations of the fused kernels, plus the
bit-identity check every compiled backend must pass before being served.

The references mirror, operation for operation, the columnar
``process_block`` loops in :mod:`repro.policies.no_provenance` and
:mod:`repro.policies.proportional` — the same reads, the same branch
structure, the same IEEE double arithmetic in the same order.  A
compiled candidate that disagrees on a single bit of any output is
rejected by :func:`verify` and the dispatcher demotes to the next
backend.

The proportional-dense reference works on the CSR-flattened arena layout
of :class:`repro.stores.DenseNumpyStore`: one contiguous
``(capacity, universe)`` float64 matrix plus an ``int32`` array mapping
each universe position to its arena row.  Verification runs against an
arena with spare capacity, a scattered (non-identity) row mapping and a
sentinel guard row, so a kernel that confuses positions with rows — or
writes outside its rows — cannot pass.
"""

from __future__ import annotations

import numpy as np

__all__ = ["noprov_reference", "propdense_reference", "verify"]


def noprov_reference(src, dst, qty, buffers, generated, gen_order):
    """Algorithm 1 without provenance: scalar totals, newborn bookkeeping.

    Mutates ``buffers`` / ``generated`` in place, writes first-newborn
    vertex ids into ``gen_order`` and returns how many were appended —
    the exact contract of the compiled kernels.
    """
    appended = 0
    for i in range(len(src)):
        source = int(src[i])
        quantity = float(qty[i])
        available = float(buffers[source])
        if quantity < available:
            buffers[source] = available - quantity
        else:
            buffers[source] = 0.0
            if quantity > available:
                if float(generated[source]) == 0.0:
                    gen_order[appended] = source
                    appended += 1
                generated[source] += quantity - available
        buffers[int(dst[i])] += quantity
    return appended


def propdense_reference(src, dst, qty, arena, rows, totals):
    """Algorithm 3 dense proportional selection over arena rows.

    ``arena`` is the ``(capacity, universe)`` float64 vector arena,
    ``rows`` the position → arena-row index (``int32``), ``totals`` the
    position-indexed buffer totals.  The three branches (zero-source
    shortcut, full relay, proportional split) replicate the columnar loop
    element for element, including the self-loop aliasing behaviour when
    source == destination (identical rows alias identical memory).
    """
    universe = len(totals)
    for i in range(len(src)):
        source = int(src[i])
        destination = int(dst[i])
        quantity = float(qty[i])
        source_vector = arena[int(rows[source])]
        destination_vector = arena[int(rows[destination])]
        source_total = float(totals[source])
        if source_total == 0.0:
            if quantity > 0.0:
                destination_vector[source] += quantity
            totals[destination] += quantity
        elif quantity >= source_total:
            for j in range(universe):
                destination_vector[j] += source_vector[j]
            newborn = quantity - source_total
            if newborn > 0.0:
                destination_vector[source] += newborn
            for j in range(universe):
                source_vector[j] = 0.0
            totals[source] = 0.0
            totals[destination] += quantity
        else:
            fraction = quantity / source_total
            for j in range(universe):
                moved = source_vector[j] * fraction
                destination_vector[j] += moved
                source_vector[j] -= moved
            totals[source] = source_total - quantity
            totals[destination] += quantity
    return None


# A tiny deterministic case exercising every branch: q < available,
# q == available (zeroes without newborn), q > available (newborn, both
# first and repeat), self-loops, zero-quantity rows, and fractional
# splits with non-terminating binary expansions (0.1, 0.3, ...) that
# would expose any reassociation or contraction in a compiled build.
_SRC = np.array([0, 1, 0, 2, 1, 0, 3, 2, 2, 1, 0, 3], dtype=np.int32)
_DST = np.array([1, 2, 2, 0, 0, 3, 3, 1, 2, 1, 0, 0], dtype=np.int32)
_QTY = np.array(
    [7.7, 0.1, 3.3, 12.25, 0.3, 4.9, 0.0, 2.2, 5.5, 1.1, 6.6, 0.7],
    dtype=np.float64,
)
_UNIVERSE = 4


def _noprov_case():
    buffers = np.array([2.5, 0.0, 1.1, 0.0], dtype=np.float64)
    generated = np.zeros(_UNIVERSE, dtype=np.float64)
    gen_order = np.full(_UNIVERSE, -1, dtype=np.int64)
    return buffers, generated, gen_order


def _propdense_case():
    # Capacity 7 > universe 4, scattered rows and an unused guard row full
    # of sentinel values: position/row confusion or out-of-row writes make
    # the whole-arena comparison fail.
    arena = np.zeros((7, _UNIVERSE), dtype=np.float64)
    rows = np.array([3, 0, 5, 2], dtype=np.int32)
    arena[6] = 123.456
    arena[rows[0], 0] = 2.5
    arena[rows[2], 2] = 1.1
    totals = np.array([2.5, 0.0, 1.1, 0.0], dtype=np.float64)
    return arena, rows, totals


def verify(name: str, fn) -> None:
    """Run ``fn`` against the pure reference on the branch-complete case
    and raise ``ValueError`` on any non-bit-identical output."""
    src, dst, qty = _SRC, _DST, _QTY
    if name == "noprov":
        buffers, generated, gen_order = _noprov_case()
        ref_buffers, ref_generated, ref_order = _noprov_case()
        count = fn(src, dst, qty, buffers, generated, gen_order)
        ref_count = noprov_reference(src, dst, qty, ref_buffers, ref_generated, ref_order)
        # Empty spans must be a no-op returning zero.
        if fn(src[:0], dst[:0], qty[:0], buffers, generated, gen_order[:0]) != 0:
            raise ValueError("noprov kernel mishandles an empty span")
        identical = (
            count == ref_count
            and np.array_equal(buffers, ref_buffers)
            and np.array_equal(generated, ref_generated)
            and np.array_equal(gen_order[:count], ref_order[:ref_count])
        )
        if not identical:
            raise ValueError("noprov kernel output is not bit-identical to the reference")
    elif name == "proportional-dense":
        arena, rows, totals = _propdense_case()
        ref_arena, ref_rows, ref_totals = _propdense_case()
        fn(src, dst, qty, arena, rows, totals)
        # Empty spans must be a no-op (the whole-arena comparison below
        # catches any stray write they make).
        fn(src[:0], dst[:0], qty[:0], arena, rows, totals)
        propdense_reference(src, dst, qty, ref_arena, ref_rows, ref_totals)
        identical = np.array_equal(totals, ref_totals) and np.array_equal(
            arena, ref_arena
        )
        if not identical:
            raise ValueError(
                "proportional-dense kernel output is not bit-identical to the reference"
            )
    else:  # pragma: no cover - guarded by get_kernel
        raise KeyError(name)
