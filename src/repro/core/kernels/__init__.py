"""Fused whole-run kernel tier: one dispatch seam, multiple backends.

The columnar fast path (``SelectionPolicy.process_block``) is numpy-
vectorised but still orchestrated per-batch from Python.  This package
fuses the hot inner loops into whole-run kernels resolved behind a
single seam:

``get_kernel(name)``
    Resolve the best available compiled backend for a kernel name
    (``"noprov"`` or ``"proportional-dense"``) and return a
    :class:`KernelHandle`, or ``None`` when no compiled backend is
    available — callers then fall back to the always-available pure
    fused path (``process_block`` driven over whole clip spans with
    preallocated scratch).

Backends are tried in order ``numba`` → ``cc``:

- :mod:`repro.core.kernels.numba_backend` — optional ``numba.njit``
  kernels, auto-detected at resolution time; absent numba is a normal
  condition, not an error.
- :mod:`repro.core.kernels.cc_backend` — a tiny C translation unit
  compiled on first use with the system C compiler (strict IEEE
  flags, no fast-math, ``-ffp-contract=off``) and loaded via
  :mod:`ctypes`; shared objects are cached by source hash.

Every candidate is warmed up and verified bit-for-bit against the pure
reference implementations in :mod:`repro.core.kernels._reference`
before being handed out; any compile failure or mismatch demotes to the
next backend.  ``REPRO_JIT=0`` (also ``false`` / ``off`` / ``no``)
disables compiled backends entirely.  Resolution work is accumulated in
:func:`compile_seconds` so the engine can report compile time measured
outside the timed region.
"""

from __future__ import annotations

import os
import time as _time
from typing import Callable, Dict, Optional

__all__ = [
    "KERNEL_NAMES",
    "KernelHandle",
    "backend_failures",
    "backend_of",
    "compile_seconds",
    "get_kernel",
    "jit_enabled",
    "reset",
]

#: Kernel names served by the compiled backends.
KERNEL_NAMES = ("noprov", "proportional-dense")

#: Environment values that disable compiled backends.
_DISABLED_VALUES = {"0", "false", "off", "no"}


class KernelHandle:
    """A resolved compiled kernel: ``fn`` plus the backend that built it."""

    __slots__ = ("name", "backend", "fn")

    def __init__(self, name: str, backend: str, fn: Callable) -> None:
        self.name = name
        self.backend = backend
        self.fn = fn

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelHandle(name={self.name!r}, backend={self.backend!r})"


#: Resolution cache: kernel name -> handle (or None when every backend
#: failed / was unavailable).  ``None`` is cached too so a run never pays
#: resolution twice.
_resolved: Dict[str, Optional[KernelHandle]] = {}

#: Why each (backend, kernel) candidate was rejected, for diagnostics.
_failures: Dict[str, str] = {}

#: Seconds spent resolving/compiling/verifying backends.
_compile_seconds = 0.0


def jit_enabled() -> bool:
    """True unless ``REPRO_JIT`` explicitly disables compiled backends."""
    value = os.environ.get("REPRO_JIT", "").strip().lower()
    return value not in _DISABLED_VALUES


def compile_seconds() -> float:
    """Total seconds spent resolving backends (compile + verify)."""
    return _compile_seconds


def backend_failures() -> Dict[str, str]:
    """Copy of the rejected-candidate log (``"backend:kernel" -> reason``)."""
    return dict(_failures)


def reset() -> None:
    """Forget resolved backends so tests can re-resolve under a changed
    environment (``REPRO_JIT``, monkeypatched backends)."""
    global _compile_seconds
    _resolved.clear()
    _failures.clear()
    _compile_seconds = 0.0


def get_kernel(name: str) -> Optional[KernelHandle]:
    """Resolve the best compiled backend for ``name`` (cached).

    Returns ``None`` when compiled backends are disabled, unavailable, or
    every candidate failed its build or bit-identity check; callers fall
    back to the pure fused path.
    """
    if name not in KERNEL_NAMES:
        raise KeyError(f"unknown kernel {name!r}; expected one of {KERNEL_NAMES}")
    if name in _resolved:
        return _resolved[name]
    handle = _build(name) if jit_enabled() else None
    _resolved[name] = handle
    return handle


def backend_of(name: str) -> Optional[str]:
    """Backend label serving ``name`` (``"numba"`` / ``"cc"``) or ``None``."""
    handle = get_kernel(name)
    return None if handle is None else handle.backend


def _build(name: str) -> Optional[KernelHandle]:
    global _compile_seconds
    from repro.core.kernels import _reference, cc_backend, numba_backend

    for backend in (numba_backend, cc_backend):
        if not backend.available():
            continue
        started = _time.perf_counter()
        try:
            fn = backend.build(name)
            _reference.verify(name, fn)
        except Exception as error:  # demote: fall through to the next backend
            _failures[f"{backend.BACKEND}:{name}"] = (
                f"{type(error).__name__}: {error}"
            )
            continue
        finally:
            _compile_seconds += _time.perf_counter() - started
        return KernelHandle(name, backend.BACKEND, fn)
    return None
