"""Optional ``numba.njit`` kernel backend, auto-detected at resolution.

numba is an optional extra: when it is importable both whole-run kernels
are JIT-compiled here (and verified bit-for-bit before use); when it is
absent — the normal case for a minimal install — :func:`available`
reports False and the dispatcher moves on to the compiled-C backend
without noise.

The proportional-dense kernel operates on the CSR-flattened arena layout
(one contiguous ``(capacity, universe)`` float64 matrix plus an ``int32``
position → row index): plain typed-array indexing, which nopython mode
compiles directly.  The old layout — a Python table of raw row pointers —
could not be expressed in nopython mode, which is why this backend used
to decline the kernel and demote to C.

Both kernels are compiled with ``fastmath=False``: no reassociation, no
FMA contraction — the build-time bit-identity gate
(:func:`repro.core.kernels._reference.verify`) rejects anything less.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["BACKEND", "available", "build"]

BACKEND = "numba"

try:  # pragma: no cover - exercised only when numba is installed
    import numba  # type: ignore

    _HAS_NUMBA = True
except Exception:  # ImportError, or a broken install raising anything else
    numba = None  # type: ignore[assignment]
    _HAS_NUMBA = False


def available() -> bool:
    """True when numba imported cleanly."""
    return _HAS_NUMBA


def build(name: str) -> Callable:  # pragma: no cover - requires numba
    if not _HAS_NUMBA:
        raise RuntimeError("numba is not installed")
    if name == "noprov":

        @numba.njit(cache=True, fastmath=False)
        def _noprov(src, dst, qty, buffers, generated, gen_order):
            appended = 0
            for i in range(src.shape[0]):
                source = src[i]
                quantity = qty[i]
                available_quantity = buffers[source]
                if quantity < available_quantity:
                    buffers[source] = available_quantity - quantity
                else:
                    buffers[source] = 0.0
                    if quantity > available_quantity:
                        if generated[source] == 0.0:
                            gen_order[appended] = source
                            appended += 1
                        generated[source] += quantity - available_quantity
                buffers[dst[i]] += quantity
            return appended

        def noprov(src, dst, qty, buffers, generated, gen_order):
            return int(_noprov(src, dst, qty, buffers, generated, gen_order))

        return noprov
    if name == "proportional-dense":

        @numba.njit(cache=True, fastmath=False)
        def _propdense(src, dst, qty, arena, rows, totals):
            universe = arena.shape[1]
            for i in range(src.shape[0]):
                source = src[i]
                destination = dst[i]
                quantity = qty[i]
                source_row = rows[source]
                destination_row = rows[destination]
                source_total = totals[source]
                if source_total == 0.0:
                    if quantity > 0.0:
                        arena[destination_row, source] += quantity
                    totals[destination] += quantity
                elif quantity >= source_total:
                    for j in range(universe):
                        arena[destination_row, j] += arena[source_row, j]
                    newborn = quantity - source_total
                    if newborn > 0.0:
                        arena[destination_row, source] += newborn
                    for j in range(universe):
                        arena[source_row, j] = 0.0
                    totals[source] = 0.0
                    totals[destination] += quantity
                else:
                    fraction = quantity / source_total
                    for j in range(universe):
                        moved = arena[source_row, j] * fraction
                        arena[destination_row, j] += moved
                        arena[source_row, j] -= moved
                    totals[source] = source_total - quantity
                    totals[destination] += quantity

        def propdense(src, dst, qty, arena, rows, totals):
            if len(src):
                _propdense(src, dst, qty, arena, rows, totals)
            return None

        return propdense
    raise KeyError(f"numba backend does not serve {name!r}")
