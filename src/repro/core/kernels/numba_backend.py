"""Optional ``numba.njit`` kernel backend, auto-detected at resolution.

numba is an optional extra: when it is importable the no-provenance
whole-run kernel is JIT-compiled here (and verified bit-for-bit before
use); when it is absent — the normal case for a minimal install —
:func:`available` reports False and the dispatcher moves on to the
compiled-C backend without noise.

Only the ``"noprov"`` kernel is served: the proportional-dense kernel
indexes a table of raw row pointers, which maps naturally onto C but
not onto nopython-mode numba; requesting it raises so the dispatcher
demotes to :mod:`repro.core.kernels.cc_backend` for that name.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["BACKEND", "available", "build"]

BACKEND = "numba"

try:  # pragma: no cover - exercised only when numba is installed
    import numba  # type: ignore

    _HAS_NUMBA = True
except Exception:  # ImportError, or a broken install raising anything else
    numba = None  # type: ignore[assignment]
    _HAS_NUMBA = False


def available() -> bool:
    """True when numba imported cleanly."""
    return _HAS_NUMBA


def build(name: str) -> Callable:  # pragma: no cover - requires numba
    if not _HAS_NUMBA:
        raise RuntimeError("numba is not installed")
    if name != "noprov":
        raise KeyError(f"numba backend does not serve {name!r}")

    @numba.njit(cache=True, fastmath=False)
    def _noprov(src, dst, qty, buffers, generated, gen_order):
        appended = 0
        for i in range(src.shape[0]):
            source = src[i]
            quantity = qty[i]
            available_quantity = buffers[source]
            if quantity < available_quantity:
                buffers[source] = available_quantity - quantity
            else:
                buffers[source] = 0.0
                if quantity > available_quantity:
                    if generated[source] == 0.0:
                        gen_order[appended] = source
                        appended += 1
                    generated[source] += quantity - available_quantity
            buffers[dst[i]] += quantity
        return appended

    def noprov(src, dst, qty, buffers, generated, gen_order):
        return int(_noprov(src, dst, qty, buffers, generated, gen_order))

    return noprov
