"""Checkpointing of provenance state for long-running streams.

The paper maintains provenance in real time over interaction streams; in a
production deployment such a stream never ends, so operators need to be
able to stop and resume the tracker without replaying the whole history.
This module saves and restores a policy's complete annotation state (and
optionally the engine counters) with :mod:`pickle`.

Every policy in the library is picklable: buffers are plain Python
containers, dense vectors are numpy arrays, and the artificial
:data:`~repro.core.provenance.UNKNOWN_ORIGIN` sentinel preserves its
identity across pickling (see its ``__reduce__``).  Annotation state lives
in :mod:`repro.stores` backends, which serialise their *full* contents —
the SQLite spill store materialises its cold tier into the pickle and
rebuilds a fresh spill file on load, so checkpoints are self-contained
files regardless of backend.

:func:`policy_store_snapshot` / :func:`restore_policy_stores` additionally
expose the state *as data* (plain role-keyed dicts), uniform across
backends — the hook for external checkpoint formats and for migrating a
policy's state from one store backend to another.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Dict, Hashable, Mapping, Union

from repro.core.engine import ProvenanceEngine
from repro.exceptions import CheckpointCorruptedError
from repro.policies.base import SelectionPolicy

__all__ = [
    "save_policy",
    "load_policy",
    "save_engine",
    "load_engine",
    "engine_from_checkpoint",
    "read_checkpoint",
    "save_checkpoint_state",
    "policy_store_snapshot",
    "restore_policy_stores",
]

#: Pickle protocol used for checkpoints (4 = supported on every Python >= 3.4,
#: handles large objects efficiently).
_PROTOCOL = 4


def _atomic_write(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically: temp file, fsync, rename.

    A crash at any point leaves either the previous checkpoint intact or a
    stray ``.tmp`` sibling — never a truncated checkpoint under the real
    name.  The temp file lives in the destination directory so the final
    ``os.replace`` stays on one filesystem.
    """
    from repro.runtime import faults

    torn = faults.torn_checkpoint_bytes(payload)
    if torn is not None:
        # Injected fault: leave exactly the torn file a non-atomic writer
        # would have produced, so the read path's corruption handling is
        # exercised against the real failure artifact.
        path.write_bytes(torn)
        return
    tmp_path = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with tmp_path.open("wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            tmp_path.unlink()
        except OSError:
            pass
        raise


def _load_pickle(path: Path) -> object:
    """Unpickle ``path``, mapping truncation/garbage to a clear error."""
    try:
        with path.open("rb") as handle:
            return pickle.load(handle)
    except (
        EOFError,
        pickle.UnpicklingError,
        AttributeError,
        ImportError,
        IndexError,
        ValueError,
    ) as error:
        raise CheckpointCorruptedError(
            path, f"{type(error).__name__}: {error}"
        ) from error


def save_policy(policy: SelectionPolicy, path: Union[str, Path]) -> None:
    """Serialize a policy's full state to ``path`` (atomically)."""
    _atomic_write(Path(path), pickle.dumps(policy, protocol=_PROTOCOL))


def load_policy(path: Union[str, Path]) -> SelectionPolicy:
    """Restore a policy previously saved with :func:`save_policy`.

    Raises
    ------
    TypeError
        If the file does not contain a :class:`SelectionPolicy`.
    CheckpointCorruptedError
        If the file is truncated or not a pickle.
    """
    path = Path(path)
    policy = _load_pickle(path)
    if not isinstance(policy, SelectionPolicy):
        raise TypeError(
            f"{path} does not contain a SelectionPolicy (got {type(policy).__name__})"
        )
    return policy


def _sidecar_name(checkpoint_name: str, role: str, crc: int) -> str:
    """Content-addressed sidecar filename for one store role."""
    return f"{checkpoint_name}.{role}.{crc:08x}.arena"


def _write_arena_sidecars(
    policy: SelectionPolicy, path: Path
) -> Dict[str, Dict[str, object]]:
    """Snapshot every mmap-tier store of ``policy`` next to ``path``.

    Sidecars are content-addressed (the CRC token is part of the filename
    and recorded in the checkpoint state), so a crash between the sidecar
    write and the state write cannot pair a checkpoint with the wrong
    arena generation: the previous checkpoint keeps referencing the
    previous sidecar, which is only garbage-collected after the *next*
    successful state write.
    """
    from repro.stores.mmap_store import MmapDenseStore

    sidecars: Dict[str, Dict[str, object]] = {}
    for role, store in policy.stores().items():
        if not isinstance(store, MmapDenseStore):
            continue
        scratch = path.parent / f".{path.name}.{role}.arena.tmp.{os.getpid()}"
        try:
            info = store.snapshot_to(scratch)
            name = _sidecar_name(path.name, role, info["crc"])
            os.replace(scratch, path.parent / name)
        except BaseException:
            try:
                scratch.unlink()
            except OSError:
                pass
            raise
        sidecars[role] = {"file": name, "crc": info["crc"], "rows": info["rows"]}
        store._pickle_stub = True
    return sidecars


def _prune_stale_sidecars(path: Path, sidecars: Mapping[str, Mapping[str, object]]) -> None:
    """Remove sidecar generations no checkpoint references anymore."""
    live = {str(info["file"]) for info in sidecars.values()}
    prefix = f"{path.name}."
    for candidate in path.parent.glob(f"{path.name}.*.arena"):
        if candidate.name.startswith(prefix) and candidate.name not in live:
            try:
                candidate.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass


def save_engine(
    engine: ProvenanceEngine,
    path: Union[str, Path],
    *,
    source_resume: Union[dict, None] = None,
) -> None:
    """Serialize an engine (policy state plus stream counters) to ``path``.

    Observers are not saved: they usually hold references to callbacks or
    open resources; re-register them after loading.  ``source_resume``
    optionally embeds an :meth:`InteractionSource.resume_token` so a resumed
    run can seek its source instead of replaying the processed prefix.

    Mmap-tier stores (:class:`~repro.stores.MmapDenseStore`) are not
    pickled into the checkpoint: their arenas are written — one sequential
    matrix write each, no per-key pickling — to content-addressed
    ``<path>.<role>.<crc>.arena`` sidecar files that
    :func:`engine_from_checkpoint` memory-maps back copy-on-write.
    """
    state = engine.checkpoint_state()
    if source_resume is not None:
        state["source_resume"] = source_resume
    path = Path(path)
    policy = engine.policy
    sidecars = _write_arena_sidecars(policy, path)
    try:
        if sidecars:
            state["arena_sidecars"] = sidecars
        payload = pickle.dumps(state, protocol=_PROTOCOL)
    finally:
        if sidecars:
            for store in policy.stores().values():
                if getattr(store, "_pickle_stub", False):
                    store._pickle_stub = False
    _atomic_write(path, payload)
    if sidecars:
        _prune_stale_sidecars(path, sidecars)


def save_checkpoint_state(state: dict, path: Union[str, Path]) -> None:
    """Write a raw checkpoint dictionary (read back by :func:`read_checkpoint`).

    The partitioned-streaming manifest writer uses this: its checkpoints
    carry per-shard engine states, a membership table and a source offset
    rather than one engine, but share the container format (and protocol)
    with :func:`save_engine` so :func:`read_checkpoint` reads both.
    """
    _atomic_write(Path(path), pickle.dumps(state, protocol=_PROTOCOL))


def read_checkpoint(path: Union[str, Path]) -> dict:
    """The raw checkpoint dictionary stored at ``path``.

    Engine checkpoints carry ``"policy"`` (see :func:`save_engine`);
    partitioned-streaming checkpoints carry per-shard engine states instead
    (see :mod:`repro.runtime.runner`).  Both are plain dicts so callers can
    dispatch on the keys present.

    Raises :class:`~repro.exceptions.CheckpointCorruptedError` — with the
    path and a hint to re-run without ``--resume-from`` — when the file is
    truncated or unpicklable, instead of a raw ``EOFError``.
    """
    path = Path(path)
    state = _load_pickle(path)
    if not isinstance(state, dict):
        raise TypeError(f"{path} does not contain a checkpoint dictionary")
    return state


def engine_from_checkpoint(
    state: dict, base_path: Union[str, Path, None] = None
) -> ProvenanceEngine:
    """Rebuild an engine from a :func:`read_checkpoint` dictionary.

    ``base_path`` is the checkpoint file the state was read from; it is
    required when the checkpoint references arena sidecar files (mmap-tier
    stores), which are resolved relative to it and memory-mapped back
    copy-on-write.  A missing, torn or generation-mismatched sidecar
    raises :class:`~repro.exceptions.CheckpointCorruptedError`.
    """
    if "policy" not in state:
        raise TypeError("checkpoint state does not contain an engine checkpoint")
    engine = ProvenanceEngine(state["policy"])
    engine._interactions_processed = int(state.get("interactions_processed", 0))
    engine._last_time = state.get("current_time")
    sidecars = state.get("arena_sidecars")
    if sidecars:
        if base_path is None:
            raise CheckpointCorruptedError(
                "<memory>",
                "checkpoint references arena sidecar files but no checkpoint "
                "path was given to resolve them against",
            )
        base_path = Path(base_path)
        stores = engine.policy.stores()
        for role, info in sidecars.items():
            store = stores.get(role)
            if store is None or not hasattr(store, "restore_from"):
                raise CheckpointCorruptedError(
                    base_path,
                    f"checkpoint references an arena sidecar for store role "
                    f"{role!r} which the restored policy does not provide",
                )
            store.restore_from(
                base_path.parent / str(info["file"]),
                expected_crc=int(info["crc"]),
            )
    return engine


def load_engine(path: Union[str, Path]) -> ProvenanceEngine:
    """Restore an engine previously saved with :func:`save_engine`."""
    state = read_checkpoint(path)
    if "policy" not in state:
        raise TypeError(f"{path} does not contain an engine checkpoint")
    return engine_from_checkpoint(state, base_path=path)


def policy_store_snapshot(policy: SelectionPolicy) -> Dict[str, Dict[Hashable, object]]:
    """Materialise every provenance store of ``policy`` as plain dicts.

    Keys are the policy's state-component roles (``"buffers"``,
    ``"vectors"``, ...); values are full materialisations including any
    spilled entries.  Uniform across store backends — snapshotting a
    spilling policy and restoring into a dict-backed one (or vice versa)
    yields identical provenance.
    """
    return {role: store.snapshot() for role, store in policy.stores().items()}


def restore_policy_stores(
    policy: SelectionPolicy, snapshot: Mapping[str, Mapping[Hashable, object]]
) -> None:
    """Load a :func:`policy_store_snapshot` into ``policy``'s stores.

    The policy must already be structurally configured (same policy class
    and parameters; for store-role mismatches a ``KeyError`` is raised so a
    wrong pairing fails loudly rather than silently dropping state).
    """
    stores = policy.stores()
    for role, data in snapshot.items():
        stores[role].restore(data)
