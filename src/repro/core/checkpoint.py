"""Checkpointing of provenance state for long-running streams.

The paper maintains provenance in real time over interaction streams; in a
production deployment such a stream never ends, so operators need to be
able to stop and resume the tracker without replaying the whole history.
This module saves and restores a policy's complete annotation state (and
optionally the engine counters) with :mod:`pickle`.

Every policy in the library is picklable: buffers are plain Python
containers, dense vectors are numpy arrays, and the artificial
:data:`~repro.core.provenance.UNKNOWN_ORIGIN` sentinel preserves its
identity across pickling (see its ``__reduce__``).
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Union

from repro.core.engine import ProvenanceEngine
from repro.policies.base import SelectionPolicy

__all__ = ["save_policy", "load_policy", "save_engine", "load_engine"]

#: Pickle protocol used for checkpoints (4 = supported on every Python >= 3.4,
#: handles large objects efficiently).
_PROTOCOL = 4


def save_policy(policy: SelectionPolicy, path: Union[str, Path]) -> None:
    """Serialize a policy's full state to ``path``."""
    path = Path(path)
    with path.open("wb") as handle:
        pickle.dump(policy, handle, protocol=_PROTOCOL)


def load_policy(path: Union[str, Path]) -> SelectionPolicy:
    """Restore a policy previously saved with :func:`save_policy`.

    Raises
    ------
    TypeError
        If the file does not contain a :class:`SelectionPolicy`.
    """
    path = Path(path)
    with path.open("rb") as handle:
        policy = pickle.load(handle)
    if not isinstance(policy, SelectionPolicy):
        raise TypeError(
            f"{path} does not contain a SelectionPolicy (got {type(policy).__name__})"
        )
    return policy


def save_engine(engine: ProvenanceEngine, path: Union[str, Path]) -> None:
    """Serialize an engine (policy state plus stream counters) to ``path``.

    Observers are not saved: they usually hold references to callbacks or
    open resources; re-register them after loading.
    """
    path = Path(path)
    state = {
        "policy": engine.policy,
        "interactions_processed": engine.interactions_processed,
        "current_time": engine.current_time,
    }
    with path.open("wb") as handle:
        pickle.dump(state, handle, protocol=_PROTOCOL)


def load_engine(path: Union[str, Path]) -> ProvenanceEngine:
    """Restore an engine previously saved with :func:`save_engine`."""
    path = Path(path)
    with path.open("rb") as handle:
        state = pickle.load(handle)
    if not isinstance(state, dict) or "policy" not in state:
        raise TypeError(f"{path} does not contain an engine checkpoint")
    engine = ProvenanceEngine(state["policy"])
    engine._interactions_processed = int(state.get("interactions_processed", 0))
    engine._last_time = state.get("current_time")
    return engine
