"""The provenance engine: drives a selection policy over an interaction stream.

:class:`ProvenanceEngine` is the main entry point of the library.  It feeds
interactions (from a :class:`~repro.core.network.TemporalInteractionNetwork`
or any time-ordered iterable) to a selection policy, keeps simple run
statistics, lets observers hook into the stream (alerts, sampling, memory
ceilings) and exposes provenance queries uniformly across policies.

Typical use::

    from repro import ProvenanceEngine, FifoPolicy, datasets

    network = datasets.load_preset("taxis")
    engine = ProvenanceEngine(FifoPolicy())
    stats = engine.run(network)
    print(engine.origins(some_vertex).top(5))
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.core import kernels as _kernels
from repro.core.blocks import InteractionBlock, VertexInterner
from repro.core.interaction import Interaction, Vertex
from repro.core.network import TemporalInteractionNetwork
from repro.core.provenance import OriginSet, ProvenanceSnapshot
from repro.policies.base import SelectionPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sources import MicroBatchScheduler

__all__ = [
    "ProvenanceEngine",
    "EngineStreamRun",
    "RunStatistics",
    "InteractionObserver",
]

#: Rows per kernel invocation on the columnar block path.  Array kernels
#: amortise their per-slice setup (column ``tolist``, touched updates) over
#: much larger slices than object batching needs; sampling, peak-check and
#: checkpoint boundaries still clip slices exactly.
_COLUMNAR_CHUNK = 8192

#: Observers are called after every processed interaction with the engine,
#: the interaction, and its zero-based position in the stream.
InteractionObserver = Callable[["ProvenanceEngine", Interaction, int], None]

#: First stream position at which the engine checks the policy's entry count
#: when no explicit sampling is requested; subsequent checks happen at every
#: doubling of that position (2048, 4096, ...), so a run of n interactions
#: pays only O(log n) ``entry_count()`` calls for peak tracking.
_PEAK_CHECK_START = 1024


@dataclass
class RunStatistics:
    """Statistics collected by :meth:`ProvenanceEngine.run`."""

    #: Number of interactions processed by the run.
    interactions: int = 0
    #: Wall-clock duration of the run in seconds.
    elapsed_seconds: float = 0.0
    #: Number of provenance entries stored by the policy at the end of the run.
    final_entry_count: int = 0
    #: Largest observed entry count.  Observed at every ``sample_every``
    #: position when sampling is on; without sampling the engine still checks
    #: on a cheap geometric cadence (positions 1024, 2048, 4096, ...) so the
    #: peak of a shrinking policy (windowed, budget) is not reported as its
    #: final count.
    peak_entry_count: int = 0
    #: Interaction positions at which entry counts were sampled.
    samples: List[int] = field(default_factory=list)
    #: Entry counts at the sampled positions.
    sampled_entry_counts: List[int] = field(default_factory=list)
    #: Cumulative elapsed seconds at the sampled positions.
    sampled_elapsed_seconds: List[float] = field(default_factory=list)

    @property
    def interactions_per_second(self) -> float:
        """Throughput of the run (0.0 when the run took no measurable time)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.interactions / self.elapsed_seconds


class ProvenanceEngine:
    """Runs a :class:`~repro.policies.base.SelectionPolicy` over interactions."""

    def __init__(
        self,
        policy: SelectionPolicy,
        *,
        observers: Optional[Sequence[InteractionObserver]] = None,
    ) -> None:
        self.policy = policy
        self._observers: List[InteractionObserver] = list(observers or [])
        self._interactions_processed = 0
        self._last_time: Optional[float] = None
        self._scheduler: Optional["MicroBatchScheduler"] = None
        self._columnar_stats: Optional[Dict[str, object]] = None
        self._kernel_stats: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    def add_observer(self, observer: InteractionObserver) -> None:
        """Register a callback invoked after every processed interaction."""
        self._observers.append(observer)

    def remove_observer(self, observer: InteractionObserver) -> None:
        """Unregister a previously added observer (no-op if absent)."""
        if observer in self._observers:
            self._observers.remove(observer)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(
        self,
        source: Union[
            TemporalInteractionNetwork, InteractionBlock, Iterable[Interaction]
        ],
        *,
        reset: bool = True,
        limit: Optional[int] = None,
        sample_every: int = 0,
        batch_size: int = 0,
        scheduler: Optional["MicroBatchScheduler"] = None,
        checkpoint_every: int = 0,
        on_checkpoint: Optional[Callable[["ProvenanceEngine", int], None]] = None,
        columnar: Optional[bool] = None,
        kernel: str = "auto",
    ) -> RunStatistics:
        """Process a whole interaction stream and return run statistics.

        Parameters
        ----------
        source:
            A :class:`TemporalInteractionNetwork` (its time-ordered
            interactions are used and its vertex universe is passed to the
            policy), an :class:`~repro.sources.InteractionSource` (possibly
            live — the run follows it until it exhausts), a ready
            :class:`~repro.sources.MicroBatchScheduler`, or any time-ordered
            iterable of interactions.
        reset:
            Reset the policy before running (default).  Set to False to
            continue a previous run with more interactions — the basis of
            checkpoint-resumed streaming runs.
        limit:
            Process at most this many interactions (None for all).
        sample_every:
            When positive, sample the policy's entry count and the elapsed
            time every ``sample_every`` interactions — the data behind the
            cumulative-cost curves of Figure 6.
        batch_size:
            When greater than one, drive the policy through micro-batched
            :meth:`SelectionPolicy.process_many` calls instead of stepping
            one interaction at a time.  Every batched run — eager, sharded
            or streaming — goes through a
            :class:`~repro.sources.MicroBatchScheduler`; for plain iterables
            the engine wraps the input in an eager
            :class:`~repro.sources.SequenceSource` itself.  Provenance
            state and sampling positions are identical to the
            per-interaction path (batches are clipped at sampling
            boundaries); only the per-interaction Python overhead is
            amortised.  When observers are registered the engine falls back
            to per-interaction stepping, because observers must see the
            policy state after every single interaction.
        scheduler:
            Explicit micro-batch scheduler (overrides ``batch_size``
            chunking; its source is the stream).  Lets callers configure
            time-based flushing and backpressure (``max_in_flight``).
        checkpoint_every, on_checkpoint:
            When both set on a batched/scheduled run, batches are clipped
            at every ``checkpoint_every`` boundary and ``on_checkpoint``
            is invoked there with the engine and the total interactions
            processed — periodic engine snapshots at exact stream offsets,
            without forcing per-interaction execution.
        columnar:
            Drive the policy through :meth:`SelectionPolicy.process_block`
            over columnar :class:`~repro.core.blocks.InteractionBlock`
            batches instead of object lists.  ``None`` (default) enables
            the columnar path automatically for batched eager network runs
            whenever the policy has a real array kernel for its current
            store backend — dict-backed stores are consolidated into a
            policy-owned row arena, dense/mmap stores hand the kernels
            their own arena directly — (the network's columnar form is
            built once and cached); ``False`` disables it; ``True`` forces
            it everywhere —
            scheduler/stream runs then columnarise each flushed batch, and
            policies without a kernel stay correct through the
            object-materialising adapter.  Results are bit-identical
            either way.  Per-interaction runs and runs with observers
            always take the object path.
        kernel:
            How columnar spans are driven.  ``"auto"`` / ``"fused"``
            (default) hand whole clip spans — bounded only by the exact
            sample/peak/checkpoint offsets — to
            :meth:`SelectionPolicy.process_run`, so compiled kernels (or
            the pure fused path) run without returning to Python between
            batches; ``"batch"`` keeps the fixed-size
            :meth:`SelectionPolicy.process_block` chunking.  Results are
            bit-identical either way; any backend compilation happens
            before the run timer starts (see :meth:`kernel_stats`).
        """
        from repro.sources import InteractionSource, MicroBatchScheduler

        if kernel not in ("auto", "fused", "batch"):
            raise ValueError(
                f"kernel must be 'auto', 'fused' or 'batch', got {kernel!r}"
            )
        self._columnar_stats = None
        self._kernel_stats = None
        if isinstance(source, InteractionBlock):
            # A ready block is the columnar fast path by definition; the
            # policy is reset with the interner's vertex universe, which
            # matches the registration order of the network the block came
            # from.
            if reset:
                self.policy.reset(source.interner.vertices)
                self._interactions_processed = 0
                self._last_time = None
            if self._observers:
                # Observers must see the policy after every interaction;
                # materialise the block and step through it.  Periodic
                # checkpoints ride the observer mechanism exactly like the
                # non-block observer path, so they are never a silent no-op.
                interactions = source.to_interactions()
                if checkpoint_every and on_checkpoint is not None:

                    def _checkpoint_observer(
                        engine: "ProvenanceEngine",
                        _interaction: Interaction,
                        position: int,
                    ) -> None:
                        if (position + 1) % checkpoint_every == 0:
                            on_checkpoint(engine, engine.interactions_processed)

                    self.add_observer(_checkpoint_observer)
                    try:
                        return self._run_sequential(
                            interactions, limit=limit, sample_every=sample_every
                        )
                    finally:
                        self.remove_observer(_checkpoint_observer)
                return self._run_sequential(
                    interactions, limit=limit, sample_every=sample_every
                )
            return self._run_block(
                source,
                limit=limit,
                sample_every=sample_every,
                batch_size=batch_size,
                checkpoint_every=checkpoint_every,
                on_checkpoint=on_checkpoint,
                kernel=kernel,
            )
        if isinstance(source, MicroBatchScheduler):
            scheduler, source = source, source.source
        clamped_max_pull = False
        original_max_pull: Optional[int] = None
        if scheduler is not None and limit is not None:
            # limit bounds CONSUMPTION, not just processing: clamp the
            # scheduler's read-ahead so a caller's source is never drained
            # past what this run will process (items already pending count
            # against the limit first).  The clamp is restored afterwards so
            # continuation runs (reset=False) on the same scheduler are not
            # stuck at this run's limit.
            bound = scheduler.pulled + max(max(limit, 0) - scheduler.pending, 0)
            if scheduler.max_pull is None or scheduler.max_pull > bound:
                clamped_max_pull = True
                original_max_pull = scheduler.max_pull
                scheduler.max_pull = bound
        if isinstance(source, TemporalInteractionNetwork):
            vertices: Sequence[Vertex] = source.vertices
            interactions: Iterable[Interaction] = source.interactions
        else:
            vertices = ()
            interactions = source

        if reset:
            self.policy.reset(vertices)
            self._interactions_processed = 0
            self._last_time = None

        try:
            if columnar is None:
                # Auto mode only engages where the columnar form is (or
                # becomes) cached: eager network runs.  Scheduler/stream
                # runs would pay an object-to-array conversion per batch —
                # roughly what the kernel saves — so there columnar stays
                # opt-in (columnar=True).
                use_columnar = (
                    scheduler is None
                    and batch_size > 1
                    and isinstance(source, TemporalInteractionNetwork)
                    and self.policy.has_columnar_kernel()
                )
            else:
                use_columnar = columnar
            use_columnar = use_columnar and not self._observers
            if (
                use_columnar
                and scheduler is None
                and batch_size > 1
                and isinstance(source, TemporalInteractionNetwork)
            ):
                # Eager network run: columnarise once (cached on the
                # network) and slice the block instead of chunking objects.
                return self._run_block(
                    source.to_block(),
                    limit=limit,
                    sample_every=sample_every,
                    batch_size=batch_size,
                    checkpoint_every=checkpoint_every,
                    on_checkpoint=on_checkpoint,
                    kernel=kernel,
                )
            if scheduler is not None and not self._observers:
                return self._run_scheduled(
                    scheduler,
                    limit=limit,
                    sample_every=sample_every,
                    checkpoint_every=checkpoint_every,
                    on_checkpoint=on_checkpoint,
                    columnar=use_columnar,
                    kernel=kernel,
                )
            if batch_size > 1 and not self._observers:
                return self._run_batched(
                    interactions,
                    limit=limit,
                    sample_every=sample_every,
                    batch_size=batch_size,
                    checkpoint_every=checkpoint_every,
                    on_checkpoint=on_checkpoint,
                    columnar=use_columnar,
                    kernel=kernel,
                )
            if scheduler is not None:
                # Observers force per-interaction stepping; drain the
                # scheduler batch by batch but step each interaction
                # individually.
                interactions = (
                    interaction for batch in scheduler for interaction in batch
                )
            elif isinstance(interactions, InteractionSource):
                # limit bounds consumption on this path too: never drain
                # the source past what the run will process.
                interactions = interactions.iter_limited(limit)
            if checkpoint_every and on_checkpoint is not None:
                # The per-interaction path honours periodic checkpoints
                # through the observer mechanism, so requesting them is
                # never a silent no-op regardless of execution mode.
                def _checkpoint_observer(
                    engine: "ProvenanceEngine",
                    _interaction: Interaction,
                    position: int,
                ) -> None:
                    if (position + 1) % checkpoint_every == 0:
                        on_checkpoint(engine, engine.interactions_processed)

                self.add_observer(_checkpoint_observer)
                try:
                    return self._run_sequential(
                        interactions, limit=limit, sample_every=sample_every
                    )
                finally:
                    self.remove_observer(_checkpoint_observer)
            return self._run_sequential(
                interactions, limit=limit, sample_every=sample_every
            )
        finally:
            if clamped_max_pull:
                scheduler.max_pull = original_max_pull

    def _run_sequential(
        self,
        interactions: Iterable[Interaction],
        *,
        limit: Optional[int],
        sample_every: int,
    ) -> RunStatistics:
        """Per-interaction drive loop behind :meth:`run` (observers fire)."""
        stats = RunStatistics()
        next_peak_check = _PEAK_CHECK_START if not sample_every else 0
        start = _time.perf_counter()
        for index, interaction in enumerate(interactions):
            if limit is not None and index >= limit:
                break
            self.step(interaction)
            stats.interactions += 1
            if sample_every and (index + 1) % sample_every == 0:
                entry_count = self.policy.entry_count()
                stats.samples.append(index + 1)
                stats.sampled_entry_counts.append(entry_count)
                stats.sampled_elapsed_seconds.append(_time.perf_counter() - start)
                if entry_count > stats.peak_entry_count:
                    stats.peak_entry_count = entry_count
            elif next_peak_check and (index + 1) >= next_peak_check:
                entry_count = self.policy.entry_count()
                if entry_count > stats.peak_entry_count:
                    stats.peak_entry_count = entry_count
                next_peak_check *= 2
        stats.elapsed_seconds = _time.perf_counter() - start
        stats.final_entry_count = self.policy.entry_count()
        stats.peak_entry_count = max(stats.peak_entry_count, stats.final_entry_count)
        return stats

    def _run_batched(
        self,
        interactions: Iterable[Interaction],
        *,
        limit: Optional[int],
        sample_every: int,
        batch_size: int,
        checkpoint_every: int = 0,
        on_checkpoint: Optional[Callable[["ProvenanceEngine", int], None]] = None,
        columnar: bool = False,
        kernel: str = "auto",
    ) -> RunStatistics:
        """Batched drive loop behind :meth:`run` (no observers registered).

        Wraps the stream in an eager source and drives the shared scheduled
        loop, so the eager, sharded and streaming paths all execute the same
        code; an eager source never makes the scheduler wait, so this is the
        plain fixed-size chunking the batched path always performed.
        """
        from repro.sources import InteractionSource, MicroBatchScheduler, SequenceSource

        # The limit bounds CONSUMPTION, not just processing: the scheduler
        # reads ahead (backpressure room), and a caller's iterator/source
        # must not be drained past the limit it asked for.
        if isinstance(interactions, InteractionSource):
            source = interactions
        else:
            source = SequenceSource(interactions, limit=limit)
        scheduler = MicroBatchScheduler(
            source, micro_batch=batch_size, max_pull=limit
        )
        return self._run_scheduled(
            scheduler,
            limit=limit,
            sample_every=sample_every,
            checkpoint_every=checkpoint_every,
            on_checkpoint=on_checkpoint,
            columnar=columnar,
            kernel=kernel,
        )

    def _run_block(
        self,
        block: InteractionBlock,
        *,
        limit: Optional[int],
        sample_every: int,
        batch_size: int = 0,
        checkpoint_every: int = 0,
        on_checkpoint: Optional[Callable[["ProvenanceEngine", int], None]] = None,
        kernel: str = "auto",
    ) -> RunStatistics:
        """Columnar drive loop over one materialised block (no observers).

        Slices the block at exactly the positions the object paths clip
        batches at — ``sample_every``, the geometric peak-check cadence and
        ``checkpoint_every`` — so entry counts are sampled, and checkpoints
        written, at identical stream offsets.  Slice size never affects
        results, only amortisation: in fused mode (the default) slices are
        bounded *only* by those clip offsets and handed to
        ``process_run``, so the policy's inner loop covers whole spans
        without returning to Python between batches; ``kernel="batch"``
        keeps the fixed-size ``_COLUMNAR_CHUNK`` slicing through
        ``process_block``.
        """
        policy = self.policy
        total = len(block)
        if limit is not None:
            total = min(total, max(limit, 0))
        fused = kernel != "batch"
        if fused:
            compile_before = _kernels.compile_seconds()
            # Resolve (and compile) any backend before the timer starts.
            policy.prepare_fused(block)
            compile_delta = _kernels.compile_seconds() - compile_before
            process_block = policy.process_run
            chunk = max(total, 1)
        else:
            compile_delta = 0.0
            process_block = policy.process_block
            chunk = max(batch_size, _COLUMNAR_CHUNK)
        self._columnar_stats = {
            "mode": "block",
            "interned_vertices": len(block.interner),
            "block_bytes": block.nbytes,
            "kernel": policy.has_columnar_kernel(),
            "chunk": chunk,
        }
        self._kernel_stats = {
            "mode": "fused" if fused else "batch",
            "backend": policy.fused_backend() if fused else "batch",
            "chunks": 0,
            "compile_seconds": compile_delta,
        }
        kernel_stats = self._kernel_stats

        stats = RunStatistics()
        processed = 0
        next_peak_check = _PEAK_CHECK_START if not sample_every else 0
        start = _time.perf_counter()
        while processed < total:
            size = min(chunk, total - processed)
            if sample_every:
                size = min(size, sample_every - (processed % sample_every))
            if next_peak_check:
                size = min(size, next_peak_check - processed)
            if checkpoint_every:
                size = min(size, checkpoint_every - (processed % checkpoint_every))
            piece = block.slice(processed, processed + size)
            process_block(piece)
            kernel_stats["chunks"] += 1
            processed += size
            self._interactions_processed += size
            self._last_time = piece.last_time
            stats.interactions += size
            if sample_every and processed % sample_every == 0:
                entry_count = policy.entry_count()
                stats.samples.append(processed)
                stats.sampled_entry_counts.append(entry_count)
                stats.sampled_elapsed_seconds.append(_time.perf_counter() - start)
                if entry_count > stats.peak_entry_count:
                    stats.peak_entry_count = entry_count
            elif next_peak_check and processed >= next_peak_check:
                entry_count = policy.entry_count()
                if entry_count > stats.peak_entry_count:
                    stats.peak_entry_count = entry_count
                next_peak_check *= 2
            if (
                checkpoint_every
                and on_checkpoint is not None
                and processed % checkpoint_every == 0
            ):
                on_checkpoint(self, self._interactions_processed)
        stats.elapsed_seconds = _time.perf_counter() - start
        stats.final_entry_count = policy.entry_count()
        stats.peak_entry_count = max(stats.peak_entry_count, stats.final_entry_count)
        return stats

    def _run_scheduled(
        self,
        scheduler: "MicroBatchScheduler",
        *,
        limit: Optional[int],
        sample_every: int,
        checkpoint_every: int = 0,
        on_checkpoint: Optional[Callable[["ProvenanceEngine", int], None]] = None,
        columnar: bool = False,
        kernel: str = "auto",
    ) -> RunStatistics:
        """The micro-batched drive loop every batched run goes through.

        Batches are clipped at ``sample_every``, peak-check and
        ``checkpoint_every`` boundaries so entry counts are sampled — and
        checkpoints written — at exactly the positions of the
        per-interaction path.  The scheduler may flush smaller batches on
        its own time/window triggers; smaller never breaks equivalence,
        only the clipping ceilings matter.

        With ``columnar=True`` every flushed batch is columnarised against
        a run-local interner and handed to ``process_block`` — the array
        kernels run on live streams too, at the cost of one object-to-array
        conversion per batch.
        """
        policy = self.policy
        process_many = policy.process_many
        self._scheduler = scheduler
        interner: Optional[VertexInterner] = None
        kernel_stats: Optional[Dict[str, object]] = None
        if columnar:
            interner = VertexInterner()
            fused = kernel != "batch"
            if fused:
                compile_before = _kernels.compile_seconds()
                # Resolve (and compile) any backend before the timer starts.
                policy.prepare_fused()
                compile_delta = _kernels.compile_seconds() - compile_before
                process_block = policy.process_run
            else:
                compile_delta = 0.0
                process_block = policy.process_block
            self._columnar_stats = {
                "mode": "stream",
                "interned_vertices": 0,
                "block_bytes": 0,
                "kernel": policy.has_columnar_kernel(),
                "chunk": scheduler.micro_batch,
            }
            self._kernel_stats = kernel_stats = {
                "mode": "fused" if fused else "batch",
                "backend": policy.fused_backend() if fused else "batch",
                "chunks": 0,
                "compile_seconds": compile_delta,
            }

        stats = RunStatistics()
        processed = 0
        next_peak_check = _PEAK_CHECK_START if not sample_every else 0
        start = _time.perf_counter()
        while True:
            if limit is not None and processed >= max(limit, 0):
                break
            size = scheduler.micro_batch
            if limit is not None:
                size = min(size, max(limit, 0) - processed)
            if sample_every:
                size = min(size, sample_every - (processed % sample_every))
            if next_peak_check:
                size = min(size, next_peak_check - processed)
            if checkpoint_every:
                size = min(size, checkpoint_every - (processed % checkpoint_every))
            if interner is not None:
                block = scheduler.next_block(size, interner=interner)
                if block is None:
                    break
                process_block(block)
                kernel_stats["chunks"] += 1
                self._columnar_stats["interned_vertices"] = len(interner)
                self._columnar_stats["block_bytes"] += block.nbytes
                produced = len(block)
                last_time = block.last_time
            else:
                batch = scheduler.next_batch(size)
                if batch is None:
                    break
                process_many(batch)
                produced = len(batch)
                last_time = batch[-1].time
            processed += produced
            self._interactions_processed += produced
            self._last_time = last_time
            stats.interactions += produced
            if sample_every and processed % sample_every == 0:
                entry_count = policy.entry_count()
                stats.samples.append(processed)
                stats.sampled_entry_counts.append(entry_count)
                stats.sampled_elapsed_seconds.append(_time.perf_counter() - start)
                if entry_count > stats.peak_entry_count:
                    stats.peak_entry_count = entry_count
            elif next_peak_check and processed >= next_peak_check:
                entry_count = policy.entry_count()
                if entry_count > stats.peak_entry_count:
                    stats.peak_entry_count = entry_count
                next_peak_check *= 2
            if (
                checkpoint_every
                and on_checkpoint is not None
                and processed % checkpoint_every == 0
            ):
                on_checkpoint(self, self._interactions_processed)
        stats.elapsed_seconds = _time.perf_counter() - start
        stats.final_entry_count = policy.entry_count()
        stats.peak_entry_count = max(stats.peak_entry_count, stats.final_entry_count)
        return stats

    def stream_run(
        self,
        *,
        sample_every: int = 0,
        kernel: str = "auto",
    ) -> "EngineStreamRun":
        """Open a resident streaming run fed one columnar batch at a time.

        The engine's drive loops clip at sample/peak/checkpoint offsets
        measured from the start of each :meth:`run` call; a consumer that
        calls ``run`` once per arriving micro-batch would therefore restart
        the sampling and peak-check cadence on every batch.  A
        :class:`EngineStreamRun` keeps those counters (and the accumulated
        :class:`RunStatistics`) alive *across* fed batches, so a partitioned
        streaming worker that stays resident between micro-batches samples
        at exactly the per-shard positions of one eager whole-shard run.
        The caller resets the policy (with its universe) before opening.
        """
        if kernel not in ("auto", "fused", "batch"):
            raise ValueError(
                f"kernel must be 'auto', 'fused' or 'batch', got {kernel!r}"
            )
        return EngineStreamRun(self, sample_every=sample_every, kernel=kernel)

    def step(self, interaction: Interaction) -> None:
        """Process a single interaction and notify observers."""
        self.policy.process(interaction)
        self._interactions_processed += 1
        self._last_time = interaction.time
        position = self._interactions_processed - 1
        for observer in self._observers:
            observer(self, interaction, position)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def interactions_processed(self) -> int:
        """Number of interactions processed since the last reset."""
        return self._interactions_processed

    @property
    def current_time(self) -> Optional[float]:
        """Timestamp of the last processed interaction (None before any)."""
        return self._last_time

    def checkpoint_state(self) -> Dict[str, object]:
        """The canonical checkpoint dictionary for this engine.

        Policy object plus stream counters — exactly what
        :func:`repro.core.checkpoint.save_engine` pickles and what the
        streaming fabric's per-shard state snapshots embed, so every
        checkpoint shape in the library shares one source of truth.
        """
        return {
            "policy": self.policy,
            "interactions_processed": self._interactions_processed,
            "current_time": self._last_time,
        }

    def buffer_total(self, vertex: Vertex) -> float:
        """The buffered quantity ``|B_v|`` of ``vertex``."""
        return self.policy.buffer_total(vertex)

    def origins(self, vertex: Vertex) -> OriginSet:
        """The origin decomposition ``O(t, B_v)`` of ``vertex``."""
        return self.policy.origins(vertex)

    def snapshot(self) -> ProvenanceSnapshot:
        """Provenance of every vertex with a non-empty buffer, right now."""
        origins: Dict[Vertex, OriginSet] = {}
        for vertex in self.policy.tracked_vertices():
            origins[vertex] = self.policy.origins(vertex)
        return ProvenanceSnapshot(
            time=self._last_time if self._last_time is not None else 0.0,
            interactions_processed=self._interactions_processed,
            origins=origins,
        )

    def buffer_totals(self) -> Dict[Vertex, float]:
        """Mapping of every non-empty vertex to its buffered quantity."""
        return {
            vertex: self.policy.buffer_total(vertex)
            for vertex in self.policy.tracked_vertices()
        }

    def scheduler_stats(self) -> Optional[Dict[str, object]]:
        """Micro-batch scheduler accounting of the last batched run.

        ``None`` when the engine has only run per-interaction (observers
        registered, or ``batch_size <= 1``).  See
        :meth:`repro.sources.MicroBatchScheduler.stats`.
        """
        if self._scheduler is None:
            return None
        return self._scheduler.stats()

    def columnar_stats(self) -> Optional[Dict[str, object]]:
        """Columnar-path accounting of the last run, or ``None``.

        Reports whether the run was block-native (``mode="block"``: one
        cached block sliced per kernel call) or stream-converted
        (``mode="stream"``: scheduler batches columnarised on the fly),
        the interned-vertex count, the ingest footprint of the column
        arrays in bytes, and whether the policy ran a real array kernel
        (``kernel=False`` means the materialising adapter kept a
        kernel-less policy or a spilling store backend correct).
        """
        return self._columnar_stats

    def kernel_stats(self) -> Optional[Dict[str, object]]:
        """Fused-kernel accounting of the last columnar run, or ``None``.

        Reports the drive mode (``"fused"``: whole clip spans through
        ``process_run``; ``"batch"``: fixed-size ``process_block``
        chunking), the backend that served the spans (``"numba"`` /
        ``"cc"`` for compiled kernels, ``"numpy"`` for the pure fused
        path, ``"object"`` for the materialising adapter, ``"batch"`` in
        batch mode), the number of span/chunk invocations, and the
        seconds spent resolving/compiling backends — always outside the
        timed region (``prepare_fused`` runs before the run timer
        starts).  ``None`` for per-interaction and non-columnar runs.
        """
        return self._kernel_stats

    def store_stats(self):
        """Accounting of the policy's provenance stores, keyed by role.

        Uniform view over whatever :mod:`repro.stores` backend the policy
        was built with — spill backends report evictions and spilled bytes
        here (see :class:`repro.stores.StoreStats`).
        """
        return self.policy.store_stats()


class EngineStreamRun:
    """One logical engine run spread over many fed micro-batches.

    Created by :meth:`ProvenanceEngine.stream_run`.  Each :meth:`feed`
    processes one columnar :class:`InteractionBlock` through the policy's
    fused path, clipping internally at the *cumulative* ``sample_every``
    and geometric peak-check offsets — the positions an eager run over the
    concatenation of all fed blocks would clip at.  ``elapsed_seconds`` of
    the final statistics is the accumulated busy time inside :meth:`feed`
    (the per-shard straggler measure), not wall-clock span of the stream.
    """

    def __init__(
        self,
        engine: ProvenanceEngine,
        *,
        sample_every: int = 0,
        kernel: str = "auto",
    ) -> None:
        self._engine = engine
        self._policy = policy = engine.policy
        self._sample_every = sample_every
        fused = kernel != "batch"
        compile_before = _kernels.compile_seconds()
        if fused:
            # Resolve (and compile) any backend before the first batch, the
            # stream analogue of compiling before the run timer starts.
            policy.prepare_fused()
            self._process_block = policy.process_run
        else:
            self._process_block = policy.process_block
        compile_delta = _kernels.compile_seconds() - compile_before
        self._stats = RunStatistics()
        self._processed = 0
        self._next_peak_check = _PEAK_CHECK_START if not sample_every else 0
        self._busy = 0.0
        self._finished = False
        engine._columnar_stats = self._columnar_stats = {
            "mode": "stream",
            "interned_vertices": 0,
            "block_bytes": 0,
            "kernel": policy.has_columnar_kernel(),
            "chunk": 0,
        }
        engine._kernel_stats = self._kernel_stats = {
            "mode": "fused" if fused else "batch",
            "backend": policy.fused_backend() if fused else "batch",
            "chunks": 0,
            "compile_seconds": compile_delta,
        }

    @property
    def interactions(self) -> int:
        """Interactions processed by this stream run so far."""
        return self._processed

    def feed(self, block: InteractionBlock) -> int:
        """Process one micro-batch; returns its row count.

        Internally slices the batch at the run's cumulative sample and
        peak-check boundaries, so batch sizing never moves a sampling
        position.
        """
        if self._finished:
            raise RuntimeError("stream run already finished")
        engine = self._engine
        policy = self._policy
        process_block = self._process_block
        stats = self._stats
        sample_every = self._sample_every
        kernel_stats = self._kernel_stats
        total = len(block)
        self._columnar_stats["interned_vertices"] = len(block.interner)
        self._columnar_stats["block_bytes"] += block.nbytes
        offset = 0
        start = _time.perf_counter()
        while offset < total:
            size = total - offset
            if sample_every:
                size = min(size, sample_every - (self._processed % sample_every))
            if self._next_peak_check:
                size = min(size, self._next_peak_check - self._processed)
            piece = block.slice(offset, offset + size)
            process_block(piece)
            kernel_stats["chunks"] += 1
            offset += size
            self._processed += size
            engine._interactions_processed += size
            engine._last_time = piece.last_time
            stats.interactions += size
            if sample_every and self._processed % sample_every == 0:
                entry_count = policy.entry_count()
                stats.samples.append(self._processed)
                stats.sampled_entry_counts.append(entry_count)
                stats.sampled_elapsed_seconds.append(
                    self._busy + (_time.perf_counter() - start)
                )
                if entry_count > stats.peak_entry_count:
                    stats.peak_entry_count = entry_count
            elif self._next_peak_check and self._processed >= self._next_peak_check:
                entry_count = policy.entry_count()
                if entry_count > stats.peak_entry_count:
                    stats.peak_entry_count = entry_count
                self._next_peak_check *= 2
        self._busy += _time.perf_counter() - start
        return total

    def finish(self) -> RunStatistics:
        """Close the stream run and return its accumulated statistics."""
        if not self._finished:
            self._finished = True
            stats = self._stats
            stats.elapsed_seconds = self._busy
            stats.final_entry_count = self._policy.entry_count()
            stats.peak_entry_count = max(
                stats.peak_entry_count, stats.final_entry_count
            )
        return self._stats
