"""The provenance engine: drives a selection policy over an interaction stream.

:class:`ProvenanceEngine` is the main entry point of the library.  It feeds
interactions (from a :class:`~repro.core.network.TemporalInteractionNetwork`
or any time-ordered iterable) to a selection policy, keeps simple run
statistics, lets observers hook into the stream (alerts, sampling, memory
ceilings) and exposes provenance queries uniformly across policies.

Typical use::

    from repro import ProvenanceEngine, FifoPolicy, datasets

    network = datasets.load_preset("taxis")
    engine = ProvenanceEngine(FifoPolicy())
    stats = engine.run(network)
    print(engine.origins(some_vertex).top(5))
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from itertools import islice
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.interaction import Interaction, Vertex
from repro.core.network import TemporalInteractionNetwork
from repro.core.provenance import OriginSet, ProvenanceSnapshot
from repro.policies.base import SelectionPolicy

__all__ = ["ProvenanceEngine", "RunStatistics", "InteractionObserver"]

#: Observers are called after every processed interaction with the engine,
#: the interaction, and its zero-based position in the stream.
InteractionObserver = Callable[["ProvenanceEngine", Interaction, int], None]

#: First stream position at which the engine checks the policy's entry count
#: when no explicit sampling is requested; subsequent checks happen at every
#: doubling of that position (2048, 4096, ...), so a run of n interactions
#: pays only O(log n) ``entry_count()`` calls for peak tracking.
_PEAK_CHECK_START = 1024


@dataclass
class RunStatistics:
    """Statistics collected by :meth:`ProvenanceEngine.run`."""

    #: Number of interactions processed by the run.
    interactions: int = 0
    #: Wall-clock duration of the run in seconds.
    elapsed_seconds: float = 0.0
    #: Number of provenance entries stored by the policy at the end of the run.
    final_entry_count: int = 0
    #: Largest observed entry count.  Observed at every ``sample_every``
    #: position when sampling is on; without sampling the engine still checks
    #: on a cheap geometric cadence (positions 1024, 2048, 4096, ...) so the
    #: peak of a shrinking policy (windowed, budget) is not reported as its
    #: final count.
    peak_entry_count: int = 0
    #: Interaction positions at which entry counts were sampled.
    samples: List[int] = field(default_factory=list)
    #: Entry counts at the sampled positions.
    sampled_entry_counts: List[int] = field(default_factory=list)
    #: Cumulative elapsed seconds at the sampled positions.
    sampled_elapsed_seconds: List[float] = field(default_factory=list)

    @property
    def interactions_per_second(self) -> float:
        """Throughput of the run (0.0 when the run took no measurable time)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.interactions / self.elapsed_seconds


class ProvenanceEngine:
    """Runs a :class:`~repro.policies.base.SelectionPolicy` over interactions."""

    def __init__(
        self,
        policy: SelectionPolicy,
        *,
        observers: Optional[Sequence[InteractionObserver]] = None,
    ) -> None:
        self.policy = policy
        self._observers: List[InteractionObserver] = list(observers or [])
        self._interactions_processed = 0
        self._last_time: Optional[float] = None

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    def add_observer(self, observer: InteractionObserver) -> None:
        """Register a callback invoked after every processed interaction."""
        self._observers.append(observer)

    def remove_observer(self, observer: InteractionObserver) -> None:
        """Unregister a previously added observer (no-op if absent)."""
        if observer in self._observers:
            self._observers.remove(observer)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(
        self,
        source: Union[TemporalInteractionNetwork, Iterable[Interaction]],
        *,
        reset: bool = True,
        limit: Optional[int] = None,
        sample_every: int = 0,
        batch_size: int = 0,
    ) -> RunStatistics:
        """Process a whole interaction stream and return run statistics.

        Parameters
        ----------
        source:
            A :class:`TemporalInteractionNetwork` (its time-ordered
            interactions are used and its vertex universe is passed to the
            policy) or any time-ordered iterable of interactions.
        reset:
            Reset the policy before running (default).  Set to False to
            continue a previous run with more interactions.
        limit:
            Process at most this many interactions (None for all).
        sample_every:
            When positive, sample the policy's entry count and the elapsed
            time every ``sample_every`` interactions — the data behind the
            cumulative-cost curves of Figure 6.
        batch_size:
            When greater than one, pull fixed-size batches from the stream
            and hand them to :meth:`SelectionPolicy.process_many` instead of
            stepping one interaction at a time.  Provenance state and
            sampling positions are identical to the per-interaction path
            (batches are clipped at sampling boundaries); only the
            per-interaction Python overhead is amortised.  When observers
            are registered the engine falls back to per-interaction
            stepping, because observers must see the policy state after
            every single interaction.
        """
        if isinstance(source, TemporalInteractionNetwork):
            vertices: Sequence[Vertex] = source.vertices
            interactions: Iterable[Interaction] = source.interactions
        else:
            vertices = ()
            interactions = source

        if reset:
            self.policy.reset(vertices)
            self._interactions_processed = 0
            self._last_time = None

        if batch_size > 1 and not self._observers:
            return self._run_batched(
                interactions,
                limit=limit,
                sample_every=sample_every,
                batch_size=batch_size,
            )

        stats = RunStatistics()
        next_peak_check = _PEAK_CHECK_START if not sample_every else 0
        start = _time.perf_counter()
        for index, interaction in enumerate(interactions):
            if limit is not None and index >= limit:
                break
            self.step(interaction)
            stats.interactions += 1
            if sample_every and (index + 1) % sample_every == 0:
                entry_count = self.policy.entry_count()
                stats.samples.append(index + 1)
                stats.sampled_entry_counts.append(entry_count)
                stats.sampled_elapsed_seconds.append(_time.perf_counter() - start)
                if entry_count > stats.peak_entry_count:
                    stats.peak_entry_count = entry_count
            elif next_peak_check and (index + 1) >= next_peak_check:
                entry_count = self.policy.entry_count()
                if entry_count > stats.peak_entry_count:
                    stats.peak_entry_count = entry_count
                next_peak_check *= 2
        stats.elapsed_seconds = _time.perf_counter() - start
        stats.final_entry_count = self.policy.entry_count()
        stats.peak_entry_count = max(stats.peak_entry_count, stats.final_entry_count)
        return stats

    def _run_batched(
        self,
        interactions: Iterable[Interaction],
        *,
        limit: Optional[int],
        sample_every: int,
        batch_size: int,
    ) -> RunStatistics:
        """Batched drive loop behind :meth:`run` (no observers registered).

        Batches are clipped at ``sample_every`` boundaries so entry counts
        are sampled at exactly the positions of the per-interaction path.
        """
        policy = self.policy
        process_many = policy.process_many
        iterator = iter(interactions)
        if limit is not None:
            iterator = islice(iterator, max(limit, 0))

        stats = RunStatistics()
        processed = 0
        next_peak_check = _PEAK_CHECK_START if not sample_every else 0
        start = _time.perf_counter()
        while True:
            size = batch_size
            if sample_every:
                to_boundary = sample_every - (processed % sample_every)
                size = min(size, to_boundary)
            if next_peak_check:
                size = min(size, next_peak_check - processed)
            batch = list(islice(iterator, size))
            if not batch:
                break
            process_many(batch)
            processed += len(batch)
            self._interactions_processed += len(batch)
            self._last_time = batch[-1].time
            stats.interactions += len(batch)
            if sample_every and processed % sample_every == 0:
                entry_count = policy.entry_count()
                stats.samples.append(processed)
                stats.sampled_entry_counts.append(entry_count)
                stats.sampled_elapsed_seconds.append(_time.perf_counter() - start)
                if entry_count > stats.peak_entry_count:
                    stats.peak_entry_count = entry_count
            elif next_peak_check and processed >= next_peak_check:
                entry_count = policy.entry_count()
                if entry_count > stats.peak_entry_count:
                    stats.peak_entry_count = entry_count
                next_peak_check *= 2
        stats.elapsed_seconds = _time.perf_counter() - start
        stats.final_entry_count = policy.entry_count()
        stats.peak_entry_count = max(stats.peak_entry_count, stats.final_entry_count)
        return stats

    def step(self, interaction: Interaction) -> None:
        """Process a single interaction and notify observers."""
        self.policy.process(interaction)
        self._interactions_processed += 1
        self._last_time = interaction.time
        position = self._interactions_processed - 1
        for observer in self._observers:
            observer(self, interaction, position)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def interactions_processed(self) -> int:
        """Number of interactions processed since the last reset."""
        return self._interactions_processed

    @property
    def current_time(self) -> Optional[float]:
        """Timestamp of the last processed interaction (None before any)."""
        return self._last_time

    def buffer_total(self, vertex: Vertex) -> float:
        """The buffered quantity ``|B_v|`` of ``vertex``."""
        return self.policy.buffer_total(vertex)

    def origins(self, vertex: Vertex) -> OriginSet:
        """The origin decomposition ``O(t, B_v)`` of ``vertex``."""
        return self.policy.origins(vertex)

    def snapshot(self) -> ProvenanceSnapshot:
        """Provenance of every vertex with a non-empty buffer, right now."""
        origins: Dict[Vertex, OriginSet] = {}
        for vertex in self.policy.tracked_vertices():
            origins[vertex] = self.policy.origins(vertex)
        return ProvenanceSnapshot(
            time=self._last_time if self._last_time is not None else 0.0,
            interactions_processed=self._interactions_processed,
            origins=origins,
        )

    def buffer_totals(self) -> Dict[Vertex, float]:
        """Mapping of every non-empty vertex to its buffered quantity."""
        return {
            vertex: self.policy.buffer_total(vertex)
            for vertex in self.policy.tracked_vertices()
        }

    def store_stats(self):
        """Accounting of the policy's provenance stores, keyed by role.

        Uniform view over whatever :mod:`repro.stores` backend the policy
        was built with — spill backends report evictions and spilled bytes
        here (see :class:`repro.stores.StoreStats`).
        """
        return self.policy.store_stats()
