"""The temporal interaction network (TIN) container.

A :class:`TemporalInteractionNetwork` holds the directed graph ``G(V, E, R)``
of Definition 1: the vertex set ``V``, the edge set ``E`` (each edge carries
the history of its interactions), and the time-ordered interaction stream
``R``.  The container is the substrate on which every provenance policy of
the library operates.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.interaction import Interaction, Vertex, sort_interactions
from repro.exceptions import UnknownVertexError

__all__ = ["TemporalInteractionNetwork", "EdgeHistory"]


class EdgeHistory:
    """The interaction history of a single directed edge ``(source, dest)``.

    Stores ``(time, quantity)`` pairs in time order, mirroring the edge
    annotations of Figure 3(b) in the paper.
    """

    __slots__ = ("source", "destination", "_events")

    def __init__(self, source: Vertex, destination: Vertex):
        self.source = source
        self.destination = destination
        self._events: List[Tuple[float, float]] = []

    def add(self, time: float, quantity: float) -> None:
        """Record one transfer on this edge."""
        self._events.append((time, quantity))

    @property
    def events(self) -> Sequence[Tuple[float, float]]:
        """Time-ordered ``(time, quantity)`` pairs on this edge."""
        return tuple(self._events)

    @property
    def total_quantity(self) -> float:
        """Sum of quantities ever transferred along this edge."""
        return sum(quantity for _, quantity in self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EdgeHistory({self.source!r} -> {self.destination!r}, "
            f"{len(self._events)} interactions)"
        )


class TemporalInteractionNetwork:
    """A directed graph whose edges carry time-stamped quantity transfers.

    The network can be built incrementally with :meth:`add_interaction` or in
    one go with :meth:`from_interactions`.  Interactions are kept in
    time order; vertices are discovered automatically from interactions but
    isolated vertices may also be registered with :meth:`add_vertex`.
    """

    def __init__(self, name: str = "tin"):
        self.name = name
        self._vertices: Dict[Vertex, int] = {}
        self._interactions: List[Interaction] = []
        self._edges: Dict[Tuple[Vertex, Vertex], EdgeHistory] = {}
        self._out_neighbors: Dict[Vertex, Set[Vertex]] = defaultdict(set)
        self._in_neighbors: Dict[Vertex, Set[Vertex]] = defaultdict(set)
        self._sorted = True
        self._block_cache = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_interactions(
        cls,
        interactions: Iterable[Interaction],
        *,
        name: str = "tin",
        vertices: Optional[Iterable[Vertex]] = None,
    ) -> "TemporalInteractionNetwork":
        """Build a network from an interaction iterable.

        Parameters
        ----------
        interactions:
            Any iterable of :class:`Interaction` (or 4-tuples accepted by
            :meth:`Interaction.from_tuple`).
        name:
            Human-readable name used in reports.
        vertices:
            Optional extra vertices to register even if they never appear in
            an interaction.
        """
        network = cls(name=name)
        if vertices is not None:
            for vertex in vertices:
                network.add_vertex(vertex)
        for interaction in interactions:
            if not isinstance(interaction, Interaction):
                interaction = Interaction.from_tuple(interaction)
            network.add_interaction(interaction)
        return network

    def add_vertex(self, vertex: Vertex) -> None:
        """Register a vertex (no-op if already present)."""
        if vertex not in self._vertices:
            self._vertices[vertex] = len(self._vertices)

    def add_interaction(self, interaction: Interaction) -> None:
        """Append one interaction, registering its endpoints as vertices."""
        self.add_vertex(interaction.source)
        self.add_vertex(interaction.destination)
        self._block_cache = None
        if self._interactions and interaction.time < self._interactions[-1].time:
            self._sorted = False
        self._interactions.append(interaction)
        key = (interaction.source, interaction.destination)
        history = self._edges.get(key)
        if history is None:
            history = EdgeHistory(interaction.source, interaction.destination)
            self._edges[key] = history
        history.add(interaction.time, interaction.quantity)
        self._out_neighbors[interaction.source].add(interaction.destination)
        self._in_neighbors[interaction.destination].add(interaction.source)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> Tuple[Vertex, ...]:
        """All vertices in registration order."""
        return tuple(self._vertices)

    @property
    def vertex_index(self) -> Mapping[Vertex, int]:
        """Stable mapping vertex -> dense integer index (used by dense vectors)."""
        return dict(self._vertices)

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def num_interactions(self) -> int:
        return len(self._interactions)

    @property
    def interactions(self) -> List[Interaction]:
        """Interactions in time order (sorted lazily if needed)."""
        if not self._sorted:
            self._interactions = sort_interactions(self._interactions)
            self._sorted = True
        return list(self._interactions)

    def to_block(self):
        """The whole interaction stream as one columnar block (cached).

        Interns every registered vertex first (so interner ids equal the
        network's registration indices) and columnarises the time-ordered
        interactions.  The block is cached — repeated runs over the same
        network pay the conversion once — and invalidated whenever an
        interaction is added.
        """
        if self._block_cache is None:
            from repro.core.blocks import InteractionBlock, VertexInterner

            interner = VertexInterner(self._vertices)
            self._block_cache = InteractionBlock.from_interactions(
                self.interactions, interner
            )
        return self._block_cache

    def __iter__(self) -> Iterator[Interaction]:
        return iter(self.interactions)

    def __len__(self) -> int:
        return len(self._interactions)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._vertices

    def edge(self, source: Vertex, destination: Vertex) -> EdgeHistory:
        """Return the history of the directed edge ``source -> destination``.

        Raises
        ------
        UnknownVertexError
            If either endpoint is not a vertex of the network or the edge has
            no interactions.
        """
        self._require_vertex(source)
        self._require_vertex(destination)
        try:
            return self._edges[(source, destination)]
        except KeyError:
            raise UnknownVertexError(
                f"no interactions recorded on edge {source!r} -> {destination!r}"
            ) from None

    def edges(self) -> Iterator[EdgeHistory]:
        """Iterate over all edge histories."""
        return iter(self._edges.values())

    def out_neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """Vertices that ``vertex`` has sent quantities to."""
        self._require_vertex(vertex)
        return set(self._out_neighbors.get(vertex, set()))

    def in_neighbors(self, vertex: Vertex) -> Set[Vertex]:
        """Vertices that have sent quantities to ``vertex``."""
        self._require_vertex(vertex)
        return set(self._in_neighbors.get(vertex, set()))

    def degree(self, vertex: Vertex) -> int:
        """Total number of distinct in- and out-neighbours of ``vertex``."""
        self._require_vertex(vertex)
        return len(self._out_neighbors.get(vertex, set())) + len(
            self._in_neighbors.get(vertex, set())
        )

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def total_quantity(self) -> float:
        """Sum of all transferred quantities over all interactions."""
        return sum(r.quantity for r in self._interactions)

    def average_quantity(self) -> float:
        """Mean transferred quantity per interaction (0.0 for empty networks)."""
        if not self._interactions:
            return 0.0
        return self.total_quantity() / len(self._interactions)

    def time_span(self) -> Tuple[float, float]:
        """(earliest, latest) interaction timestamps.

        Raises
        ------
        ValueError
            If the network has no interactions.
        """
        if not self._interactions:
            raise ValueError("network has no interactions")
        times = [r.time for r in self._interactions]
        return (min(times), max(times))

    def generated_quantity_by_vertex(self) -> Dict[Vertex, float]:
        """Total quantity *generated* (born) at each vertex.

        Runs the NoProv propagation of Algorithm 1 to determine, per vertex,
        the amount of newborn quantity it injected into the network.  The
        paper uses exactly this measure to choose the top-k contributing
        vertices for selective provenance (Section 7.3).
        """
        buffers: Dict[Vertex, float] = defaultdict(float)
        generated: Dict[Vertex, float] = defaultdict(float)
        for interaction in self.interactions:
            available = buffers[interaction.source]
            relayed = min(interaction.quantity, available)
            newborn = interaction.quantity - relayed
            buffers[interaction.source] = available - relayed
            buffers[interaction.destination] += interaction.quantity
            if newborn > 0:
                generated[interaction.source] += newborn
        return dict(generated)

    def summary(self) -> Dict[str, float]:
        """Dataset characteristics in the shape of the paper's Table 6."""
        return {
            "name": self.name,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "num_interactions": self.num_interactions,
            "average_quantity": self.average_quantity(),
        }

    def _require_vertex(self, vertex: Vertex) -> None:
        if vertex not in self._vertices:
            raise UnknownVertexError(f"unknown vertex {vertex!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TemporalInteractionNetwork(name={self.name!r}, "
            f"|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"|R|={self.num_interactions})"
        )
