"""JSON serialization of provenance results.

Downstream tools (dashboards, notebooks, the alerting pipeline of Section
7.6) usually want provenance results in a plain, language-neutral format.
This module converts :class:`~repro.core.provenance.OriginSet` and
:class:`~repro.core.provenance.ProvenanceSnapshot` objects to and from
JSON-compatible dictionaries, handling the artificial
:data:`~repro.core.provenance.UNKNOWN_ORIGIN` sentinel explicitly.

Vertex identifiers are serialized with ``repr``-free, JSON-native types when
possible (ints and strings pass through unchanged); other hashable vertex
types are converted to strings, which is lossy but explicit (a warning field
records it).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.core.interaction import Vertex
from repro.core.provenance import UNKNOWN_ORIGIN, OriginSet, ProvenanceSnapshot

__all__ = [
    "origin_set_to_dict",
    "origin_set_from_dict",
    "snapshot_to_dict",
    "snapshot_from_dict",
    "write_snapshot_json",
    "read_snapshot_json",
]

#: JSON representation of the artificial unknown-origin vertex.
_UNKNOWN_KEY = "__unknown_origin__"


def _encode_vertex(vertex: Vertex) -> Union[str, int]:
    if vertex is UNKNOWN_ORIGIN:
        return _UNKNOWN_KEY
    if isinstance(vertex, (str, int)):
        return vertex
    return str(vertex)


def _decode_vertex(encoded: Union[str, int]) -> Vertex:
    if encoded == _UNKNOWN_KEY:
        return UNKNOWN_ORIGIN
    return encoded


def origin_set_to_dict(origins: OriginSet) -> Dict[str, Any]:
    """Convert an origin set to a JSON-compatible dict."""
    return {
        "total": origins.total,
        "origins": [
            {"origin": _encode_vertex(origin), "quantity": quantity}
            for origin, quantity in sorted(
                origins.items(), key=lambda item: (-item[1], str(item[0]))
            )
        ],
    }


def origin_set_from_dict(payload: Dict[str, Any]) -> OriginSet:
    """Rebuild an origin set from :func:`origin_set_to_dict` output."""
    origins = OriginSet()
    for entry in payload.get("origins", []):
        origins.add(_decode_vertex(entry["origin"]), float(entry["quantity"]))
    return origins


def snapshot_to_dict(snapshot: ProvenanceSnapshot) -> Dict[str, Any]:
    """Convert a provenance snapshot to a JSON-compatible dict."""
    return {
        "time": snapshot.time,
        "interactions_processed": snapshot.interactions_processed,
        "vertices": [
            {
                "vertex": _encode_vertex(vertex),
                **origin_set_to_dict(origin_set),
            }
            for vertex, origin_set in sorted(
                snapshot.items(), key=lambda item: str(item[0])
            )
        ],
    }


def snapshot_from_dict(payload: Dict[str, Any]) -> ProvenanceSnapshot:
    """Rebuild a provenance snapshot from :func:`snapshot_to_dict` output."""
    origins = {
        _decode_vertex(entry["vertex"]): origin_set_from_dict(entry)
        for entry in payload.get("vertices", [])
    }
    return ProvenanceSnapshot(
        time=float(payload.get("time", 0.0)),
        interactions_processed=int(payload.get("interactions_processed", 0)),
        origins=origins,
    )


def write_snapshot_json(snapshot: ProvenanceSnapshot, path: Union[str, Path]) -> None:
    """Write a snapshot to a JSON file."""
    path = Path(path)
    with path.open("w") as handle:
        json.dump(snapshot_to_dict(snapshot), handle, indent=2)


def read_snapshot_json(path: Union[str, Path]) -> ProvenanceSnapshot:
    """Read a snapshot previously written by :func:`write_snapshot_json`."""
    path = Path(path)
    with path.open("r") as handle:
        return snapshot_from_dict(json.load(handle))
