"""Core TIN substrate: interactions, networks, buffers, engine, provenance."""

from repro.core.blocks import InteractionBlock, VertexInterner
from repro.core.buffer import BufferEntry, FifoBuffer, HeapBuffer, LifoBuffer, QuantityBuffer
from repro.core.engine import ProvenanceEngine, RunStatistics
from repro.core.interaction import Interaction, Vertex, sort_interactions, validate_interactions
from repro.core.network import EdgeHistory, TemporalInteractionNetwork
from repro.core.checkpoint import load_engine, load_policy, save_engine, save_policy
from repro.core.provenance import UNKNOWN_ORIGIN, OriginSet, ProvenanceSnapshot
from repro.core.serialization import (
    origin_set_from_dict,
    origin_set_to_dict,
    read_snapshot_json,
    snapshot_from_dict,
    snapshot_to_dict,
    write_snapshot_json,
)
from repro.core.stream import InteractionStream, merge_streams, take_prefix, time_window

__all__ = [
    "InteractionBlock",
    "VertexInterner",
    "load_engine",
    "load_policy",
    "save_engine",
    "save_policy",
    "origin_set_from_dict",
    "origin_set_to_dict",
    "read_snapshot_json",
    "snapshot_from_dict",
    "snapshot_to_dict",
    "write_snapshot_json",
    "BufferEntry",
    "FifoBuffer",
    "HeapBuffer",
    "LifoBuffer",
    "QuantityBuffer",
    "ProvenanceEngine",
    "RunStatistics",
    "Interaction",
    "Vertex",
    "sort_interactions",
    "validate_interactions",
    "EdgeHistory",
    "TemporalInteractionNetwork",
    "UNKNOWN_ORIGIN",
    "OriginSet",
    "ProvenanceSnapshot",
    "InteractionStream",
    "merge_streams",
    "take_prefix",
    "time_window",
]
