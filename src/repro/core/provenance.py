"""Provenance result types: origin decompositions of buffered quantities.

The provenance problem (Definition 2 of the paper) asks, for a vertex ``v``
at time ``t``, for the set ``O(t, B_v)`` of ``(origin, quantity)`` pairs whose
quantities sum to the buffered total ``|B_v|``.  :class:`OriginSet` is the
canonical representation of such a decomposition; it is returned by every
policy in the library (regardless of the internal buffer organisation) so
analysis code can stay policy-agnostic.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.core.interaction import Vertex

__all__ = ["UNKNOWN_ORIGIN", "OriginSet", "ProvenanceSnapshot"]


class _UnknownOrigin:
    """Sentinel for the artificial vertex ``alpha`` of Section 5.3.

    The windowing and budget-based approaches merge provenance that is no
    longer individually tracked into a single artificial origin representing
    "any vertex".  A dedicated singleton (rather than ``None`` or a magic
    string) keeps it from colliding with real vertex identifiers.
    """

    _instance: Optional["_UnknownOrigin"] = None

    def __new__(cls) -> "_UnknownOrigin":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNKNOWN_ORIGIN"

    def __reduce__(self):
        return (_UnknownOrigin, ())


#: The artificial origin ``alpha`` used when provenance has been forgotten.
UNKNOWN_ORIGIN = _UnknownOrigin()


class OriginSet:
    """A mapping ``origin vertex -> quantity`` describing ``O(t, B_v)``.

    The class behaves like a read-mostly mapping with convenience helpers
    for the analyses used throughout the paper: totals, fractions, top
    contributors and merging.
    """

    __slots__ = ("_quantities",)

    def __init__(self, quantities: Optional[Mapping[Vertex, float]] = None):
        self._quantities: Dict[Vertex, float] = {}
        if quantities:
            for origin, quantity in quantities.items():
                self.add(origin, quantity)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, origin: Vertex, quantity: float) -> None:
        """Add ``quantity`` units originating from ``origin``.

        Quantities of (numerically) zero are ignored so the set only keeps
        genuine contributors.
        """
        if quantity < 0:
            raise ValueError(f"origin quantities must be non-negative, got {quantity!r}")
        if quantity == 0:
            return
        self._quantities[origin] = self._quantities.get(origin, 0.0) + quantity

    def merge(self, other: "OriginSet") -> "OriginSet":
        """Return a new set holding the element-wise sum of both sets."""
        merged = OriginSet(self._quantities)
        for origin, quantity in other.items():
            merged.add(origin, quantity)
        return merged

    # ------------------------------------------------------------------
    # mapping protocol
    # ------------------------------------------------------------------
    def __getitem__(self, origin: Vertex) -> float:
        return self._quantities[origin]

    def get(self, origin: Vertex, default: float = 0.0) -> float:
        """Quantity originating from ``origin`` (``default`` if absent)."""
        return self._quantities.get(origin, default)

    def __contains__(self, origin: Vertex) -> bool:
        return origin in self._quantities

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._quantities)

    def __len__(self) -> int:
        return len(self._quantities)

    def items(self) -> Iterable[Tuple[Vertex, float]]:
        return self._quantities.items()

    def origins(self) -> Iterable[Vertex]:
        """The contributing origin vertices."""
        return self._quantities.keys()

    def as_dict(self) -> Dict[Vertex, float]:
        """A plain ``dict`` copy of the decomposition."""
        return dict(self._quantities)

    # ------------------------------------------------------------------
    # analyses
    # ------------------------------------------------------------------
    @property
    def total(self) -> float:
        """The total quantity, i.e. ``|B_v|``."""
        return sum(self._quantities.values())

    @property
    def known_total(self) -> float:
        """Total quantity excluding the artificial :data:`UNKNOWN_ORIGIN`."""
        return sum(
            quantity
            for origin, quantity in self._quantities.items()
            if origin is not UNKNOWN_ORIGIN
        )

    @property
    def unknown_quantity(self) -> float:
        """Quantity attributed to the artificial :data:`UNKNOWN_ORIGIN`."""
        return self._quantities.get(UNKNOWN_ORIGIN, 0.0)

    def fractions(self) -> Dict[Vertex, float]:
        """Per-origin fractions of the total (empty dict for an empty set)."""
        total = self.total
        if total <= 0:
            return {}
        return {origin: quantity / total for origin, quantity in self._quantities.items()}

    def top(self, n: int) -> List[Tuple[Vertex, float]]:
        """The ``n`` largest contributors, ordered by decreasing quantity."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n!r}")
        ranked = sorted(self._quantities.items(), key=lambda item: (-item[1], repr(item[0])))
        return ranked[:n]

    def restricted_to(self, origins: Iterable[Vertex]) -> "OriginSet":
        """A new set keeping only the given origins."""
        keep = set(origins)
        return OriginSet(
            {origin: q for origin, q in self._quantities.items() if origin in keep}
        )

    def approx_equal(self, other: "OriginSet", *, rel_tol: float = 1e-9,
                     abs_tol: float = 1e-9) -> bool:
        """True when both sets describe the same decomposition up to tolerance."""
        origins = set(self._quantities) | set(other._quantities)
        return all(
            math.isclose(self.get(origin), other.get(origin), rel_tol=rel_tol, abs_tol=abs_tol)
            for origin in origins
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OriginSet):
            return NotImplemented
        return self._quantities == other._quantities

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{origin!r}: {quantity:g}" for origin, quantity in self.items())
        return f"OriginSet({{{parts}}})"


class ProvenanceSnapshot:
    """The provenance state of every (non-empty) vertex at one moment in time.

    Produced by :meth:`repro.core.engine.ProvenanceEngine.snapshot`; maps each
    vertex with a non-empty buffer to its :class:`OriginSet`.
    """

    __slots__ = ("time", "interactions_processed", "_origins")

    def __init__(
        self,
        time: float,
        interactions_processed: int,
        origins: Mapping[Vertex, OriginSet],
    ):
        self.time = time
        self.interactions_processed = interactions_processed
        self._origins: Dict[Vertex, OriginSet] = dict(origins)

    def __getitem__(self, vertex: Vertex) -> OriginSet:
        return self._origins[vertex]

    def get(self, vertex: Vertex) -> OriginSet:
        """Origin set of ``vertex`` (empty set for untouched vertices)."""
        return self._origins.get(vertex, OriginSet())

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._origins

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._origins)

    def __len__(self) -> int:
        return len(self._origins)

    def items(self) -> Iterable[Tuple[Vertex, OriginSet]]:
        return self._origins.items()

    def total_quantity(self) -> float:
        """Sum of buffered quantities over all vertices in the snapshot."""
        return sum(origin_set.total for origin_set in self._origins.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProvenanceSnapshot(time={self.time:g}, "
            f"interactions={self.interactions_processed}, "
            f"vertices={len(self._origins)})"
        )
