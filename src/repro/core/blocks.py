"""Columnar interaction blocks: struct-of-arrays batches with interned vertices.

The object pipeline hands policies a stream of boxed :class:`Interaction`
dataclasses keyed by hashed vertex objects.  That representation is flexible
but slow on the hot path (attribute lookups, per-vertex hashing) and cannot
be shared across processes without pickling.  This module provides the
columnar alternative the array-backed policy kernels run on:

* :class:`VertexInterner` — a stable, growable vertex <-> ``int32`` id table.
  Ids are assigned in first-appearance order, which deliberately matches the
  registration order of :class:`~repro.core.network.TemporalInteractionNetwork`
  (source before destination, row by row), so a policy that derives its
  vertex universe from an interner sees exactly the universe an object run
  would.  The table snapshots/restores for checkpoints.
* :class:`InteractionBlock` — one batch of interactions as four parallel
  arrays (``src_ids``/``dst_ids`` as ``int32``, ``times``/``quantities`` as
  ``float64``) plus the interner that resolves the ids.  Blocks slice and
  fancy-index without copying the Python-object form and materialise
  :class:`Interaction` objects only on demand (the compatibility adapter for
  policies without a columnar kernel).

Blocks only change *representation*, never semantics: iterating a block
yields exactly the interactions it was built from, in order, and the policy
kernels that consume id arrays directly are bit-identical to the object
path (enforced by ``tests/columnar/``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.interaction import Interaction, Vertex

__all__ = ["VertexInterner", "InteractionBlock"]


class VertexInterner:
    """Stable bidirectional mapping between vertices and dense ``int32`` ids.

    Ids are assigned on first appearance and never change or get reused, so
    id-indexed policy state (total arrays, matrix rows, buffer lists) stays
    valid as the table grows — the property that makes interned state
    checkpointable and, eventually, shareable across processes.
    """

    __slots__ = ("_ids", "_vertices")

    def __init__(self, vertices: Iterable[Vertex] = ()) -> None:
        self._ids: dict = {}
        self._vertices: List[Vertex] = []
        for vertex in vertices:
            self.intern(vertex)

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------
    def intern(self, vertex: Vertex) -> int:
        """The id of ``vertex``, assigning the next free id on first sight."""
        ids = self._ids
        existing = ids.get(vertex)
        if existing is not None:
            return existing
        assigned = len(self._vertices)
        ids[vertex] = assigned
        self._vertices.append(vertex)
        return assigned

    def id_of(self, vertex: Vertex) -> int:
        """The id of an already-interned vertex.

        Raises
        ------
        KeyError
            If the vertex has never been interned.
        """
        return self._ids[vertex]

    def get_id(self, vertex: Vertex, default: int = -1) -> int:
        """The id of ``vertex``, or ``default`` when never interned."""
        return self._ids.get(vertex, default)

    def vertex_of(self, vertex_id: int) -> Vertex:
        """The vertex a given id stands for."""
        return self._vertices[vertex_id]

    @property
    def vertices(self) -> List[Vertex]:
        """All interned vertices in id order (id ``i`` is ``vertices[i]``)."""
        return self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._ids

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> List[Vertex]:
        """The id-ordered vertex list; enough to rebuild the whole table."""
        return list(self._vertices)

    def restore(self, vertices: Sequence[Vertex]) -> None:
        """Replace the table with a :meth:`snapshot` (checkpoint restore)."""
        self._vertices = list(vertices)
        self._ids = {vertex: position for position, vertex in enumerate(self._vertices)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VertexInterner({len(self._vertices)} vertices)"


class InteractionBlock:
    """A batch of interactions as parallel arrays (struct of arrays).

    ``src_ids[i] -> dst_ids[i]`` transfers ``quantities[i]`` at
    ``times[i]``; the shared :class:`VertexInterner` resolves ids back to
    vertex objects.  Blocks are immutable by convention — slices share the
    underlying arrays.

    ``owner`` is an opaque object kept alive for as long as the block (or
    any slice of it) exists.  Blocks over plain heap arrays leave it
    ``None``; zero-copy views over externally managed memory — the shared
    segments of :mod:`repro.runtime.shm` — pass the segment lease here, so
    plain Python refcounting keeps the mapping open until the last view
    dies.
    """

    __slots__ = ("src_ids", "dst_ids", "times", "quantities", "interner", "owner")

    def __init__(
        self,
        src_ids: np.ndarray,
        dst_ids: np.ndarray,
        times: np.ndarray,
        quantities: np.ndarray,
        interner: VertexInterner,
        owner: object = None,
    ) -> None:
        self.src_ids = src_ids
        self.dst_ids = dst_ids
        self.times = times
        self.quantities = quantities
        self.interner = interner
        self.owner = owner

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_interactions(
        cls,
        interactions: Sequence[Interaction],
        interner: Optional[VertexInterner] = None,
    ) -> "InteractionBlock":
        """Columnarise a sequence of interaction objects.

        Vertices are interned source-before-destination, row by row — the
        same first-appearance order a
        :class:`~repro.core.network.TemporalInteractionNetwork` registers
        vertices in.
        """
        if interner is None:
            interner = VertexInterner()
        count = len(interactions)
        src = np.empty(count, dtype=np.int32)
        dst = np.empty(count, dtype=np.int32)
        times = np.empty(count, dtype=np.float64)
        quantities = np.empty(count, dtype=np.float64)
        intern = interner.intern
        for position, interaction in enumerate(interactions):
            src[position] = intern(interaction.source)
            dst[position] = intern(interaction.destination)
            times[position] = interaction.time
            quantities[position] = interaction.quantity
        return cls(src, dst, times, quantities, interner)

    @classmethod
    def from_columns(
        cls,
        src_ids: Sequence[int],
        dst_ids: Sequence[int],
        times: Sequence[float],
        quantities: Sequence[float],
        interner: VertexInterner,
    ) -> "InteractionBlock":
        """Build a block from already-interned column sequences (ingest path)."""
        return cls(
            np.asarray(src_ids, dtype=np.int32),
            np.asarray(dst_ids, dtype=np.int32),
            np.asarray(times, dtype=np.float64),
            np.asarray(quantities, dtype=np.float64),
            interner,
        )

    # ------------------------------------------------------------------
    # array-level access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.src_ids)

    def slice(self, start: int, stop: int) -> "InteractionBlock":
        """A zero-copy view of rows ``[start, stop)``."""
        return InteractionBlock(
            self.src_ids[start:stop],
            self.dst_ids[start:stop],
            self.times[start:stop],
            self.quantities[start:stop],
            self.interner,
            owner=self.owner,
        )

    def take(self, positions: np.ndarray) -> "InteractionBlock":
        """The rows at ``positions`` (fancy-indexed copy, order preserved)."""
        return InteractionBlock(
            self.src_ids[positions],
            self.dst_ids[positions],
            self.times[positions],
            self.quantities[positions],
            self.interner,
        )

    @property
    def last_time(self) -> float:
        """Timestamp of the final row (the block's watermark)."""
        return float(self.times[-1])

    @property
    def nbytes(self) -> int:
        """Bytes held by the four column arrays (the ingest footprint)."""
        return (
            self.src_ids.nbytes
            + self.dst_ids.nbytes
            + self.times.nbytes
            + self.quantities.nbytes
        )

    # ------------------------------------------------------------------
    # object-level compatibility
    # ------------------------------------------------------------------
    def to_interactions(self) -> List[Interaction]:
        """Materialise the rows as :class:`Interaction` objects.

        The adapter behind the default ``process_block`` of policies without
        an array kernel; also handy in tests.  Yields exactly the rows the
        block was built from, in order.
        """
        vertices = self.interner.vertices
        return [
            Interaction(vertices[s], vertices[d], t, q)
            for s, d, t, q in zip(
                self.src_ids.tolist(),
                self.dst_ids.tolist(),
                self.times.tolist(),
                self.quantities.tolist(),
            )
        ]

    def __iter__(self) -> Iterator[Interaction]:
        return iter(self.to_interactions())

    def column_lists(self) -> Tuple[List[int], List[int], List[float], List[float]]:
        """The four columns as plain Python lists (kernel-loop form).

        ``tolist`` is a single C-level conversion per column; kernels iterate
        the resulting lists because indexing Python lists by int is much
        cheaper than boxing numpy scalars element by element.
        """
        return (
            self.src_ids.tolist(),
            self.dst_ids.tolist(),
            self.times.tolist(),
            self.quantities.tolist(),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InteractionBlock({len(self)} interactions, "
            f"{len(self.interner)} interned vertices)"
        )
