"""Streaming access to interaction sequences.

The provenance algorithms of the paper are *online*: they process one
interaction at a time, in time order, and keep their annotation state up to
date so provenance can be queried after any prefix of the stream.  This
module provides small utilities for working with interaction streams:
time-ordering enforcement, prefix/window slicing, and merging of multiple
streams (e.g. several CSV files covering different time ranges).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.core.interaction import Interaction, validate_interactions

__all__ = [
    "InteractionStream",
    "merge_streams",
    "take_prefix",
    "time_window",
]


class InteractionStream:
    """A validated, time-ordered view over an interaction iterable.

    Wraps any iterable of :class:`Interaction` (or raw 4-tuples) and yields
    :class:`Interaction` objects in time order.  If ``assume_sorted`` is
    False the input is materialised and sorted; otherwise ordering is
    verified lazily and a violation raises
    :class:`~repro.exceptions.InvalidInteractionError`.
    """

    def __init__(
        self,
        interactions: Iterable,
        *,
        assume_sorted: bool = False,
        allow_self_loops: bool = True,
    ):
        self._interactions = interactions
        self._assume_sorted = assume_sorted
        self._allow_self_loops = allow_self_loops

    def __iter__(self) -> Iterator[Interaction]:
        if self._assume_sorted:
            yield from validate_interactions(
                self._interactions,
                require_sorted=True,
                allow_self_loops=self._allow_self_loops,
            )
        else:
            materialised = [
                r
                for r in validate_interactions(
                    self._interactions,
                    require_sorted=False,
                    allow_self_loops=self._allow_self_loops,
                )
            ]
            materialised.sort(key=lambda r: r.time)
            yield from materialised


def merge_streams(*streams: Iterable[Interaction]) -> Iterator[Interaction]:
    """Merge several time-ordered interaction streams into one ordered stream.

    Each input stream must already be sorted by time; a violation raises
    :class:`~repro.exceptions.InvalidInteractionError` only when the
    offending interaction is reached, after the valid prefix has been
    yielded — so prefix consumers (``take_prefix``, ``limit=``) succeed over
    streams whose violations lie beyond what they consume.  Ties across
    streams come out in argument order, deterministically.  The merge is
    strictly lazy (one interaction of lookahead per input), so arbitrarily
    long streams can be combined without materialising them.

    This is the plain-iterable facade over
    :class:`repro.sources.MergeSource`, which additionally merges *live*
    sources (stalling on quiet inputs instead of misordering) and batches
    its lookahead; use the source form when any input is still growing.
    """
    # Imported lazily: repro.sources sits above repro.core in the layering.
    from repro.sources import MergeSource, SequenceSource

    if not streams:
        return
    # lookahead=1: at most one item beyond the yield point is consumed per
    # input, so an ordering violation raises only when actually reached.
    yield from MergeSource(
        *(SequenceSource(stream) for stream in streams), lookahead=1
    )


def take_prefix(
    interactions: Iterable[Interaction], count: int
) -> Iterator[Interaction]:
    """Yield only the first ``count`` interactions of a stream.

    Used by the cumulative-cost experiment (Figure 6), which measures the
    growth of runtime and memory with the number of processed interactions.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count!r}")
    for index, interaction in enumerate(interactions):
        if index >= count:
            return
        yield interaction


def time_window(
    interactions: Iterable[Interaction],
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> Iterator[Interaction]:
    """Yield interactions whose timestamps fall inside ``[start, end]``.

    ``None`` bounds are unbounded on that side.  The input is assumed to be
    time-ordered so iteration stops as soon as ``end`` is passed.
    """
    for interaction in interactions:
        if start is not None and interaction.time < start:
            continue
        if end is not None and interaction.time > end:
            return
        yield interaction
