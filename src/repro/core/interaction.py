"""Interaction records: the atomic events of a temporal interaction network.

An interaction ``r`` is the quadruple ``(r.s, r.d, r.t, r.q)`` of Definition 1
in the paper: source vertex, destination vertex, timestamp and transferred
quantity.  Vertices are arbitrary hashable identifiers (ints, strings, ...);
timestamps and quantities are non-negative real numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, List, Sequence, Tuple

from repro.exceptions import InvalidInteractionError

__all__ = ["Vertex", "Interaction", "sort_interactions", "validate_interactions"]

#: Type alias for vertex identifiers.  Any hashable value is accepted.
Vertex = Hashable


@dataclass(frozen=True, order=False)
class Interaction:
    """A single quantity transfer ``source -> destination`` at time ``time``.

    Attributes
    ----------
    source:
        The vertex sending the quantity (``r.s`` in the paper).
    destination:
        The vertex receiving the quantity (``r.d``).
    time:
        The timestamp of the transfer (``r.t``), a non-negative finite float.
    quantity:
        The transferred quantity (``r.q``), a non-negative finite float.
    """

    source: Vertex
    destination: Vertex
    time: float
    quantity: float

    def __post_init__(self) -> None:
        if not _is_finite_number(self.time):
            raise InvalidInteractionError(
                f"interaction time must be a finite real number, got {self.time!r}"
            )
        if not _is_finite_number(self.quantity):
            raise InvalidInteractionError(
                f"interaction quantity must be a finite real number, got {self.quantity!r}"
            )
        if self.time < 0:
            raise InvalidInteractionError(
                f"interaction time must be non-negative, got {self.time!r}"
            )
        if self.quantity < 0:
            raise InvalidInteractionError(
                f"interaction quantity must be non-negative, got {self.quantity!r}"
            )

    @property
    def is_self_loop(self) -> bool:
        """True when source and destination are the same vertex."""
        return self.source == self.destination

    def as_tuple(self) -> Tuple[Vertex, Vertex, float, float]:
        """Return the ``(source, destination, time, quantity)`` quadruple."""
        return (self.source, self.destination, self.time, self.quantity)

    @classmethod
    def from_tuple(cls, record: Sequence) -> "Interaction":
        """Build an interaction from any 4-element sequence.

        Raises
        ------
        InvalidInteractionError
            If the sequence does not have exactly four elements or the time
            or quantity cannot be interpreted as floats.
        """
        if len(record) != 4:
            raise InvalidInteractionError(
                f"expected a 4-element (source, destination, time, quantity) "
                f"record, got {len(record)} elements"
            )
        source, destination, time, quantity = record
        try:
            return cls(source, destination, float(time), float(quantity))
        except (TypeError, ValueError) as exc:
            raise InvalidInteractionError(
                f"cannot interpret record {record!r} as an interaction: {exc}"
            ) from exc

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{self.source} -> {self.destination} @t={self.time:g} "
            f"q={self.quantity:g}>"
        )


def _is_finite_number(value: object) -> bool:
    """Return True for int/float values that are finite (not NaN/inf)."""
    if isinstance(value, bool):
        return False
    if not isinstance(value, (int, float)):
        return False
    return math.isfinite(value)


def sort_interactions(interactions: Iterable[Interaction]) -> List[Interaction]:
    """Return interactions sorted by time (stable for equal timestamps).

    The propagation algorithms of the paper process interactions strictly in
    order of time; ties keep their original relative order so that repeated
    runs over the same input are deterministic.
    """
    return sorted(interactions, key=lambda r: r.time)


def validate_interactions(
    interactions: Iterable[Interaction],
    *,
    require_sorted: bool = False,
    allow_self_loops: bool = True,
) -> Iterator[Interaction]:
    """Yield interactions while checking model constraints.

    Parameters
    ----------
    interactions:
        The interaction stream to validate.
    require_sorted:
        When True, raise :class:`InvalidInteractionError` if a timestamp is
        smaller than its predecessor's.
    allow_self_loops:
        When False, raise on interactions whose source equals their
        destination.
    """
    previous_time: float = -math.inf
    for index, interaction in enumerate(interactions):
        if not isinstance(interaction, Interaction):
            interaction = Interaction.from_tuple(interaction)
        if require_sorted and interaction.time < previous_time:
            raise InvalidInteractionError(
                f"interaction #{index} at time {interaction.time} is earlier "
                f"than its predecessor at time {previous_time}"
            )
        if not allow_self_loops and interaction.is_self_loop:
            raise InvalidInteractionError(
                f"interaction #{index} is a self-loop on vertex "
                f"{interaction.source!r}, which is disallowed"
            )
        previous_time = interaction.time
        yield interaction
