"""Per-vertex buffer data structures used by the selection policies.

Every vertex ``v`` of a TIN owns a buffer ``B_v`` that accumulates incoming
quantities.  The paper's selection policies differ only in how a buffer is
organised and which stored quantity elements are selected when an
interaction relays quantity out of the buffer:

* generation-time policies (Section 4.1) keep ``(origin, birth_time,
  quantity)`` triples in a min- or max-heap keyed by birth time;
* receipt-order policies (Section 4.2) keep ``(origin, quantity)`` pairs in
  a FIFO queue or a LIFO stack;
* the proportional policy (Section 4.3) keeps a provenance vector (dense or
  sparse), implemented in :mod:`repro.policies.proportional`.

The classes here implement the first two families together with the shared
bookkeeping (buffer totals, iteration, provenance extraction).  Each buffer
entry optionally carries a transfer *path* so the same structures also back
how-provenance tracking (Section 6).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable, Iterator, List, Optional, Tuple

from repro.core.interaction import Vertex
from repro.core.provenance import OriginSet

__all__ = [
    "BufferEntry",
    "QuantityBuffer",
    "HeapBuffer",
    "FifoBuffer",
    "LifoBuffer",
]

# Tolerance below which a residual quantity is considered exhausted.  Using a
# small epsilon keeps floating point round-off from creating zero-quantity
# entries that would bloat the buffers.
_EPSILON = 1e-12


@dataclass
class BufferEntry:
    """One quantity element stored in a vertex buffer.

    Attributes
    ----------
    origin:
        The vertex that generated (gave birth to) this quantity.
    quantity:
        The amount of quantity carried by this element.
    birth_time:
        The time at which the quantity was generated.  Receipt-order buffers
        do not need it for selection but keep it for reporting.
    path:
        Optional transfer path (sequence of vertices, starting at ``origin``)
        used by how-provenance tracking.  ``None`` when path tracking is off.
    """

    origin: Vertex
    quantity: float
    birth_time: float = 0.0
    path: Optional[Tuple[Vertex, ...]] = None

    def split(self, amount: float) -> "BufferEntry":
        """Remove ``amount`` from this entry and return it as a new entry.

        The new entry shares the origin, birth time and path of this entry,
        mirroring the triple split of Algorithm 2 (lines 8-12).
        """
        if amount <= 0:
            raise ValueError(f"split amount must be positive, got {amount!r}")
        if amount > self.quantity + _EPSILON:
            raise ValueError(
                f"cannot split {amount!r} from an entry holding {self.quantity!r}"
            )
        self.quantity -= amount
        return BufferEntry(
            origin=self.origin,
            quantity=amount,
            birth_time=self.birth_time,
            path=self.path,
        )

    def copy(self) -> "BufferEntry":
        """Return an independent copy of this entry."""
        return BufferEntry(self.origin, self.quantity, self.birth_time, self.path)


class QuantityBuffer:
    """Base class for entry-based buffers (heap, FIFO, LIFO).

    Subclasses define the *selection order*: which stored entry is handed
    out next when quantity must leave the buffer.  The base class maintains
    the running total ``|B_v|`` and implements provenance extraction, which
    is identical for every entry-based policy.
    """

    __slots__ = ("_total",)

    def __init__(self) -> None:
        self._total = 0.0

    # -- interface to implement -----------------------------------------
    def push(self, entry: BufferEntry) -> None:
        """Add an entry to the buffer (updates the total)."""
        raise NotImplementedError

    def _peek(self) -> BufferEntry:
        """Return (without removing) the entry that would be selected next."""
        raise NotImplementedError

    def _pop(self) -> BufferEntry:
        """Remove and return the entry that would be selected next."""
        raise NotImplementedError

    def entries(self) -> Iterator[BufferEntry]:
        """Iterate over all stored entries (order unspecified)."""
        raise NotImplementedError

    def __len__(self) -> int:
        """Number of stored entries."""
        raise NotImplementedError

    # -- shared behaviour -------------------------------------------------
    @property
    def total(self) -> float:
        """The buffered quantity ``|B_v|``."""
        return self._total

    def is_empty(self) -> bool:
        return len(self) == 0 or self._total <= _EPSILON

    def drain(self, amount: float) -> List[BufferEntry]:
        """Remove up to ``amount`` of quantity in selection order.

        Returns the list of entries (splitting the last one if needed) whose
        quantities sum to ``min(amount, total)``.  This is the selection loop
        of Algorithm 2, shared by the generation-time and receipt-order
        policies.
        """
        if amount < 0:
            raise ValueError(f"drain amount must be non-negative, got {amount!r}")
        selected: List[BufferEntry] = []
        residue = amount
        while residue > _EPSILON and len(self) > 0:
            head = self._peek()
            if head.quantity > residue + _EPSILON:
                piece = head.split(residue)
                self._total -= residue
                selected.append(piece)
                residue = 0.0
            else:
                entry = self._pop()
                self._total -= entry.quantity
                residue -= entry.quantity
                selected.append(entry)
        if self._total < _EPSILON:
            self._total = 0.0
        return selected

    def origins(self) -> OriginSet:
        """Aggregate the stored entries into an :class:`OriginSet`."""
        origin_set = OriginSet()
        for entry in self.entries():
            origin_set.add(entry.origin, entry.quantity)
        return origin_set

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(total={self._total:g}, entries={len(self)})"


class HeapBuffer(QuantityBuffer):
    """Buffer ordered by birth time, used by the generation-time policies.

    With ``oldest_first=True`` the buffer behaves as a min-heap (least
    recently born selection); with ``oldest_first=False`` as a max-heap
    (most recently born selection).  A monotonically increasing counter
    breaks timestamp ties deterministically.
    """

    __slots__ = ("_heap", "_oldest_first", "_counter")

    def __init__(self, oldest_first: bool = True) -> None:
        super().__init__()
        self._heap: List[Tuple[float, int, BufferEntry]] = []
        self._oldest_first = oldest_first
        self._counter = 0

    @property
    def oldest_first(self) -> bool:
        """True when the buffer selects the least recently born entry first."""
        return self._oldest_first

    def _key(self, entry: BufferEntry) -> float:
        return entry.birth_time if self._oldest_first else -entry.birth_time

    def push(self, entry: BufferEntry) -> None:
        heapq.heappush(self._heap, (self._key(entry), self._counter, entry))
        self._counter += 1
        self._total += entry.quantity

    def _peek(self) -> BufferEntry:
        return self._heap[0][2]

    def _pop(self) -> BufferEntry:
        return heapq.heappop(self._heap)[2]

    def entries(self) -> Iterator[BufferEntry]:
        return (item[2] for item in self._heap)

    def __len__(self) -> int:
        return len(self._heap)


class FifoBuffer(QuantityBuffer):
    """Receipt-order buffer selecting the least recently *added* entry first."""

    __slots__ = ("_queue",)

    def __init__(self) -> None:
        super().__init__()
        self._queue: Deque[BufferEntry] = deque()

    def push(self, entry: BufferEntry) -> None:
        self._queue.append(entry)
        self._total += entry.quantity

    def _peek(self) -> BufferEntry:
        return self._queue[0]

    def _pop(self) -> BufferEntry:
        return self._queue.popleft()

    def entries(self) -> Iterator[BufferEntry]:
        return iter(self._queue)

    def __len__(self) -> int:
        return len(self._queue)


class LifoBuffer(QuantityBuffer):
    """Receipt-order buffer selecting the most recently *added* entry first."""

    __slots__ = ("_stack",)

    def __init__(self) -> None:
        super().__init__()
        self._stack: List[BufferEntry] = []

    def push(self, entry: BufferEntry) -> None:
        self._stack.append(entry)
        self._total += entry.quantity

    def _peek(self) -> BufferEntry:
        return self._stack[-1]

    def _pop(self) -> BufferEntry:
        return self._stack.pop()

    def entries(self) -> Iterator[BufferEntry]:
        return iter(self._stack)

    def __len__(self) -> int:
        return len(self._stack)
