"""Lazy (replay-based) provenance, the paper's future-work direction."""

from repro.lazy.replay import ReplayProvenance

__all__ = ["ReplayProvenance"]
