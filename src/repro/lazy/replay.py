"""Lazy (replay-based) provenance — the paper's future-work direction.

All policies in :mod:`repro.policies` are *proactive*: they maintain
provenance annotations while interactions stream in, so a query is answered
instantly but every interaction pays an annotation cost.  Section 8 of the
paper proposes investigating *lazy* approaches in the spirit of Ariadne's
"replay lazy" operator instrumentation [Glavic et al., DEBS 2013]: store only
the raw interaction log and, when provenance is actually needed, replay the
log through an instrumented policy.

:class:`ReplayProvenance` implements that trade-off:

* processing an interaction only appends it to a log (``O(1)``, no
  annotation state);
* a provenance query replays the logged prefix through a freshly created
  proactive policy and caches the result until new interactions arrive.

This is exactly the "decouple data processing from provenance computation"
idea of the paper's related work, and the ablation benchmark
``benchmarks/test_ablation_lazy_vs_proactive.py`` quantifies when it pays
off (few queries → lazy wins; frequent queries → proactive wins).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from repro.core.interaction import Interaction, Vertex
from repro.core.provenance import OriginSet
from repro.policies.base import SelectionPolicy, StoreArgument
from repro.policies.receipt_order import FifoPolicy

__all__ = ["ReplayProvenance"]


class ReplayProvenance(SelectionPolicy):
    """Store interactions; compute provenance on demand by replaying them.

    Parameters
    ----------
    policy_factory:
        Zero-argument callable building the proactive policy used for
        replays (default: :class:`~repro.policies.receipt_order.FifoPolicy`).
        Any entry-based or proportional policy works.
    """

    name = "lazy-replay"
    tracks_provenance = True
    supports_paths = False

    def __init__(
        self,
        policy_factory: Callable[[], SelectionPolicy] = FifoPolicy,
        *,
        store: StoreArgument = None,
    ) -> None:
        super().__init__(store=store)
        self.policy_factory = policy_factory
        self._log: List[Interaction] = []
        self._vertices: List[Vertex] = []
        self._replayed: Optional[SelectionPolicy] = None
        self._replayed_length = -1
        self._replay_count = 0

    def _build_replay_policy(self) -> SelectionPolicy:
        """Instantiate the proactive policy used for replays.

        The interaction log itself is append-only and stays in memory (that
        is the point of the lazy approach); the *replayed* policy inherits
        this policy's store spec so its transient annotation state follows
        the configured backend.  Factories that do not accept a ``store``
        keyword (lambdas, pre-bound constructors) are called as-is.
        """
        try:
            return self.policy_factory(store=self.store_spec)
        except TypeError:
            return self.policy_factory()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(self, vertices: Sequence[Vertex] = ()) -> None:
        self._log = []
        self._vertices = list(vertices)
        self._replayed = None
        self._replayed_length = -1
        self._replay_count = 0

    def process(self, interaction: Interaction) -> None:
        # Processing is O(1): just remember the interaction.
        self._log.append(interaction)

    # ------------------------------------------------------------------
    # replay machinery
    # ------------------------------------------------------------------
    @property
    def log_length(self) -> int:
        """Number of interactions stored in the log."""
        return len(self._log)

    @property
    def replay_count(self) -> int:
        """How many times the log has been replayed to answer queries."""
        return self._replay_count

    def _replay(self) -> SelectionPolicy:
        """Replay the log through a fresh proactive policy (cached)."""
        if self._replayed is not None and self._replayed_length == len(self._log):
            return self._replayed
        policy = self._build_replay_policy()
        policy.reset(self._vertices)
        for interaction in self._log:
            policy.process(interaction)
        self._replayed = policy
        self._replayed_length = len(self._log)
        self._replay_count += 1
        return policy

    def replay_at(self, position: int) -> SelectionPolicy:
        """Replay only the first ``position`` interactions (time travel).

        Returns a proactive policy whose state reflects the network after the
        ``position``-th interaction — answering "what was the provenance of
        ``B_v`` back then?" without having stored historical annotations.
        """
        if position < 0 or position > len(self._log):
            raise IndexError(
                f"position {position} outside the log of {len(self._log)} interactions"
            )
        policy = self._build_replay_policy()
        policy.reset(self._vertices)
        for interaction in self._log[:position]:
            policy.process(interaction)
        self._replay_count += 1
        return policy

    # ------------------------------------------------------------------
    # queries (delegate to the replayed policy)
    # ------------------------------------------------------------------
    def buffer_total(self, vertex: Vertex) -> float:
        return self._replay().buffer_total(vertex)

    def origins(self, vertex: Vertex) -> OriginSet:
        return self._replay().origins(vertex)

    def tracked_vertices(self):
        return self._replay().tracked_vertices()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        """Entries stored while streaming: one log record per interaction.

        The replayed policy's annotation state is transient and therefore not
        counted — that is the whole point of the lazy approach.
        """
        return len(self._log)
