"""Benchmark target for Figure 8: budget-based provenance."""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import figure8_budget


def test_figure8_budget(benchmark, bench_scale, report):
    """Regenerate Figure 8's runtime/memory curves versus the budget C."""
    budgets = (10, 50, 100, 200, 500, 1000)
    result = run_once(benchmark, figure8_budget, budgets=budgets, scale=bench_scale)
    report(result)

    by_dataset = {}
    for row in result.rows:
        by_dataset.setdefault(row["dataset"], []).append(row)
    for dataset, rows in by_dataset.items():
        rows.sort(key=lambda row: row["budget"])
        # Memory grows with the budget C (the paper observes linear growth).
        assert rows[-1]["memory_mb"] >= rows[0]["memory_mb"], dataset
        # Runtime does not explode with C: the largest budget costs at most a
        # small multiple of the smallest one (paper: "the increase in the
        # runtime cost is not very high").
        assert rows[-1]["runtime_s"] <= rows[0]["runtime_s"] * 10, dataset
