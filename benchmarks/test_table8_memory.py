"""Benchmark target for Table 8: peak memory of every selection policy."""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import policy_comparison, table8_memory


def test_table8_policy_memory(benchmark, bench_scale, report):
    """Regenerate Table 8 at the bench scale."""
    results = run_once(benchmark, policy_comparison, scale=bench_scale)
    table8 = table8_memory(results=results)
    report(table8)

    by_dataset = {row["dataset"]: row for row in table8.rows}
    for dataset, row in by_dataset.items():
        noprov = row["no-provenance"]
        # Provenance tracking always costs more memory than NoProv.
        for policy, memory in row.items():
            if policy in ("dataset", "no-provenance") or memory is None:
                continue
            assert memory >= noprov, (dataset, policy)
        # Receipt-order provenance stores (origin, quantity) pairs and is not
        # more expensive than generation-time provenance, which also stores
        # birth times (paper Table 8).
        if row["lifo"] is not None and row["least-recently-born"] is not None:
            assert row["lifo"] <= row["least-recently-born"] * 1.15

    # Dense proportional vectors are the dominant memory cost on the
    # large-vertex datasets: dense uses (far) more memory than sparse there.
    bitcoin = by_dataset["bitcoin"]
    if bitcoin["proportional-dense"] is not None and bitcoin["proportional-sparse"] is not None:
        assert bitcoin["proportional-dense"] >= bitcoin["proportional-sparse"]
