"""Benchmark target for Table 7: runtime of every selection policy."""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import policy_comparison, table7_runtime, table8_memory
from repro.stores import resolve_store_spec


def test_table7_policy_runtimes(benchmark, bench_scale, report):
    """Regenerate Table 7 (and cache the runs reused by the Table 8 bench)."""
    results = run_once(benchmark, policy_comparison, scale=bench_scale)
    table7 = table7_runtime(results=results)
    report(table7)
    # Persist the memory table from the same runs so the two tables are
    # consistent with each other, exactly like the paper's shared experiment.
    report(table8_memory(results=results))

    # The relative-runtime properties below describe the paper's in-memory
    # measurements; under a non-default store backend (REPRO_DEFAULT_STORE)
    # per-interaction store overhead dominates and the ordering is not
    # meaningful, so only the table generation itself is exercised.
    if resolve_store_spec(None).backend != "dict":
        return

    by_dataset = {row["dataset"]: row for row in table7.rows}
    for dataset, row in by_dataset.items():
        noprov = row["no-provenance"]
        # NoProv is the cheapest policy on every dataset (paper Table 7).
        for policy, runtime in row.items():
            if policy in ("dataset", "no-provenance") or runtime is None:
                continue
            assert noprov <= runtime * 1.2, (dataset, policy)
        # Receipt-order and generation-time policies stay within a small
        # factor of each other.  (The paper finds receipt-order strictly
        # faster; on the synthetic presets the ordering is dominated by how
        # strongly each selection order fragments the buffers, so we only
        # assert that neither family is wildly slower — see EXPERIMENTS.md.)
        if row["lifo"] is not None and row["least-recently-born"] is not None:
            assert row["lifo"] <= row["least-recently-born"] * 5
            assert row["least-recently-born"] <= row["lifo"] * 5
