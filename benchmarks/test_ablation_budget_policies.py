"""Ablation bench: shrink criteria for budget-based provenance.

DESIGN.md calls out the Section 5.3.2 design choice of which entries to keep
when a vertex's provenance budget is exceeded: keep-largest versus a
priority order over origins.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import ablation_budget_policies


def test_ablation_budget_shrink_criteria(benchmark, bench_scale, report):
    result = run_once(
        benchmark, ablation_budget_policies, "prosper", capacity=50, scale=bench_scale
    )
    report(result)

    assert len(result.rows) == 2
    for row in result.rows:
        assert row["runtime_s"] > 0
        assert 0.0 <= row["avg_known_fraction"] <= 1.0 + 1e-9
        assert row["shrinks"] >= 0
    by_criterion = {row["criterion"]: row for row in result.rows}
    assert set(by_criterion) == {"keep-largest", "keep-by-degree-priority"}
