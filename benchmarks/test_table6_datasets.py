"""Benchmark target for Table 6: dataset characteristics."""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import table6_datasets


def test_table6_dataset_characteristics(benchmark, bench_scale, report):
    """Regenerate Table 6 for the synthetic presets at the bench scale."""
    result = run_once(benchmark, table6_datasets, scale=bench_scale)
    report(result)
    assert len(result.rows) == 5
    # Structural signature: Bitcoin has the most vertices, Flights the fewest,
    # and Flights/Taxis have far higher interaction density than Bitcoin/CTU.
    by_name = {row["dataset"]: row for row in result.rows}
    assert by_name["bitcoin"]["nodes"] > by_name["ctu"]["nodes"] > by_name["prosper"]["nodes"]
    assert by_name["flights"]["nodes"] < by_name["taxis"]["nodes"]
    assert by_name["flights"]["density"] > by_name["bitcoin"]["density"]
