"""Ablation bench: dense vs. sparse proportional provenance vectors.

DESIGN.md calls out the representation choice of Section 4.3: dense numpy
vectors win on networks with few vertices (Flights, Taxis) while sparse
lists are the only viable representation for large vertex sets.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import ablation_dense_vs_sparse


def test_ablation_dense_vs_sparse(benchmark, bench_scale, report):
    result = run_once(
        benchmark, ablation_dense_vs_sparse, ("flights", "taxis"), scale=bench_scale
    )
    report(result)

    for row in result.rows:
        assert row["dense_runtime_s"] > 0
        assert row["sparse_runtime_s"] > 0
        assert row["dense_memory_mb"] > 0
        assert row["sparse_memory_mb"] > 0
        # On these small-vertex networks the dense representation is
        # competitive: within an order of magnitude of sparse on both axes.
        assert row["dense_runtime_s"] <= row["sparse_runtime_s"] * 10
