"""Benchmark target for Table 9: shrinking statistics of budget-based provenance."""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import table9_shrinking


def test_table9_shrinking_statistics(benchmark, bench_scale, report):
    """Regenerate Table 9 (average shrinks and % of vertices shrunk vs. C)."""
    budgets = (10, 50, 100, 200, 500, 1000)
    result = run_once(benchmark, table9_shrinking, budgets=budgets, scale=bench_scale)
    report(result)

    by_dataset = {}
    for row in result.rows:
        by_dataset.setdefault(row["dataset"], []).append(row)
    for dataset, rows in by_dataset.items():
        rows.sort(key=lambda row: row["budget"])
        # Larger budgets shrink less often and touch fewer vertices (Table 9's
        # monotone columns).
        assert rows[0]["avg_shrinks"] >= rows[-1]["avg_shrinks"], dataset
        assert rows[0]["pct_vertices_shrunk"] >= rows[-1]["pct_vertices_shrunk"], dataset
        for row in rows:
            assert 0.0 <= row["pct_vertices_shrunk"] <= 100.0
