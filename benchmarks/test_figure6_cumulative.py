"""Benchmark target for Figure 6: cumulative cost of full sparse proportional."""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import figure6_cumulative


def test_figure6_cumulative_cost(benchmark, bench_scale, report):
    """Regenerate the cumulative runtime / provenance-size curves of Figure 6."""
    result = run_once(benchmark, figure6_cumulative, num_checkpoints=5, scale=bench_scale)
    report(result)

    for name, series in result.series.items():
        if not series:
            continue
        seconds = [row["cumulative_s"] for row in series]
        entries = [row["provenance_entries"] for row in series]
        # Cumulative time and stored provenance both grow monotonically with
        # the number of processed interactions (the paper's superlinear
        # growth argument relies on this).
        assert seconds == sorted(seconds), name
        assert entries == sorted(entries), name
        # The provenance lists keep growing: the last checkpoint stores more
        # entries than the first.
        assert entries[-1] >= entries[0], name
