"""Benchmark target for Figure 7: the windowing approach."""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import figure7_windowing
from repro.bench.harness import load_network_cached


def test_figure7_windowing(benchmark, bench_scale, report):
    """Regenerate Figure 7's runtime/memory curves versus the window size W.

    Window sizes are chosen relative to the (scaled) stream length so every
    preset experiences several window resets, as in the paper.
    """
    stream_length = load_network_cached("prosper", scale=bench_scale).num_interactions
    window_sizes = tuple(
        max(50, stream_length // divisor) for divisor in (16, 8, 4, 2)
    )
    result = run_once(
        benchmark, figure7_windowing, window_sizes=window_sizes, scale=bench_scale
    )
    report(result)

    by_dataset = {}
    for row in result.rows:
        by_dataset.setdefault(row["dataset"], []).append(row)
    for dataset, rows in by_dataset.items():
        rows.sort(key=lambda row: row["window"])
        # Larger windows mean fewer resets ...
        assert rows[0]["resets"] >= rows[-1]["resets"], dataset
        # ... and at least as much retained provenance (memory), as in Figure 7.
        assert rows[-1]["memory_mb"] >= rows[0]["memory_mb"] * 0.5, dataset
