"""Throughput benchmark: batched ``process_many`` vs. the seed per-interaction loop.

Runs every policy family with a chunked ``process_many`` fast path — the
no-provenance baseline, the dense proportional policy, and the four
entry-based policies (lrb/mrb/fifo/lifo) — over preset datasets with
``batch_size=1`` (equivalent to the seed engine loop) and with the default
batch size, and writes a ``BENCH_batched_throughput.json`` record with
interactions/second for both paths plus the speedup.  Each case is also
measured through the explicit micro-batch scheduler
(:class:`repro.sources.MicroBatchScheduler` over a ``SequenceSource``, the
path streaming runs take), recording ``micro_batch_ips`` and the
scheduler-vs-eager-batched ratio — the cost of source polling, the bounded
in-flight queue and flush-trigger checks on top of the same batching.  The
CI benchmark-smoke job runs this script; run it locally with::

    PYTHONPATH=src python benchmarks/bench_batched.py [--scale 0.5] [--output path.json]

Pass ``--store sqlite`` to measure the spill backend instead of the
in-memory dicts (the speedup gate is skipped there: the point of the spill
backend is feasibility, not throughput).
"""

from __future__ import annotations

import argparse
import json
import platform
from pathlib import Path

from repro.datasets.catalog import load_preset
from repro.runtime import DEFAULT_BATCH_SIZE, RunConfig, Runner
from repro.stores import available_store_backends

#: (policy, dataset) pairs measured by the benchmark.  The dense policy runs
#: on the small-vertex networks where it is feasible (as in the paper); the
#: entry-based policies run on one large and one small network each.
CASES = (
    ("noprov", "bitcoin"),
    ("noprov", "taxis"),
    ("proportional-dense", "taxis"),
    ("proportional-dense", "flights"),
    ("lrb", "bitcoin"),
    ("mrb", "taxis"),
    ("fifo", "bitcoin"),
    ("fifo", "taxis"),
    ("lifo", "taxis"),
)


def best_of(
    network,
    policy_name: str,
    batch_size: int,
    repeats: int,
    store: str = None,
    scheduled: bool = False,
) -> float:
    """Best wall-clock seconds over ``repeats`` runs of one configuration.

    ``scheduled=True`` routes the run through the explicit micro-batch
    scheduler (the streaming path) instead of the eager batched loop.
    """
    best = float("inf")
    for _ in range(repeats):
        config = RunConfig(
            dataset=network,
            policy=policy_name,
            batch_size=batch_size,
            micro_batch=batch_size if scheduled else None,
            store=store,
        )
        statistics = Runner(config).run().statistics
        best = min(best, statistics.elapsed_seconds)
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0, help="dataset scale factor")
    parser.add_argument("--repeats", type=int, default=3, help="runs per configuration")
    parser.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH_SIZE,
        help="batch size of the batched configuration",
    )
    parser.add_argument(
        "--store", choices=available_store_backends(), default=None,
        help="provenance-store backend to measure (default: dict)",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_batched_throughput.json",
        help="where to write the JSON record",
    )
    args = parser.parse_args()

    records = []
    for policy_name, dataset in CASES:
        network = load_preset(dataset, scale=args.scale)
        per_item = best_of(network, policy_name, 1, args.repeats, args.store)
        batched = best_of(network, policy_name, args.batch_size, args.repeats, args.store)
        scheduled = best_of(
            network, policy_name, args.batch_size, args.repeats, args.store,
            scheduled=True,
        )
        interactions = network.num_interactions
        record = {
            "policy": policy_name,
            "dataset": dataset,
            "interactions": interactions,
            "per_interaction_seconds": per_item,
            "batched_seconds": batched,
            "micro_batch_scheduler_seconds": scheduled,
            "per_interaction_ips": interactions / per_item if per_item else 0.0,
            "batched_ips": interactions / batched if batched else 0.0,
            "micro_batch_scheduler_ips": interactions / scheduled if scheduled else 0.0,
            "speedup": per_item / batched if batched else 0.0,
            "micro_batch_speedup": per_item / scheduled if scheduled else 0.0,
            "scheduler_vs_batched": batched / scheduled if scheduled else 0.0,
        }
        records.append(record)
        print(
            f"{policy_name:20s} on {dataset:8s}: "
            f"{record['per_interaction_ips']:>10,.0f} ips -> "
            f"{record['batched_ips']:>10,.0f} ips batched "
            f"({record['speedup']:.2f}x), "
            f"{record['micro_batch_scheduler_ips']:>10,.0f} ips scheduled "
            f"({record['micro_batch_speedup']:.2f}x)"
        )

    payload = {
        "benchmark": "batched_process_many_throughput",
        "scale": args.scale,
        "batch_size": args.batch_size,
        "repeats": args.repeats,
        "store": args.store or "dict",
        "python": platform.python_version(),
        "results": records,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    if args.store not in (None, "dict"):
        # Non-dict backends trade throughput for bounded memory; the batched
        # path is still exercised above but not gated on being faster.
        return 0
    slower = [r for r in records if r["speedup"] <= 1.0]
    if slower:
        print("WARNING: batched path not faster for:", [r["policy"] for r in slower])
        return 1
    # The scheduler adds source polling and flush checks on top of the same
    # batching; it should track the eager batched path closely.  Warn-only:
    # single-run timing noise at small scales can dip one case below 1.0x,
    # and the hard CI gate stays on the batched-vs-per-interaction speedup.
    scheduler_slower = [r for r in records if r["micro_batch_speedup"] <= 1.0]
    if scheduler_slower:
        print(
            "WARNING: micro-batch scheduler not faster than per-interaction for:",
            [r["policy"] for r in scheduler_slower],
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
