"""Throughput benchmark: per-interaction vs batched vs columnar vs sharded.

Runs every policy family with a fast path — the no-provenance baseline, the
dense proportional policy, and the four entry-based policies (lrb/mrb/fifo/
lifo) — over preset datasets in nine configurations:

* ``batch_size=1`` (equivalent to the seed engine loop),
* the default batched ``process_many`` path,
* the explicit micro-batch scheduler (the path single-consumer streaming
  runs take),
* the columnar block path (``columnar=True, kernel="batch"``: interned-id
  arrays driven through ``process_block`` in fixed-size chunks),
* the fused kernel tier (``columnar=True, kernel="fused"``: whole clip
  spans through ``process_run`` — compiled backend when one resolves,
  pure-numpy fused otherwise; backend compilation happens outside the
  timed region),
* hash-sharded over a pickled process pool (``shard_executor=processes``),
* hash-sharded over the zero-copy shared-memory shard fabric
  (``shared_memory=True``: shard columns live in shared segments, a
  persistent worker pool receives handle-sized dispatch messages),
* mincut-sharded over the same shm fabric (``shard_by="mincut"``: the
  seeded multilevel min-cut partitioner of ``runtime.mincut`` — balanced
  shards, minimal cross-shard interactions; plan build time is reported
  separately and never inside the timed region),
* partitioned streaming over rolling segment rings
  (``streaming_shards=STREAM_SHARDS``: interactions are routed to their
  shard as a stream of micro-batches appended into per-shard segment
  rings, processed incrementally by the persistent worker pool — the
  parallel analogue of the single-consumer micro-batch scheduler).

and writes a ``BENCH_batched_throughput.json`` record with interactions per
second for each plus the speedups — including the bytes each sharded
transport moves across the fork boundary (measured outside the timed
region: the pickled payloads are re-pickled with the executor's protocol,
the fabric reports its exact dispatch bytes) and the partition quality of
the hash vs mincut plans (cut edges, cut weight, imbalance, straggler
ratio).  Configurations are measured
in interleaved rounds (round-robin over configurations, best of
``--repeats``) with the garbage collector paused inside the timed region,
so slow drift of the machine hits all columns equally instead of biasing
the ratios.  The CI benchmark-smoke job runs this script; run it locally
with::

    PYTHONPATH=src python benchmarks/bench_batched.py [--scale 0.5] [--output path.json]

Pass ``--store sqlite`` to measure the spill backend instead of the
in-memory dicts (the speedup gates are skipped there: the point of the
spill backend is feasibility, not throughput; columnar runs fall back to
the materialising adapter on it).
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
from pathlib import Path

from repro.datasets.catalog import load_preset
from repro.runtime import DEFAULT_BATCH_SIZE, RunConfig, Runner, fork_payload_bytes

from repro.stores import available_store_backends

#: (policy, dataset) pairs measured by the benchmark.  The dense policy runs
#: on the small-vertex networks where it is feasible (as in the paper); the
#: entry-based policies run on one large and one small network each.
CASES = (
    ("noprov", "bitcoin"),
    ("noprov", "taxis"),
    ("noprov", "flights"),
    ("proportional-dense", "taxis"),
    ("proportional-dense", "flights"),
    ("lrb", "bitcoin"),
    ("mrb", "taxis"),
    ("fifo", "bitcoin"),
    ("fifo", "taxis"),
    ("lifo", "taxis"),
)

#: Configuration name -> RunConfig overrides.  ``batch_size`` defaults are
#: filled in by :func:`measure_case`.
CONFIGURATIONS = (
    "per_interaction",
    "batched",
    "micro_batch_scheduler",
    "columnar",
    "fused",
    "sharded_processes",
    "sharded_shm",
    "sharded_shm_mincut",
    "streaming_shm",
)

#: Shards used by the sharded configurations (hash and mincut modes, so
#: every network splits regardless of its component structure).
BENCH_SHARDS = 2

#: Balance cap of the mincut configuration (the library default).
MINCUT_IMBALANCE_CAP = 1.1

#: Shards of the partitioned-streaming configuration.  Wider than the eager
#: sharded columns on purpose: segment rings bound each shard's resident
#: batch memory, so streaming parallelism scales past the point where eager
#: sharding would duplicate the whole network per fork.
STREAM_SHARDS = 4

#: Micro-batch capacity of the streaming segment rings.  Deliberately much
#: larger than the scheduler column's batch size: the scheduler amortises a
#: Python dispatch loop, while a streaming flush pays one queue round-trip
#: per micro-batch — ring slots are sized so a whole shard's typical backlog
#: ships in a handful of flushes.
STREAM_MICRO_BATCH = 8192


def bench_config(network, policy_name: str, store, batch_size: int, configuration: str) -> RunConfig:
    """The RunConfig one benchmark configuration executes."""
    if configuration in ("sharded_processes", "sharded_shm", "sharded_shm_mincut"):
        return RunConfig(
            dataset=network,
            policy=policy_name,
            batch_size=batch_size,
            store=store,
            shards=BENCH_SHARDS,
            shard_by="mincut" if configuration == "sharded_shm_mincut" else "hash",
            shard_imbalance=MINCUT_IMBALANCE_CAP,
            shard_executor="processes",
            shared_memory=configuration != "sharded_processes",
        )
    if configuration == "streaming_shm":
        return RunConfig(
            dataset=network,
            policy=policy_name,
            store=store,
            streaming_shards=STREAM_SHARDS,
            shard_by="hash",
            micro_batch=STREAM_MICRO_BATCH,
        )
    return RunConfig(
        dataset=network,
        policy=policy_name,
        batch_size=1 if configuration == "per_interaction" else batch_size,
        micro_batch=batch_size if configuration == "micro_batch_scheduler" else None,
        columnar=configuration in ("columnar", "fused"),
        # "columnar" keeps the historical per-chunk loop so its column's
        # meaning is stable across bench records; "fused" is the new tier.
        kernel="fused" if configuration == "fused" else "batch",
        store=store,
    )


def timed_run(network, policy_name: str, store, batch_size: int, configuration: str):
    """One run of one configuration; returns ``(seconds, result)``.

    Sharded results carry their partition stats and straggler ratio; the
    partition plan is built before the timed region starts (the reported
    ``elapsed_seconds`` covers shard execution only).
    """
    config = bench_config(network, policy_name, store, batch_size, configuration)
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        result = Runner(config).run()
        return result.statistics.elapsed_seconds, result
    finally:
        if gc_was_enabled:
            gc.enable()


def measure_case(network, policy_name: str, store, batch_size: int, repeats: int):
    """Best seconds (and the matching results) per configuration.

    Measured in interleaved rounds.  Call :func:`measure_fork_payloads`
    first: its instrumented fabric run doubles as the warm-up that spawns
    the persistent shard pool, so the one-off fork cost never lands on the
    first ``sharded_shm`` round (that amortisation is the point of the
    persistent pool).
    """
    best = {name: float("inf") for name in CONFIGURATIONS}
    best_results = {name: None for name in CONFIGURATIONS}
    # Warm the network's columnar cache outside every timed region so the
    # one-off conversion does not land on an arbitrary configuration.
    network.to_block()
    for _ in range(repeats):
        for name in CONFIGURATIONS:
            seconds, result = timed_run(network, policy_name, store, batch_size, name)
            if seconds < best[name]:
                best[name] = seconds
                best_results[name] = result
    return best, best_results


def partition_quality(result):
    """The partition-quality columns of one sharded run's best round."""
    stats = result.partition_stats or {}
    return {
        "cut_edges": stats.get("cut_edges"),
        "cut_weight": stats.get("cut_weight"),
        "imbalance": stats.get("imbalance"),
        "build_seconds": stats.get("build_seconds"),
        "straggler_ratio": result.straggler_ratio,
    }


def measure_fork_payloads(network, policy_name: str, store, batch_size: int):
    """Bytes each sharded transport ships across the fork boundary.

    Computed outside the timed region: ``Runner.shard_plan`` builds exactly
    the plan the pickled executor would dispatch (same block-attachment
    rules) and :func:`fork_payload_bytes` measures its payload tuples with
    the executor's pickle protocol; the fabric's exact dispatch bytes come
    from one instrumented run's ``shm_stats``.
    """
    config = bench_config(network, policy_name, store, batch_size, "sharded_processes")
    plan, policies = Runner(config).shard_plan(network)
    pickled = fork_payload_bytes(
        plan, policies, batch_size=config.effective_batch_size
    )
    shm_result = Runner(
        bench_config(network, policy_name, store, batch_size, "sharded_shm")
    ).run()
    dispatched = shm_result.shm_stats["dispatch_bytes"]
    return pickled, dispatched


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0, help="dataset scale factor")
    parser.add_argument("--repeats", type=int, default=3, help="runs per configuration")
    parser.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH_SIZE,
        help="batch size of the batched configuration",
    )
    parser.add_argument(
        "--store", choices=available_store_backends(), default=None,
        help="provenance-store backend to measure (default: dict)",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_batched_throughput.json",
        help="where to write the JSON record",
    )
    args = parser.parse_args()

    records = []
    for policy_name, dataset in CASES:
        network = load_preset(dataset, scale=args.scale)
        # Payload accounting first: its fabric run doubles as the shard-pool
        # warm-up for the timed rounds below.
        pickled_payload, shm_dispatch = measure_fork_payloads(
            network, policy_name, args.store, args.batch_size
        )
        best, best_results = measure_case(
            network, policy_name, args.store, args.batch_size, args.repeats
        )
        per_item = best["per_interaction"]
        batched = best["batched"]
        scheduled = best["micro_batch_scheduler"]
        columnar = best["columnar"]
        fused = best["fused"]
        fused_stats = best_results["fused"].kernel_stats or {}
        sharded_processes = best["sharded_processes"]
        sharded_shm = best["sharded_shm"]
        sharded_shm_mincut = best["sharded_shm_mincut"]
        streaming_shm = best["streaming_shm"]
        streaming_fabric = best_results["streaming_shm"].stream_stats["fabric"]
        hash_quality = partition_quality(best_results["sharded_shm"])
        mincut_quality = partition_quality(best_results["sharded_shm_mincut"])
        interactions = network.num_interactions
        record = {
            "policy": policy_name,
            "dataset": dataset,
            "interactions": interactions,
            "per_interaction_seconds": per_item,
            "batched_seconds": batched,
            "micro_batch_scheduler_seconds": scheduled,
            "columnar_seconds": columnar,
            "fused_seconds": fused,
            "sharded_processes_seconds": sharded_processes,
            "sharded_shm_seconds": sharded_shm,
            "sharded_shm_mincut_seconds": sharded_shm_mincut,
            "streaming_shm_seconds": streaming_shm,
            "per_interaction_ips": interactions / per_item if per_item else 0.0,
            "batched_ips": interactions / batched if batched else 0.0,
            "micro_batch_scheduler_ips": interactions / scheduled if scheduled else 0.0,
            "columnar_ips": interactions / columnar if columnar else 0.0,
            "fused_ips": interactions / fused if fused else 0.0,
            "sharded_processes_ips": (
                interactions / sharded_processes if sharded_processes else 0.0
            ),
            "sharded_shm_ips": interactions / sharded_shm if sharded_shm else 0.0,
            "sharded_shm_mincut_ips": (
                interactions / sharded_shm_mincut if sharded_shm_mincut else 0.0
            ),
            "streaming_shm_ips": interactions / streaming_shm if streaming_shm else 0.0,
            "speedup": per_item / batched if batched else 0.0,
            "micro_batch_speedup": per_item / scheduled if scheduled else 0.0,
            "columnar_speedup": per_item / columnar if columnar else 0.0,
            "fused_speedup": per_item / fused if fused else 0.0,
            "scheduler_vs_batched": batched / scheduled if scheduled else 0.0,
            "columnar_vs_batched": batched / columnar if columnar else 0.0,
            "fused_vs_columnar": columnar / fused if fused else 0.0,
            "fused_backend": fused_stats.get("backend"),
            "fused_chunks": fused_stats.get("chunks"),
            "fused_compile_seconds": fused_stats.get("compile_seconds"),
            "shm_vs_processes": (
                sharded_processes / sharded_shm if sharded_shm else 0.0
            ),
            "mincut_vs_hash_shm": (
                sharded_shm / sharded_shm_mincut if sharded_shm_mincut else 0.0
            ),
            "streaming_shm_shards": STREAM_SHARDS,
            "streaming_shm_vs_scheduler": (
                scheduled / streaming_shm if streaming_shm else 0.0
            ),
            "streaming_shm_vs_sharded_shm": (
                sharded_shm / streaming_shm if streaming_shm else 0.0
            ),
            "streaming_shm_batches": streaming_fabric["batches"],
            "streaming_shm_segment_reuses": streaming_fabric["segment_reuses"],
            "streaming_shm_backpressure_stalls": streaming_fabric[
                "backpressure_stalls"
            ],
            "hash_cut_edges": hash_quality["cut_edges"],
            "hash_cut_weight": hash_quality["cut_weight"],
            "hash_imbalance": hash_quality["imbalance"],
            "hash_straggler_ratio": hash_quality["straggler_ratio"],
            "mincut_cut_edges": mincut_quality["cut_edges"],
            "mincut_cut_weight": mincut_quality["cut_weight"],
            "mincut_imbalance": mincut_quality["imbalance"],
            "mincut_straggler_ratio": mincut_quality["straggler_ratio"],
            "mincut_partition_build_seconds": mincut_quality["build_seconds"],
            "fork_payload_bytes_pickled": pickled_payload,
            "fork_payload_bytes_shm": shm_dispatch,
            "fork_payload_reduction": (
                pickled_payload / shm_dispatch if shm_dispatch else 0.0
            ),
        }
        records.append(record)
        print(
            f"{policy_name:20s} on {dataset:8s}: "
            f"{record['per_interaction_ips']:>10,.0f} ips -> "
            f"{record['batched_ips']:>10,.0f} batched ({record['speedup']:.2f}x), "
            f"{record['micro_batch_scheduler_ips']:>10,.0f} scheduled "
            f"({record['micro_batch_speedup']:.2f}x), "
            f"{record['columnar_ips']:>10,.0f} columnar "
            f"({record['columnar_speedup']:.2f}x), "
            f"{record['fused_ips']:>10,.0f} fused[{record['fused_backend']}] "
            f"({record['fused_vs_columnar']:.2f}x vs columnar)"
        )
        print(
            f"{'':20s}    sharded x{BENCH_SHARDS}: "
            f"{record['sharded_processes_ips']:>10,.0f} pickled-pool ips -> "
            f"{record['sharded_shm_ips']:>10,.0f} shm-fabric ips "
            f"({record['shm_vs_processes']:.2f}x), fork payload "
            f"{pickled_payload:,} B -> {shm_dispatch:,} B "
            f"({record['fork_payload_reduction']:,.0f}x smaller)"
        )
        hash_straggler = hash_quality["straggler_ratio"] or 0.0
        mincut_straggler = mincut_quality["straggler_ratio"] or 0.0
        print(
            f"{'':20s}    mincut x{BENCH_SHARDS}: "
            f"{record['sharded_shm_mincut_ips']:>10,.0f} ips "
            f"({record['mincut_vs_hash_shm']:.2f}x vs hash shm), cut weight "
            f"{record['hash_cut_weight']:,} -> {record['mincut_cut_weight']:,}, "
            f"imbalance {record['hash_imbalance']:.3f} -> "
            f"{record['mincut_imbalance']:.3f}, straggler "
            f"{hash_straggler:.2f} -> {mincut_straggler:.2f}, plan built in "
            f"{record['mincut_partition_build_seconds']:.3f}s (untimed)"
        )
        print(
            f"{'':20s}    streaming x{STREAM_SHARDS}: "
            f"{record['streaming_shm_ips']:>10,.0f} ips "
            f"({record['streaming_shm_vs_scheduler']:.2f}x vs single-consumer "
            f"scheduler, {record['streaming_shm_vs_sharded_shm']:.2f}x vs eager "
            f"shm), {record['streaming_shm_batches']} micro-batches, "
            f"{record['streaming_shm_segment_reuses']} segment reuses, "
            f"{record['streaming_shm_backpressure_stalls']} stalls"
        )

    payload = {
        "benchmark": "batched_process_many_throughput",
        "scale": args.scale,
        "batch_size": args.batch_size,
        "repeats": args.repeats,
        "store": args.store or "dict",
        "python": platform.python_version(),
        "results": records,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    if args.store not in (None, "dict"):
        # Non-dict backends trade throughput for bounded memory; the batched
        # and columnar paths are still exercised above but not gated on
        # being faster.
        return 0
    failures = []
    slower = [r for r in records if r["speedup"] <= 1.0]
    if slower:
        print("FAIL: batched path not faster for:", [r["policy"] for r in slower])
        failures.append("batched")
    # CI gate: the columnar kernel must beat eager batching on noprov — the
    # policy whose kernel is pure representation win, with no numpy-call
    # floor to hide behind.
    columnar_slower = [
        r for r in records
        if r["policy"] == "noprov" and r["columnar_vs_batched"] <= 1.0
    ]
    if columnar_slower:
        print(
            "FAIL: columnar path not faster than batched on noprov for:",
            [r["dataset"] for r in columnar_slower],
        )
        failures.append("columnar")
    # CI gate: the fused tier must beat the per-chunk columnar loop on
    # noprov — whatever backend resolved (compiled or pure), fusing the
    # drive loop must never cost throughput.
    fused_slower = [
        r for r in records
        if r["policy"] == "noprov" and r["fused_vs_columnar"] <= 1.0
    ]
    if fused_slower:
        print(
            "FAIL: fused kernel not faster than columnar on noprov for:",
            [r["dataset"] for r in fused_slower],
        )
        failures.append("fused")
    # CI gate: the shard fabric must move at least two orders of magnitude
    # fewer bytes across the fork boundary than the pickled process pool.
    # At reduced scales the pickled payload shrinks with the network while
    # the handle dispatch stays constant, so the bar only applies at the
    # full bench scale.
    if args.scale >= 1.0:
        payload_heavy = [
            r for r in records if r["fork_payload_reduction"] < 100.0
        ]
        if payload_heavy:
            print(
                "FAIL: shm fork payload not >=100x smaller than pickled for:",
                [(r["policy"], r["dataset"]) for r in payload_heavy],
            )
            failures.append("fork_payload")
    # CI gate: the mincut partitioner must never cut more interaction weight
    # than hash sharding, and must respect its balance cap.  Both are
    # deterministic plan properties (seeded partitioner, fixed datasets), so
    # they gate hard at every scale.
    worse_cut = [
        r for r in records if r["mincut_cut_weight"] > r["hash_cut_weight"]
    ]
    if worse_cut:
        print(
            "FAIL: mincut cut weight exceeds hash for:",
            [(r["policy"], r["dataset"]) for r in worse_cut],
        )
        failures.append("mincut_cut_weight")
    unbalanced = [
        r for r in records
        if r["mincut_imbalance"] > MINCUT_IMBALANCE_CAP + 1e-9
    ]
    if unbalanced:
        print(
            f"FAIL: mincut imbalance exceeds the {MINCUT_IMBALANCE_CAP}x cap for:",
            [(r["policy"], r["dataset"]) for r in unbalanced],
        )
        failures.append("mincut_imbalance")
    # The scheduler adds source polling and flush checks on top of the same
    # batching; it should track the eager batched path closely.  Warn-only:
    # single-run timing noise at small scales can dip one case below 1.0x,
    # and the hard CI gates stay on the speedup columns above.
    scheduler_slower = [r for r in records if r["micro_batch_speedup"] <= 1.0]
    if scheduler_slower:
        print(
            "WARNING: micro-batch scheduler not faster than per-interaction for:",
            [r["policy"] for r in scheduler_slower],
        )
    # End-to-end sharded throughput: the fabric should at least match the
    # pickled pool (it does the same work minus the payload pickling).
    # Warn-only — process-pool wall clocks are the noisiest numbers here.
    shm_slower = [r for r in records if r["shm_vs_processes"] < 1.0]
    if shm_slower:
        print(
            "WARNING: shm fabric slower than pickled process pool for:",
            [(r["policy"], r["dataset"]) for r in shm_slower],
        )
    # Partitioned streaming routes blocks once and appends columns straight
    # into segment rings, while the single-consumer scheduler re-packs every
    # polled batch object by object — streaming should win on noprov, the
    # policy where packing dominates.  Warn-only: process wall clocks again.
    streaming_slower = [
        r for r in records
        if r["policy"] == "noprov" and r["streaming_shm_vs_scheduler"] < 1.0
    ]
    if streaming_slower:
        print(
            "WARNING: partitioned streaming slower than the single-consumer "
            "scheduler on noprov for:",
            [r["dataset"] for r in streaming_slower],
        )
    # Mincut shards are better balanced and share fewer cross-shard
    # interactions, so end-to-end they should at least match hash shards on
    # the same fabric.  Warn-only for the same wall-clock-noise reason.
    mincut_slower = [r for r in records if r["mincut_vs_hash_shm"] < 1.0]
    if mincut_slower:
        print(
            "WARNING: mincut shm sharding slower than hash shm sharding for:",
            [(r["policy"], r["dataset"]) for r in mincut_slower],
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
