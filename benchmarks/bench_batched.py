"""Throughput benchmark: per-interaction vs batched vs columnar execution.

Runs every policy family with a fast path — the no-provenance baseline, the
dense proportional policy, and the four entry-based policies (lrb/mrb/fifo/
lifo) — over preset datasets in four configurations:

* ``batch_size=1`` (equivalent to the seed engine loop),
* the default batched ``process_many`` path,
* the explicit micro-batch scheduler (the path streaming runs take),
* the columnar block path (``columnar=True``: interned-id arrays driven
  through ``process_block``).

and writes a ``BENCH_batched_throughput.json`` record with interactions per
second for each plus the speedups.  Configurations are measured in
interleaved rounds (round-robin over configurations, best of ``--repeats``)
with the garbage collector paused inside the timed region, so slow drift of
the machine hits all columns equally instead of biasing the ratios.  The CI
benchmark-smoke job runs this script; run it locally with::

    PYTHONPATH=src python benchmarks/bench_batched.py [--scale 0.5] [--output path.json]

Pass ``--store sqlite`` to measure the spill backend instead of the
in-memory dicts (the speedup gates are skipped there: the point of the
spill backend is feasibility, not throughput; columnar runs fall back to
the materialising adapter on it).
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
from pathlib import Path

from repro.datasets.catalog import load_preset
from repro.runtime import DEFAULT_BATCH_SIZE, RunConfig, Runner

from repro.stores import available_store_backends

#: (policy, dataset) pairs measured by the benchmark.  The dense policy runs
#: on the small-vertex networks where it is feasible (as in the paper); the
#: entry-based policies run on one large and one small network each.
CASES = (
    ("noprov", "bitcoin"),
    ("noprov", "taxis"),
    ("proportional-dense", "taxis"),
    ("proportional-dense", "flights"),
    ("lrb", "bitcoin"),
    ("mrb", "taxis"),
    ("fifo", "bitcoin"),
    ("fifo", "taxis"),
    ("lifo", "taxis"),
)

#: Configuration name -> RunConfig overrides.  ``batch_size`` defaults are
#: filled in by :func:`measure_case`.
CONFIGURATIONS = ("per_interaction", "batched", "micro_batch_scheduler", "columnar")


def timed_run(network, policy_name: str, store, batch_size: int, configuration: str) -> float:
    """One run of one configuration; returns its wall-clock seconds."""
    config = RunConfig(
        dataset=network,
        policy=policy_name,
        batch_size=1 if configuration == "per_interaction" else batch_size,
        micro_batch=batch_size if configuration == "micro_batch_scheduler" else None,
        columnar=True if configuration == "columnar" else False,
        store=store,
    )
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        return Runner(config).run().statistics.elapsed_seconds
    finally:
        if gc_was_enabled:
            gc.enable()


def measure_case(network, policy_name: str, store, batch_size: int, repeats: int):
    """Best seconds per configuration, measured in interleaved rounds."""
    best = {name: float("inf") for name in CONFIGURATIONS}
    # Warm the network's columnar cache outside every timed region so the
    # one-off conversion does not land on an arbitrary configuration.
    network.to_block()
    for _ in range(repeats):
        for name in CONFIGURATIONS:
            seconds = timed_run(network, policy_name, store, batch_size, name)
            if seconds < best[name]:
                best[name] = seconds
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0, help="dataset scale factor")
    parser.add_argument("--repeats", type=int, default=3, help="runs per configuration")
    parser.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH_SIZE,
        help="batch size of the batched configuration",
    )
    parser.add_argument(
        "--store", choices=available_store_backends(), default=None,
        help="provenance-store backend to measure (default: dict)",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_batched_throughput.json",
        help="where to write the JSON record",
    )
    args = parser.parse_args()

    records = []
    for policy_name, dataset in CASES:
        network = load_preset(dataset, scale=args.scale)
        best = measure_case(network, policy_name, args.store, args.batch_size, args.repeats)
        per_item = best["per_interaction"]
        batched = best["batched"]
        scheduled = best["micro_batch_scheduler"]
        columnar = best["columnar"]
        interactions = network.num_interactions
        record = {
            "policy": policy_name,
            "dataset": dataset,
            "interactions": interactions,
            "per_interaction_seconds": per_item,
            "batched_seconds": batched,
            "micro_batch_scheduler_seconds": scheduled,
            "columnar_seconds": columnar,
            "per_interaction_ips": interactions / per_item if per_item else 0.0,
            "batched_ips": interactions / batched if batched else 0.0,
            "micro_batch_scheduler_ips": interactions / scheduled if scheduled else 0.0,
            "columnar_ips": interactions / columnar if columnar else 0.0,
            "speedup": per_item / batched if batched else 0.0,
            "micro_batch_speedup": per_item / scheduled if scheduled else 0.0,
            "columnar_speedup": per_item / columnar if columnar else 0.0,
            "scheduler_vs_batched": batched / scheduled if scheduled else 0.0,
            "columnar_vs_batched": batched / columnar if columnar else 0.0,
        }
        records.append(record)
        print(
            f"{policy_name:20s} on {dataset:8s}: "
            f"{record['per_interaction_ips']:>10,.0f} ips -> "
            f"{record['batched_ips']:>10,.0f} batched ({record['speedup']:.2f}x), "
            f"{record['micro_batch_scheduler_ips']:>10,.0f} scheduled "
            f"({record['micro_batch_speedup']:.2f}x), "
            f"{record['columnar_ips']:>10,.0f} columnar "
            f"({record['columnar_speedup']:.2f}x)"
        )

    payload = {
        "benchmark": "batched_process_many_throughput",
        "scale": args.scale,
        "batch_size": args.batch_size,
        "repeats": args.repeats,
        "store": args.store or "dict",
        "python": platform.python_version(),
        "results": records,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    if args.store not in (None, "dict"):
        # Non-dict backends trade throughput for bounded memory; the batched
        # and columnar paths are still exercised above but not gated on
        # being faster.
        return 0
    failures = []
    slower = [r for r in records if r["speedup"] <= 1.0]
    if slower:
        print("FAIL: batched path not faster for:", [r["policy"] for r in slower])
        failures.append("batched")
    # CI gate: the columnar kernel must beat eager batching on noprov — the
    # policy whose kernel is pure representation win, with no numpy-call
    # floor to hide behind.
    columnar_slower = [
        r for r in records
        if r["policy"] == "noprov" and r["columnar_vs_batched"] <= 1.0
    ]
    if columnar_slower:
        print(
            "FAIL: columnar path not faster than batched on noprov for:",
            [r["dataset"] for r in columnar_slower],
        )
        failures.append("columnar")
    # The scheduler adds source polling and flush checks on top of the same
    # batching; it should track the eager batched path closely.  Warn-only:
    # single-run timing noise at small scales can dip one case below 1.0x,
    # and the hard CI gates stay on the speedup columns above.
    scheduler_slower = [r for r in records if r["micro_batch_speedup"] <= 1.0]
    if scheduler_slower:
        print(
            "WARNING: micro-batch scheduler not faster than per-interaction for:",
            [r["policy"] for r in scheduler_slower],
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
