"""Fused-kernel benchmark: whole-run kernels vs the per-chunk columnar loop.

Measures, per policy family with a columnar kernel, three execution tiers
over preset datasets:

* ``batched`` — the eager ``process_many`` path (``columnar=False``),
* ``columnar`` — the per-chunk columnar loop (``columnar=True,
  kernel="batch"``: fixed-size ``process_block`` chunks),
* ``fused`` — the whole-run kernel tier (``columnar=True,
  kernel="fused"``: the entire clip span runs inside one
  ``process_run`` call; compiled backend when one resolves, pure-numpy
  fused otherwise).

and writes a ``BENCH_kernel_fusion.json`` record with seconds,
interactions per second and the fused-vs-columnar / fused-vs-batched
ratios, plus the backend that actually served each fused run and its
compile time (always measured outside the timed region — the engine calls
``prepare_fused`` before its run timer starts, and this harness resolves
every kernel once before any timed round).  Tiers are measured in
interleaved rounds (round-robin over tiers, best of ``--repeats``) with
the garbage collector paused inside the timed region.  The CI
benchmark-smoke job runs this script; run it locally with::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--scale 0.5] [--output path.json]
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
from pathlib import Path

from repro.core import kernels
from repro.datasets.catalog import load_preset
from repro.runtime import DEFAULT_BATCH_SIZE, RunConfig, Runner

#: (policy, dataset) pairs measured.  The compiled-kernel policies run on
#: every preset where they are feasible; the entry-based families ride on
#: the pure fused tier (their fusion is the whole-span Python loop).
CASES = (
    ("noprov", "bitcoin"),
    ("noprov", "taxis"),
    ("noprov", "flights"),
    ("proportional-dense", "taxis"),
    ("proportional-dense", "flights"),
    ("fifo", "bitcoin"),
    ("lrb", "taxis"),
)

TIERS = ("batched", "columnar", "fused")


def tier_config(network, policy_name: str, batch_size: int, tier: str) -> RunConfig:
    if tier == "batched":
        return RunConfig(
            dataset=network, policy=policy_name, batch_size=batch_size,
            columnar=False,
        )
    return RunConfig(
        dataset=network, policy=policy_name, batch_size=batch_size,
        columnar=True, kernel="fused" if tier == "fused" else "batch",
    )


def timed_run(network, policy_name: str, batch_size: int, tier: str):
    """One run of one tier with the collector paused; ``(seconds, result)``."""
    config = tier_config(network, policy_name, batch_size, tier)
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        result = Runner(config).run()
        return result.statistics.elapsed_seconds, result
    finally:
        if gc_was_enabled:
            gc.enable()


def measure_case(network, policy_name: str, batch_size: int, repeats: int):
    """Best seconds (and matching results) per tier, interleaved rounds."""
    best = {tier: float("inf") for tier in TIERS}
    best_results = {tier: None for tier in TIERS}
    network.to_block()  # columnar conversion happens outside every round
    for _ in range(repeats):
        for tier in TIERS:
            seconds, result = timed_run(network, policy_name, batch_size, tier)
            if seconds < best[tier]:
                best[tier] = seconds
                best_results[tier] = result
    return best, best_results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0, help="dataset scale factor")
    parser.add_argument("--repeats", type=int, default=5, help="runs per tier")
    parser.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH_SIZE,
        help="batch size of the batched/columnar tiers",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_kernel_fusion.json",
        help="where to write the JSON record",
    )
    args = parser.parse_args()

    # Resolve (and possibly compile) every kernel once, before any timed
    # round; the engine additionally keeps prepare_fused outside its timer.
    for name in kernels.KERNEL_NAMES:
        kernels.get_kernel(name)
    compile_warmup = kernels.compile_seconds()

    records = []
    for policy_name, dataset in CASES:
        network = load_preset(dataset, scale=args.scale)
        best, best_results = measure_case(
            network, policy_name, args.batch_size, args.repeats
        )
        batched, columnar, fused = best["batched"], best["columnar"], best["fused"]
        fused_stats = best_results["fused"].kernel_stats or {}
        interactions = network.num_interactions
        record = {
            "policy": policy_name,
            "dataset": dataset,
            "interactions": interactions,
            "batched_seconds": batched,
            "columnar_seconds": columnar,
            "fused_seconds": fused,
            "batched_ips": interactions / batched if batched else 0.0,
            "columnar_ips": interactions / columnar if columnar else 0.0,
            "fused_ips": interactions / fused if fused else 0.0,
            "fused_vs_columnar": columnar / fused if fused else 0.0,
            "fused_vs_batched": batched / fused if fused else 0.0,
            "fused_backend": fused_stats.get("backend"),
            "fused_chunks": fused_stats.get("chunks"),
            "fused_compile_seconds": fused_stats.get("compile_seconds"),
        }
        records.append(record)
        print(
            f"{policy_name:20s} on {dataset:8s}: "
            f"{record['batched_ips']:>10,.0f} batched ips -> "
            f"{record['columnar_ips']:>10,.0f} columnar -> "
            f"{record['fused_ips']:>10,.0f} fused[{record['fused_backend']}] "
            f"({record['fused_vs_columnar']:.2f}x vs columnar, "
            f"{record['fused_vs_batched']:.2f}x vs batched)"
        )

    payload = {
        "benchmark": "fused_kernel_throughput",
        "scale": args.scale,
        "batch_size": args.batch_size,
        "repeats": args.repeats,
        "python": platform.python_version(),
        "jit_enabled": kernels.jit_enabled(),
        "backends": {name: kernels.backend_of(name) for name in kernels.KERNEL_NAMES},
        "backend_failures": kernels.backend_failures(),
        "compile_seconds_untimed": compile_warmup,
        "results": records,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    # CI gate: fusing the drive loop must never cost throughput on noprov,
    # whatever backend resolved.
    fused_slower = [
        r for r in records
        if r["policy"] == "noprov" and r["fused_vs_columnar"] <= 1.0
    ]
    if fused_slower:
        print(
            "FAIL: fused tier not faster than columnar on noprov for:",
            [r["dataset"] for r in fused_slower],
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
