"""Fused-kernel benchmark: whole-run kernels vs the per-chunk columnar loop.

Measures, per policy family with a columnar kernel, three execution tiers
over preset datasets:

* ``batched`` — the eager ``process_many`` path (``columnar=False``),
* ``columnar`` — the per-chunk columnar loop (``columnar=True,
  kernel="batch"``: fixed-size ``process_block`` chunks),
* ``fused`` — the whole-run kernel tier (``columnar=True,
  kernel="fused"``: the entire clip span runs inside one
  ``process_run`` call; compiled backend when one resolves, pure-numpy
  fused otherwise).

and writes a ``BENCH_kernel_fusion.json`` record with seconds,
interactions per second and the fused-vs-columnar / fused-vs-batched
ratios, plus the backend that actually served each fused run and its
compile time (always measured outside the timed region — the engine calls
``prepare_fused`` before its run timer starts, and this harness resolves
every kernel once before any timed round).  Tiers are measured in
interleaved rounds (round-robin over tiers, best of ``--repeats``) with
the garbage collector paused inside the timed region.

The proportional-dense rows additionally measure:

* the **store-arena tiers** (``fused@dense`` / ``fused@mmap``): the fused
  kernel driven directly over a :class:`DenseNumpyStore` /
  :class:`MmapDenseStore` arena — the configuration that used to demote
  to the materialising adapter under the pointer-table layout;
* the **arena-vs-pointer-table** ratio against the recorded fused seconds
  of the pointer-table layout (the generation before the CSR arena, same
  datasets, same cc backend, full scale) — only emitted at ``--scale 1.0``
  where the baseline is comparable;

and a ``checkpoint_write`` section times ``save_engine`` per store backend
on the dense policy, showing the dense/mmap packed writers against the
per-key dict pickling (the mmap column is the arena-sidecar write).  The
CI benchmark-smoke job runs this script; run it locally with::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--scale 0.5] [--output path.json]
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import time
from pathlib import Path

from repro.core import kernels
from repro.core.checkpoint import save_engine
from repro.datasets.catalog import load_preset
from repro.runtime import DEFAULT_BATCH_SIZE, RunConfig, Runner

#: (policy, dataset) pairs measured.  The compiled-kernel policies run on
#: every preset where they are feasible; the entry-based families ride on
#: the pure fused tier (their fusion is the whole-span Python loop).
CASES = (
    ("noprov", "bitcoin"),
    ("noprov", "taxis"),
    ("noprov", "flights"),
    ("proportional-dense", "taxis"),
    ("proportional-dense", "flights"),
    ("fifo", "bitcoin"),
    ("lrb", "taxis"),
)

TIERS = ("batched", "columnar", "fused")

#: Extra fused tiers measured for the policies whose kernels take a store
#: arena directly: tier name -> store backend.
STORE_TIERS = {"fused_dense_store": "dense", "fused_mmap_store": "mmap"}
STORE_TIER_POLICIES = frozenset({"proportional-dense"})

#: Best fused seconds of the pointer-table generation (the layout before
#: the CSR-flattened arena: per-row ndarrays behind a ctypes address
#: table), recorded by this same harness at scale 1.0 on the cc backend.
#: The arena-vs-pointer-table column divides these by the current fused
#: seconds; at any other scale the ratio is omitted as incomparable.
POINTER_TABLE_BASELINE = {
    ("proportional-dense", "taxis"): 0.006049854000593768,
    ("proportional-dense", "flights"): 0.00445064999985334,
}

#: save_engine timing: store backends compared on the dense policy.
CHECKPOINT_STORES = ("dict", "dense", "mmap")
CHECKPOINT_CASE = ("proportional-dense", "taxis")


def tier_config(
    network, policy_name: str, batch_size: int, tier: str, store=None
) -> RunConfig:
    if tier == "batched":
        return RunConfig(
            dataset=network, policy=policy_name, batch_size=batch_size,
            columnar=False, store=store,
        )
    return RunConfig(
        dataset=network, policy=policy_name, batch_size=batch_size,
        columnar=True, kernel="batch" if tier == "columnar" else "fused",
        store=store,
    )


def timed_run(network, policy_name: str, batch_size: int, tier: str, store=None):
    """One run of one tier with the collector paused; ``(seconds, result)``."""
    config = tier_config(network, policy_name, batch_size, tier, store)
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        result = Runner(config).run()
        return result.statistics.elapsed_seconds, result
    finally:
        if gc_was_enabled:
            gc.enable()


def case_tiers(policy_name: str):
    """Tier name -> store backend (None = dict) measured for one policy."""
    tiers = {tier: None for tier in TIERS}
    if policy_name in STORE_TIER_POLICIES:
        tiers.update(STORE_TIERS)
    return tiers


def measure_case(network, policy_name: str, batch_size: int, repeats: int):
    """Best seconds (and matching results) per tier, interleaved rounds."""
    tiers = case_tiers(policy_name)
    best = {tier: float("inf") for tier in tiers}
    best_results = {tier: None for tier in tiers}
    network.to_block()  # columnar conversion happens outside every round
    for _ in range(repeats):
        for tier, store in tiers.items():
            seconds, result = timed_run(
                network, policy_name, batch_size, tier, store
            )
            if seconds < best[tier]:
                best[tier] = seconds
                best_results[tier] = result
    return best, best_results


def measure_checkpoint_writes(scale: float, repeats: int, workdir: Path):
    """``save_engine`` seconds and bytes per store backend, best of repeats.

    One finished dense-policy run per backend; the timed region is the
    checkpoint write alone (state pickling + any arena sidecar, fsync
    included).  The dict column pays one pickled ndarray per vertex key,
    the dense column pickles a single packed matrix, and the mmap column
    routes the matrix through the arena-sidecar writer — which is what
    decouples dense checkpoint cost from the key count.
    """
    policy_name, dataset = CHECKPOINT_CASE
    network = load_preset(dataset, scale=scale)
    rows = []
    for store in CHECKPOINT_STORES:
        result = Runner(
            RunConfig(dataset=network, policy=policy_name, store=store)
        ).run()
        engine = result.engine
        path = workdir / f"bench.{store}.ckpt"
        best = float("inf")
        for _ in range(max(repeats, 2)):
            gc.collect()
            started = time.perf_counter()
            save_engine(engine, path)
            best = min(best, time.perf_counter() - started)
        sidecar_bytes = sum(
            sidecar.stat().st_size for sidecar in workdir.glob(f"{path.name}.*.arena")
        )
        rows.append({
            "store": store,
            "entries": result.statistics.final_entry_count,
            "save_seconds": best,
            "state_bytes": path.stat().st_size,
            "arena_sidecar_bytes": sidecar_bytes,
        })
        print(
            f"checkpoint write [{store:5s}]: {best * 1e3:8.3f} ms, "
            f"state {rows[-1]['state_bytes']:,} B, "
            f"sidecar {sidecar_bytes:,} B"
        )
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0, help="dataset scale factor")
    parser.add_argument("--repeats", type=int, default=5, help="runs per tier")
    parser.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH_SIZE,
        help="batch size of the batched/columnar tiers",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_kernel_fusion.json",
        help="where to write the JSON record",
    )
    args = parser.parse_args()

    # Resolve (and possibly compile) every kernel once, before any timed
    # round; the engine additionally keeps prepare_fused outside its timer.
    for name in kernels.KERNEL_NAMES:
        kernels.get_kernel(name)
    compile_warmup = kernels.compile_seconds()

    records = []
    for policy_name, dataset in CASES:
        network = load_preset(dataset, scale=args.scale)
        best, best_results = measure_case(
            network, policy_name, args.batch_size, args.repeats
        )
        batched, columnar, fused = best["batched"], best["columnar"], best["fused"]
        fused_stats = best_results["fused"].kernel_stats or {}
        interactions = network.num_interactions
        record = {
            "policy": policy_name,
            "dataset": dataset,
            "interactions": interactions,
            "batched_seconds": batched,
            "columnar_seconds": columnar,
            "fused_seconds": fused,
            "batched_ips": interactions / batched if batched else 0.0,
            "columnar_ips": interactions / columnar if columnar else 0.0,
            "fused_ips": interactions / fused if fused else 0.0,
            "fused_vs_columnar": columnar / fused if fused else 0.0,
            "fused_vs_batched": batched / fused if fused else 0.0,
            "fused_backend": fused_stats.get("backend"),
            "fused_chunks": fused_stats.get("chunks"),
            "fused_compile_seconds": fused_stats.get("compile_seconds"),
        }
        baseline = POINTER_TABLE_BASELINE.get((policy_name, dataset))
        if baseline is not None and args.scale == 1.0 and fused:
            record["pointer_table_fused_seconds"] = baseline
            record["arena_vs_pointer_table"] = baseline / fused
        for tier, store in STORE_TIERS.items():
            if best.get(tier, float("inf")) == float("inf"):
                continue
            seconds = best[tier]
            stats = best_results[tier].kernel_stats or {}
            record[f"{tier}_seconds"] = seconds
            record[f"{tier}_ips"] = interactions / seconds if seconds else 0.0
            record[f"{tier}_backend"] = stats.get("backend")
        records.append(record)
        print(
            f"{policy_name:20s} on {dataset:8s}: "
            f"{record['batched_ips']:>10,.0f} batched ips -> "
            f"{record['columnar_ips']:>10,.0f} columnar -> "
            f"{record['fused_ips']:>10,.0f} fused[{record['fused_backend']}] "
            f"({record['fused_vs_columnar']:.2f}x vs columnar, "
            f"{record['fused_vs_batched']:.2f}x vs batched)"
        )
        if "fused_dense_store_ips" in record:
            arena_note = (
                f", {record['arena_vs_pointer_table']:.2f}x vs pointer-table"
                if "arena_vs_pointer_table" in record
                else ""
            )
            print(
                f"{'':20s}    store arenas: "
                f"{record['fused_dense_store_ips']:>10,.0f} fused@dense ips, "
                f"{record['fused_mmap_store_ips']:>10,.0f} fused@mmap ips"
                f"{arena_note}"
            )

    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        checkpoint_rows = measure_checkpoint_writes(
            args.scale, args.repeats, Path(scratch)
        )

    payload = {
        "benchmark": "fused_kernel_throughput",
        "scale": args.scale,
        "batch_size": args.batch_size,
        "repeats": args.repeats,
        "python": platform.python_version(),
        "jit_enabled": kernels.jit_enabled(),
        "backends": {name: kernels.backend_of(name) for name in kernels.KERNEL_NAMES},
        "backend_failures": kernels.backend_failures(),
        "compile_seconds_untimed": compile_warmup,
        "results": records,
        "checkpoint_write": {
            "policy": CHECKPOINT_CASE[0],
            "dataset": CHECKPOINT_CASE[1],
            "results": checkpoint_rows,
        },
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    failures = []
    # CI gate: fusing the drive loop must never cost throughput on noprov,
    # whatever backend resolved.
    fused_slower = [
        r for r in records
        if r["policy"] == "noprov" and r["fused_vs_columnar"] <= 1.0
    ]
    if fused_slower:
        print(
            "FAIL: fused tier not faster than columnar on noprov for:",
            [r["dataset"] for r in fused_slower],
        )
        failures.append("fused")
    # CI gate: with numba installed, proportional-dense must resolve to the
    # njit backend — the arena layout exists so the dispatcher no longer
    # demotes it to a slower tier.
    try:
        import numba  # noqa: F401
        have_numba = True
    except ImportError:
        have_numba = False
    if have_numba and kernels.backend_of("proportional-dense") != "numba":
        print(
            "FAIL: numba installed but proportional-dense resolved to",
            kernels.backend_of("proportional-dense"),
            "— demotion is back:",
            kernels.backend_failures(),
        )
        failures.append("numba_demotion")
    # Raw-speed-floor gate (full scale only, where the recorded baseline is
    # comparable): the CSR arena kernel must beat the pointer-table layout
    # by >=1.5x on at least one bundled dataset.
    arena_ratios = [
        r["arena_vs_pointer_table"]
        for r in records
        if "arena_vs_pointer_table" in r
    ]
    if arena_ratios and max(arena_ratios) < 1.5:
        print(
            "FAIL: arena kernel not >=1.5x the pointer-table baseline on any "
            "dataset:",
            [f"{ratio:.2f}x" for ratio in arena_ratios],
        )
        failures.append("arena_floor")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
