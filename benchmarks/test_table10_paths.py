"""Benchmark target for Table 10: the overhead of tracking provenance paths."""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import table10_paths


def test_table10_path_tracking_overhead(benchmark, bench_scale, report):
    """Regenerate Table 10 (LIFO + path tracking on every dataset)."""
    result = run_once(benchmark, table10_paths, scale=bench_scale)
    report(result)

    by_dataset = {row["dataset"]: row for row in result.rows}
    assert set(by_dataset) == {"bitcoin", "ctu", "prosper", "flights", "taxis"}
    for dataset, row in by_dataset.items():
        # Path tracking costs extra memory but the total stays finite and the
        # runtime is within a small multiple of plain LIFO (paper Section 7.5).
        assert row["total_mem_mb"] >= row["mem_entries_mb"]
        assert row["mem_paths_mb"] >= 0
        assert row["runtime_s"] <= max(row["baseline_runtime_s"] * 20, 1.0), dataset
        assert row["avg_path_length"] >= 0

    # The Flights network has very few vertices relative to interactions, so
    # quantities travel much longer paths there than on Bitcoin-like networks
    # (the dominant qualitative observation of Table 10).
    assert by_dataset["flights"]["avg_path_length"] >= by_dataset["ctu"]["avg_path_length"]
