"""Shared configuration for the benchmark suite.

Each benchmark regenerates one table or figure of the paper by calling the
corresponding function in :mod:`repro.bench.experiments`, records its
wall-clock cost with pytest-benchmark (single round — the experiments are
themselves timed sweeps), prints the resulting table and writes it to
``benchmarks/results/<experiment>.txt`` so the numbers can be compared with
the paper (see EXPERIMENTS.md).

The dataset scale can be adjusted with the ``REPRO_BENCH_SCALE`` environment
variable (default 1.0: the full synthetic presets, a few minutes of
pure-Python time for the whole suite; use e.g. 0.1 for a quick smoke run).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.harness import ExperimentResult

#: Default fraction of each preset's size used by the benchmarks.
DEFAULT_SCALE = 1.0

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Dataset scale factor for all benchmarks (env: REPRO_BENCH_SCALE)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


@pytest.fixture(scope="session")
def report() -> "ReportWriter":
    RESULTS_DIR.mkdir(exist_ok=True)
    return ReportWriter(RESULTS_DIR)


class ReportWriter:
    """Prints an experiment result and persists it under benchmarks/results/."""

    def __init__(self, directory: Path):
        self.directory = directory

    def __call__(self, result: ExperimentResult) -> ExperimentResult:
        text = result.to_text()
        print()
        print(text)
        output = self.directory / f"{result.experiment_id}.txt"
        output.write_text(text + "\n")
        return result


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The experiments already sweep whole datasets, so multiple benchmark
    rounds would only multiply runtime without adding information.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
