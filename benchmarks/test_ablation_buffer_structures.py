"""Ablation bench: heap vs. FIFO vs. LIFO buffer organisations.

DESIGN.md calls out the heap-versus-queue design decision of Sections 4.1
and 4.2: the receipt-order policies avoid heap maintenance and should be
cheaper than the generation-time policies.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import ablation_buffer_structures


def test_ablation_buffer_structures(benchmark, bench_scale, report):
    result = run_once(benchmark, ablation_buffer_structures, "prosper", scale=bench_scale)
    report(result)

    by_buffer = {row["buffer"]: row for row in result.rows}
    assert len(by_buffer) == 4
    heap_time = by_buffer["heap (least-recently-born)"]["runtime_s"]
    queue_time = by_buffer["fifo queue"]["runtime_s"]
    stack_time = by_buffer["lifo stack"]["runtime_s"]
    # In the paper the queue/stack buffers are strictly faster than the
    # heaps.  On the synthetic presets the per-interaction cost is dominated
    # by how strongly each selection order fragments the buffers rather than
    # by the heap-vs-queue constant, so the ablation only asserts that all
    # four organisations stay within a small factor of each other (the
    # detailed numbers are reported for EXPERIMENTS.md).
    assert queue_time <= heap_time * 5
    assert stack_time <= heap_time * 5
    assert heap_time <= min(queue_time, stack_time) * 5
