"""Ablation bench: proactive versus lazy (replay-based) provenance.

The paper's future work (Section 8) proposes lazy provenance in the spirit
of Ariadne's replay-lazy operator instrumentation.  This benchmark measures
the trade-off implemented by :class:`repro.lazy.ReplayProvenance`: streaming
is cheaper (no annotation maintenance) but each provenance query pays a
replay of the log.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import ablation_lazy_vs_proactive


def test_ablation_lazy_vs_proactive(benchmark, bench_scale, report):
    result = run_once(
        benchmark,
        ablation_lazy_vs_proactive,
        "prosper",
        query_counts=(0, 1, 10, 50),
        scale=bench_scale,
    )
    report(result)

    rows = sorted(result.rows, key=lambda row: row["queries"])
    # With no queries the lazy variant never replays and only stores the log.
    assert rows[0]["lazy_replays"] == 0
    # Query results are cached, so replay count never exceeds one per batch.
    assert all(row["lazy_replays"] <= 1 for row in rows)
    # Lazy total cost never decreases as more queries are issued.
    lazy_costs = [row["lazy_total_s"] for row in rows]
    assert lazy_costs[0] <= lazy_costs[-1] * 1.5
