"""Benchmark target for Figure 2: accumulation / provenance mix at one vertex."""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import figure2_accumulation


def test_figure2_taxis_accumulation(benchmark, bench_scale, report):
    """Regenerate the Figure 2 series for the busiest vertex of the taxi preset."""
    result = run_once(benchmark, figure2_accumulation, scale=bench_scale, max_points=25)
    report(result)

    assert len(result.rows) >= 1
    summary = result.series["summary"][0]
    assert summary["deliveries"] >= len(result.rows)
    assert summary["distinct_origins_overall"] >= 1
    for row in result.rows:
        assert row["buffered_quantity"] >= 0
        assert 0.0 <= row["top_origin_share"] <= 1.0 + 1e-9
        assert row["distinct_origins"] >= 0
