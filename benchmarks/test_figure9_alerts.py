"""Benchmark target for Figure 9: provenance alerts (smurfing use case)."""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import figure9_alerts


def test_figure9_provenance_alerts(benchmark, bench_scale, report):
    """Regenerate the alerting use case on the Bitcoin-like preset."""
    result = run_once(benchmark, figure9_alerts, scale=bench_scale)
    report(result)

    summary = result.series["summary"][0]
    assert summary["quantity_threshold"] > 0
    assert summary["alerts"] >= 0
    assert (
        summary["alerts"]
        == summary["few_contributor_alerts"] + summary["many_contributor_alerts"]
    )
    # Every reported alert must satisfy the rule: quantity above threshold.
    for row in result.rows:
        assert row["buffered_quantity"] > summary["quantity_threshold"]
        assert row["contributing_vertices"] >= 1
