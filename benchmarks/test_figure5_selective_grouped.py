"""Benchmark target for Figure 5: selective and grouped provenance vs. k."""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import figure5_selective_grouped


def test_figure5_selective_and_grouped_provenance(benchmark, bench_scale, report):
    """Regenerate Figure 5's runtime/memory curves for k on the large presets."""
    k_values = (5, 20, 50, 100, 150, 200)
    result = run_once(
        benchmark, figure5_selective_grouped, k_values=k_values, scale=bench_scale
    )
    report(result)

    # Memory grows (roughly linearly) with k for both variants, as in the paper.
    by_dataset = {}
    for row in result.rows:
        by_dataset.setdefault(row["dataset"], []).append(row)
    for dataset, rows in by_dataset.items():
        rows.sort(key=lambda row: row["k"])
        assert rows[-1]["selective_memory_mb"] >= rows[0]["selective_memory_mb"], dataset
        assert rows[-1]["grouped_memory_mb"] >= rows[0]["grouped_memory_mb"], dataset
        # Selective and grouped have the same asymptotics; their costs for the
        # same k stay within an order of magnitude of each other.
        for row in rows:
            ratio = row["selective_memory_mb"] / max(row["grouped_memory_mb"], 1e-9)
            assert 0.1 <= ratio <= 10.0, (dataset, row["k"])
