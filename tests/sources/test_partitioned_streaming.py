"""Acceptance suite of partitioned streaming over rolling shared segments.

The equivalence bar: a streaming run fanned out over ``streaming_shards``
persistent workers (micro-batches appended into rolling shared-memory
segment rings) must produce origin sets, buffer totals and entry counts
identical — float for float — to the eager sharded run over the same
routing, for EVERY registered policy, on the dict store and on the dense
store, whether the interactions arrive as a materialised dataset or
through an :class:`InteractionSource`, and whether the run is
uninterrupted or checkpointed and resumed mid-stream.  On top of
equivalence: segment rings must actually roll (reuse slots) under small
rings, a crashed worker must drain without leaking a single ``/dev/shm``
segment, and the :class:`PartitionedScheduler` must honour its routing,
flush-trigger and barrier contracts in isolation.
"""

from __future__ import annotations

import glob
import os
import tempfile

import pytest

from repro.core.checkpoint import read_checkpoint, save_engine
from repro.core.engine import ProvenanceEngine
from repro.core.interaction import Interaction
from repro.datasets.catalog import load_preset
from repro.datasets.io import write_interactions_csv
from repro.exceptions import RunConfigurationError
from repro.policies.no_provenance import NoProvenancePolicy
from repro.policies.registry import available_policies, make_policy
from repro.runtime import RunConfig, Runner
from repro.runtime import shm as shm_mod
from repro.sources import (
    CsvTailSource,
    InteractionSource,
    PartitionedScheduler,
    SequenceSource,
)
from repro.stores import StoreSpec

#: Structural parameters for the policies whose constructors require them.
STRUCTURAL_OPTIONS = {
    "proportional-budget": {"capacity": 20},
    "proportional-windowed": {"window": 150},
    "proportional-time-windowed": {"window": 50.0},
}

STORES = {
    "dict": None,
    "dense": StoreSpec("dense"),
}


class CrashPolicy(NoProvenancePolicy):
    """A policy that kills its worker process mid-stream (crash simulation)."""

    name = "crash"

    def process(self, interaction):  # pragma: no cover - exits the process
        os._exit(17)

    def process_many(self, interactions):  # pragma: no cover
        os._exit(17)

    def process_block(self, block):  # pragma: no cover
        os._exit(17)


@pytest.fixture(scope="module")
def network():
    return load_preset("taxis", scale=0.05)


def our_segment_names():
    """Leftover fabric segments of THIS process, across both backends."""
    prefix = f"rp{os.getpid():x}x"
    leftovers = []
    if os.path.isdir("/dev/shm"):
        leftovers += [n for n in os.listdir("/dev/shm") if n.startswith(prefix)]
    leftovers += [
        os.path.basename(p)
        for p in glob.glob(os.path.join(tempfile.gettempdir(), prefix + "*"))
    ]
    return leftovers


def snapshot_dict(result):
    snapshot = result.snapshot()
    return {vertex: snapshot[vertex].as_dict() for vertex in snapshot}


def assert_equivalent(reference, streamed):
    assert reference.statistics.interactions == streamed.statistics.interactions
    assert snapshot_dict(reference) == snapshot_dict(streamed)
    assert dict(reference.buffer_totals()) == dict(streamed.buffer_totals())
    assert (
        reference.statistics.final_entry_count
        == streamed.statistics.final_entry_count
    )


def eager_config(network, policy_name, store, *, shard_by="hash", shards=3, **extra):
    return RunConfig(
        dataset=network,
        policy=policy_name,
        policy_options=STRUCTURAL_OPTIONS.get(policy_name, {}),
        store=STORES[store],
        shards=shards,
        shard_by=shard_by,
        **extra,
    )


def stream_config(network, policy_name, store, *, shard_by="hash", shards=3, **extra):
    return RunConfig(
        dataset=network,
        policy=policy_name,
        policy_options=STRUCTURAL_OPTIONS.get(policy_name, {}),
        store=STORES[store],
        streaming_shards=shards,
        shard_by=shard_by,
        micro_batch=64,
        **extra,
    )


# ----------------------------------------------------------------------
# equivalence: every policy x dict/dense stores, dataset mode
# ----------------------------------------------------------------------
@pytest.mark.parametrize("store", sorted(STORES))
@pytest.mark.parametrize("policy_name", available_policies())
def test_partitioned_stream_identical_to_eager_sharded(network, policy_name, store):
    eager = Runner(eager_config(network, policy_name, store)).run()
    streamed = Runner(stream_config(network, policy_name, store)).run()
    assert_equivalent(eager, streamed)
    assert streamed.stream_stats is not None
    assert streamed.stream_stats["mode"] == "dataset"
    assert streamed.stream_stats["fabric"]["batches"] > 0
    assert our_segment_names() == []


@pytest.mark.parametrize(
    ("policy_name", "store"), [("fifo", "dict"), ("proportional-dense", "dense")]
)
def test_mincut_routing_identical(network, policy_name, store):
    eager = Runner(
        eager_config(network, policy_name, store, shard_by="mincut", shards=2)
    ).run()
    streamed = Runner(
        stream_config(network, policy_name, store, shard_by="mincut", shards=2)
    ).run()
    assert_equivalent(eager, streamed)
    assert streamed.stream_stats["routing"] == "mincut"


def test_components_routing_identical(network):
    # Default component routing may prune the plan below the requested shard
    # count; the streamed run must follow the pruned plan exactly.
    eager = Runner(
        eager_config(network, "lrb", "dict", shard_by="components", shards=2)
    ).run()
    streamed = Runner(
        stream_config(network, "lrb", "dict", shard_by="components", shards=2)
    ).run()
    assert_equivalent(eager, streamed)


# ----------------------------------------------------------------------
# equivalence: source-fed mode
# ----------------------------------------------------------------------
@pytest.mark.parametrize("store", sorted(STORES))
def test_source_fed_stream_identical_to_eager_sharded(network, store):
    eager = Runner(eager_config(network, "fifo", store)).run()
    streamed = Runner(
        RunConfig(
            source=SequenceSource(network.interactions),
            policy="fifo",
            store=STORES[store],
            streaming_shards=3,
            shard_by="hash",
            micro_batch=64,
        )
    ).run()
    assert_equivalent(eager, streamed)
    assert streamed.stream_stats["mode"] == "source"
    assert streamed.scheduler_stats is not None
    assert (
        streamed.scheduler_stats["interactions"] == eager.statistics.interactions
    )
    assert our_segment_names() == []


def test_source_mincut_warmup_identical_to_eager_mincut_prefix(network):
    # A frozen warm-up membership routes like SOME valid 2-way partition;
    # the run must at minimum process everything and leave no segments.
    streamed = Runner(
        RunConfig(
            source=SequenceSource(network.interactions),
            policy="noprov",
            streaming_shards=2,
            shard_by="mincut",
            streaming_warmup=200,
            micro_batch=64,
        )
    ).run()
    assert streamed.statistics.interactions == network.num_interactions
    assert streamed.stream_stats["routing"] == "mincut"
    assert our_segment_names() == []


def test_source_components_routing_rejected(network):
    # Component routing needs the whole network up front; a live source
    # cannot provide it and must be rejected loudly.
    with pytest.raises(RunConfigurationError):
        RunConfig(
            source=SequenceSource(network.interactions),
            policy="fifo",
            streaming_shards=2,
            shard_by="components",
        )


# ----------------------------------------------------------------------
# resume mid-stream
# ----------------------------------------------------------------------
def test_dataset_resume_mid_stream(network, tmp_path):
    path = tmp_path / "stream.ckpt"
    half = network.num_interactions // 2
    eager = Runner(eager_config(network, "fifo", "dict")).run()
    first = Runner(
        stream_config(
            network, "fifo", "dict",
            limit=half, checkpoint_every=200, checkpoint_path=path,
        )
    ).run()
    assert first.statistics.interactions == half
    manifest = read_checkpoint(path)
    assert manifest["kind"] == "partitioned-stream"
    assert manifest["interactions_processed"] == half
    resumed = Runner(stream_config(network, "fifo", "dict", resume_from=path)).run()
    # Resumed statistics are run-local: only the remainder was processed now.
    assert resumed.statistics.interactions == network.num_interactions - half
    assert snapshot_dict(eager) == snapshot_dict(resumed)
    assert dict(eager.buffer_totals()) == dict(resumed.buffer_totals())
    assert our_segment_names() == []


def test_source_seek_resume_mid_stream(network, tmp_path):
    feed = tmp_path / "feed.csv"
    path = tmp_path / "stream.ckpt"
    write_interactions_csv(network.interactions, feed)
    half = network.num_interactions // 2
    eager = Runner(eager_config(network, "fifo", "dict", shards=2)).run()
    Runner(
        RunConfig(
            source=CsvTailSource(feed, vertex_type=int),
            policy="fifo",
            streaming_shards=2,
            shard_by="hash",
            micro_batch=64,
            limit=half,
            checkpoint_every=200,
            checkpoint_path=path,
        )
    ).run()
    manifest = read_checkpoint(path)
    assert manifest["mode"] == "source"
    assert manifest["source_resume"] is not None  # byte offset, not replay
    resumed = Runner(
        RunConfig(
            source=CsvTailSource(feed, vertex_type=int),
            policy="fifo",
            streaming_shards=2,
            shard_by="hash",
            micro_batch=64,
            resume_from=path,
        )
    ).run()
    assert snapshot_dict(eager) == snapshot_dict(resumed)
    assert dict(eager.buffer_totals()) == dict(resumed.buffer_totals())
    assert our_segment_names() == []


def test_mincut_membership_frozen_across_resume(network, tmp_path):
    path = tmp_path / "stream.ckpt"
    half = network.num_interactions // 2
    source = lambda: SequenceSource(network.interactions)  # noqa: E731
    full = Runner(
        RunConfig(
            source=source(), policy="noprov", streaming_shards=2,
            shard_by="mincut", streaming_warmup=200, micro_batch=64,
        )
    ).run()
    Runner(
        RunConfig(
            source=source(), policy="noprov", streaming_shards=2,
            shard_by="mincut", streaming_warmup=200, micro_batch=64,
            limit=half, checkpoint_every=200, checkpoint_path=path,
        )
    ).run()
    assert read_checkpoint(path)["membership"]  # frozen table persisted
    resumed = Runner(
        RunConfig(
            source=source(), policy="noprov", streaming_shards=2,
            shard_by="mincut", micro_batch=64, resume_from=path,
        )
    ).run()
    assert snapshot_dict(full) == snapshot_dict(resumed)
    assert dict(full.buffer_totals()) == dict(resumed.buffer_totals())


def test_resume_rejects_engine_checkpoint_and_shard_mismatch(network, tmp_path):
    engine_path = tmp_path / "engine.ckpt"
    save_engine(ProvenanceEngine(make_policy("fifo")), engine_path)
    with pytest.raises(RunConfigurationError):
        Runner(
            stream_config(network, "fifo", "dict", resume_from=engine_path)
        ).run()
    stream_path = tmp_path / "stream.ckpt"
    Runner(
        stream_config(
            network, "fifo", "dict",
            limit=200, checkpoint_every=100, checkpoint_path=stream_path,
        )
    ).run()
    with pytest.raises(RunConfigurationError):
        Runner(
            stream_config(
                network, "fifo", "dict", shards=2, resume_from=stream_path
            )
        ).run()


# ----------------------------------------------------------------------
# segment rings and crash hygiene
# ----------------------------------------------------------------------
def test_segment_rings_roll_under_small_ring(network):
    streamed = Runner(
        RunConfig(
            dataset=network,
            policy="fifo",
            streaming_shards=2,
            shard_by="hash",
            micro_batch=32,
            streaming_ring=2,
        )
    ).run()
    fabric = streamed.stream_stats["fabric"]
    # Far more micro-batches than ring slots: slots MUST have been reused.
    assert fabric["batches"] > 2 * fabric["ring"]
    assert fabric["segment_reuses"] > 0
    assert fabric["backpressure_stalls"] >= 0
    eager = Runner(eager_config(network, "fifo", "dict", shards=2)).run()
    assert_equivalent(eager, streamed)
    assert our_segment_names() == []
    assert shm_mod.active_segments() == []


def test_worker_crash_mid_stream_drains_cleanly(network):
    with pytest.raises(shm_mod.WorkerCrashedError):
        Runner(
            RunConfig(
                dataset=network,
                policy=CrashPolicy(),
                streaming_shards=2,
                shard_by="hash",
                micro_batch=64,
            )
        ).run()
    assert our_segment_names() == []
    assert shm_mod.active_segments() == []
    # The pool replaces the dead worker transparently on the next stream.
    recovered = Runner(stream_config(network, "noprov", "dict", shards=2)).run()
    assert recovered.statistics.interactions == network.num_interactions
    assert our_segment_names() == []


# ----------------------------------------------------------------------
# PartitionedScheduler unit contracts
# ----------------------------------------------------------------------
def make_interactions(sources, start=0):
    return [
        Interaction(s, "sink", float(start + i), 1.0)
        for i, s in enumerate(sources)
    ]


class TestPartitionedScheduler:
    def test_mapping_routes_with_hash_fallback(self):
        scheduler = PartitionedScheduler(
            SequenceSource([]), 2, {"a": 1, "b": 0}, micro_batch=4
        )
        assert scheduler.route("a") == 1
        assert scheduler.route("b") == 0
        unseen = scheduler.route("zzz")  # falls back to the stable hash...
        assert unseen in (0, 1)
        assert scheduler.route("zzz") == unseen  # ...and is memoised

    def test_out_of_range_routing_fails_loudly(self):
        scheduler = PartitionedScheduler(
            SequenceSource([]), 2, lambda vertex: 7, micro_batch=4
        )
        with pytest.raises(RunConfigurationError):
            scheduler.route("a")

    def test_per_shard_order_preserved_and_triggers_counted(self):
        interactions = make_interactions(["a", "b"] * 10)
        scheduler = PartitionedScheduler(
            SequenceSource(interactions), 2, {"a": 0, "b": 1}, micro_batch=4
        )
        per_shard = {0: [], 1: []}
        while True:
            flushes = scheduler.next_flushes()
            if flushes is None:
                break
            for flush in flushes:
                assert flush.trigger in ("size", "final")
                per_shard[flush.shard].extend(flush.batch)
        for shard, vertex in ((0, "a"), (1, "b")):
            expected = [i for i in interactions if i.source == vertex]
            assert per_shard[shard] == expected
        stats = scheduler.stats()
        assert stats["interactions"] == len(interactions)
        assert stats["flushes"]["size"] == 4
        assert stats["flushes"]["final"] == 2

    def test_prefeed_counts_toward_pulled(self):
        interactions = make_interactions(["a"] * 10)
        scheduler = PartitionedScheduler(
            SequenceSource(interactions[4:]), 1, {"a": 0}, micro_batch=100
        )
        scheduler.prefeed(interactions[:4])
        assert scheduler.pulled == 4
        drained = []
        while True:
            flushes = scheduler.next_flushes()
            if flushes is None:
                break
            drained.extend(i for f in flushes for i in f.batch)
        assert drained == interactions  # prefix first, then the stream

    def test_max_pull_barrier_then_ratchet(self):
        interactions = make_interactions(["a"] * 10)
        scheduler = PartitionedScheduler(
            SequenceSource(interactions), 1, {"a": 0},
            micro_batch=100, max_pull=6,
        )
        flushes = scheduler.next_flushes()
        assert [f.trigger for f in flushes] == ["barrier"]
        assert sum(len(f.batch) for f in flushes) == 6
        assert scheduler.next_flushes() is None  # capped, NOT exhausted
        assert not scheduler.source.exhausted
        scheduler.max_pull = None  # the driver raises the cap post-manifest
        flushes = scheduler.next_flushes()
        assert [f.trigger for f in flushes] == ["final"]
        assert sum(len(f.batch) for f in flushes) == 4
        assert scheduler.next_flushes() is None

    def test_timer_flush_on_quiet_feed(self):
        class QuietSource(InteractionSource):
            def __init__(self, first):
                super().__init__()
                self._first = list(first)

            def poll(self, max_items):
                batch, self._first = self._first[:max_items], []
                return self._emit(batch)

            @property
            def exhausted(self):
                return False

        clock_now = [0.0]
        scheduler = PartitionedScheduler(
            QuietSource(make_interactions(["a"] * 3)), 1, {"a": 0},
            micro_batch=100, flush_interval=5.0,
            clock=lambda: clock_now[0],
            sleep=lambda seconds: clock_now.__setitem__(0, clock_now[0] + 6.0),
        )
        flushes = scheduler.next_flushes()
        assert [f.trigger for f in flushes] == ["timer"]
        assert sum(len(f.batch) for f in flushes) == 3
        assert scheduler.stats()["waits"] >= 1

    def test_validation(self):
        with pytest.raises(RunConfigurationError):
            PartitionedScheduler(SequenceSource([]), 0, {})
        with pytest.raises(RunConfigurationError):
            PartitionedScheduler(SequenceSource([]), 2, "not-a-mapping")
        with pytest.raises(RunConfigurationError):
            PartitionedScheduler(
                SequenceSource([]), 2, {}, micro_batch=16, max_in_flight=4
            )
