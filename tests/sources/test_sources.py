"""Unit tests for the interaction-source backends."""

from __future__ import annotations

import pytest

from repro.core.interaction import Interaction
from repro.datasets.io import write_interactions_csv
from repro.exceptions import DatasetError, InvalidInteractionError, RunConfigurationError
from repro.sources import (
    CsvTailSource,
    GeneratorSource,
    MergeSource,
    SequenceSource,
)


def make(times, source="a", destination="b"):
    return [Interaction(source, destination, float(t), 1.0) for t in times]


class TestSequenceSource:
    def test_polls_in_chunks_until_exhausted(self):
        src = SequenceSource(make(range(7)))
        assert [r.time for r in src.poll(3)] == [0, 1, 2]
        assert not src.exhausted
        assert [r.time for r in src.poll(3)] == [3, 4, 5]
        assert [r.time for r in src.poll(3)] == [6]
        assert src.exhausted
        assert src.poll(3) == []

    def test_watermark_and_count_advance(self):
        src = SequenceSource(make([1, 2, 5]))
        assert src.watermark is None
        src.poll(2)
        assert src.watermark == 2
        src.poll(10)
        assert src.watermark == 5
        assert src.interactions_emitted == 3

    def test_limit_truncates(self):
        src = SequenceSource(make(range(100)), limit=4)
        assert len(list(src)) == 4

    def test_iter_drains_everything(self):
        assert [r.time for r in SequenceSource(make([1, 2, 3]))] == [1, 2, 3]

    def test_validate_rejects_out_of_order(self):
        src = SequenceSource(make([1, 3, 2]), validate=True)
        with pytest.raises(InvalidInteractionError):
            src.poll(10)

    def test_validate_accepts_equal_timestamps(self):
        src = SequenceSource(make([1, 1, 2]), validate=True)
        assert len(src.poll(10)) == 3

    def test_wraps_lazy_generators(self):
        def generator():
            yield from make([1, 2])

        src = SequenceSource(generator())
        assert [r.time for r in src] == [1, 2]

    def test_context_manager_closes(self):
        with SequenceSource(make([1])) as src:
            pass
        assert src.exhausted


class TestGeneratorSource:
    def test_unthrottled_behaves_like_sequence(self):
        src = GeneratorSource(make(range(5)))
        assert len(list(src)) == 5

    def test_rate_limit_paces_release(self):
        clock = FakeClock()
        src = GeneratorSource(make(range(100)), rate=10, burst=2, clock=clock)
        assert len(src.poll(50)) == 2  # full bucket releases the burst
        assert src.poll(50) == []      # bucket empty, no time passed
        assert not src.exhausted
        clock.advance(0.5)             # 10/s * 0.5s = 5 tokens
        assert len(src.poll(50)) == 2  # capped by burst capacity
        clock.advance(0.25)            # comfortably over one token
        assert len(src.poll(1)) == 1   # caller cap below allowance

    def test_rejects_bad_parameters(self):
        with pytest.raises(RunConfigurationError):
            GeneratorSource([], rate=0)
        with pytest.raises(RunConfigurationError):
            GeneratorSource([], rate=5, burst=0)

    def test_exhausts_at_end_of_replay(self):
        clock = FakeClock()
        src = GeneratorSource(make([1, 2]), rate=1000, clock=clock)
        clock.advance(1.0)
        src.poll(10)
        assert src.exhausted


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCsvTailSource:
    def test_reads_existing_file_and_exhausts(self, tmp_path):
        path = tmp_path / "feed.csv"
        write_interactions_csv(make([1, 2, 3]), path)
        src = CsvTailSource(path)
        assert [r.time for r in src.poll(10)] == [1, 2, 3]
        assert src.poll(10) == []
        assert src.exhausted

    def test_missing_file_rejected_unless_opted_out(self, tmp_path):
        with pytest.raises(DatasetError):
            CsvTailSource(tmp_path / "nope.csv")
        src = CsvTailSource(tmp_path / "later.csv", must_exist=False, follow=True,
                            idle_timeout=0.01)
        assert src.poll(5) == []  # nothing yet, not an error

    def test_must_exist_false_requires_follow(self, tmp_path):
        # A non-following source would exhaust on the first poll before the
        # producer ever creates the file.
        with pytest.raises(RunConfigurationError):
            CsvTailSource(tmp_path / "later.csv", must_exist=False)

    def test_waits_for_the_file_to_appear(self, tmp_path):
        path = tmp_path / "later.csv"
        src = CsvTailSource(path, must_exist=False, follow=True, idle_timeout=60)
        assert src.poll(5) == [] and not src.exhausted
        path.write_text("a,b,1.0,2.0\n")
        assert [r.time for r in src.poll(5)] == [1.0]

    def test_follow_picks_up_appended_rows(self, tmp_path):
        path = tmp_path / "feed.csv"
        write_interactions_csv(make([1]), path)
        src = CsvTailSource(path, follow=True, idle_timeout=60)
        assert [r.time for r in src.poll(10)] == [1]
        assert src.poll(10) == []
        assert not src.exhausted
        with path.open("a") as handle:
            handle.write("a,b,2.0,1.0\n")
        assert [r.time for r in src.poll(10)] == [2.0]

    def test_partial_line_buffered_until_newline_lands(self, tmp_path):
        path = tmp_path / "feed.csv"
        path.write_text("a,b,1.0,1.0\n")
        src = CsvTailSource(path, follow=True, idle_timeout=60)
        assert len(src.poll(10)) == 1
        with path.open("a") as handle:
            handle.write("a,b,2.0,")  # torn row: no newline yet
        assert src.poll(10) == []
        with path.open("a") as handle:
            handle.write("5.0\n")
        [interaction] = src.poll(10)
        assert interaction.time == 2.0 and interaction.quantity == 5.0

    def test_idle_timeout_exhausts_follow_run(self, tmp_path):
        clock = FakeClock()
        path = tmp_path / "feed.csv"
        write_interactions_csv(make([1]), path)
        src = CsvTailSource(path, follow=True, idle_timeout=2.0, clock=clock)
        src.poll(10)
        clock.advance(1.0)
        assert src.poll(10) == [] and not src.exhausted
        clock.advance(1.5)
        assert src.poll(10) == []
        assert src.exhausted

    def test_header_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "feed.csv"
        path.write_text("source,destination,time,quantity\n\na,b,1.0,2.0\n")
        src = CsvTailSource(path)
        [interaction] = src.poll(10)
        assert interaction.time == 1.0

    def test_vertex_type_conversion(self, tmp_path):
        path = tmp_path / "feed.csv"
        path.write_text("1,2,1.0,2.0\n")
        [interaction] = CsvTailSource(path, vertex_type=int).poll(10)
        assert interaction.source == 1 and interaction.destination == 2

    def test_out_of_order_rows_rejected(self, tmp_path):
        path = tmp_path / "feed.csv"
        path.write_text("a,b,2.0,1.0\na,b,1.0,1.0\n")
        src = CsvTailSource(path)
        with pytest.raises(InvalidInteractionError):
            src.poll(10)

    def test_malformed_row_raises_dataset_error(self, tmp_path):
        path = tmp_path / "feed.csv"
        path.write_text("a,b,notatime,1.0\n")
        with pytest.raises(DatasetError):
            CsvTailSource(path).poll(10)

    def test_final_row_without_trailing_newline_is_not_dropped(self, tmp_path):
        # Files written by other tools often lack the final newline; the
        # tail source must yield the same rows as the eager reader.
        from repro.datasets.io import read_interactions_csv

        path = tmp_path / "feed.csv"
        path.write_text("a,b,1.0,1.0\na,b,2.0,3.0")  # no trailing \n
        eager = list(read_interactions_csv(path))
        tailed = list(CsvTailSource(path))
        assert len(eager) == 2
        assert tailed == eager

    def test_partial_bytes_keep_the_idle_clock_alive(self, tmp_path):
        # A slow producer that is mid-row is still a live producer: torn
        # bytes must reset the idle clock so the stream is not declared
        # over while data is being written.
        clock = FakeClock()
        path = tmp_path / "feed.csv"
        path.write_text("a,b,1.0,1.0\n")
        src = CsvTailSource(path, follow=True, idle_timeout=1.0, clock=clock)
        src.poll(10)
        clock.advance(0.9)
        with path.open("a") as handle:
            handle.write("a,b,2.0,")      # torn write: progress, no full row
        assert src.poll(10) == []
        clock.advance(0.9)                # 1.8 since the last COMPLETE row
        assert src.poll(10) == []
        assert not src.exhausted          # partial bytes kept it alive
        with path.open("a") as handle:
            handle.write("5.0\n")
        assert [r.quantity for r in src.poll(10)] == [5.0]

    def test_unterminated_final_row_flushed_at_idle_timeout(self, tmp_path):
        clock = FakeClock()
        path = tmp_path / "feed.csv"
        path.write_text("a,b,1.0,1.0\na,b,2.0,3.0")  # producer died mid-write
        src = CsvTailSource(path, follow=True, idle_timeout=1.0, clock=clock)
        assert [r.time for r in src.poll(10)] == [1.0]
        clock.advance(2.0)
        [final] = src.poll(10)
        assert final.time == 2.0 and final.quantity == 3.0
        assert src.exhausted


class TestMergeSource:
    def test_merges_in_time_order(self):
        merged = MergeSource(
            SequenceSource(make([1, 4, 6])), SequenceSource(make([2, 3, 5]))
        )
        assert [r.time for r in merged] == [1, 2, 3, 4, 5, 6]

    def test_equal_timestamps_stable_by_input_position(self):
        merged = MergeSource(
            SequenceSource(make([1, 2], source="first")),
            SequenceSource(make([1, 2], source="second")),
        )
        assert [(r.time, r.source) for r in merged] == [
            (1, "first"), (1, "second"), (2, "first"), (2, "second"),
        ]

    def test_empty_inputs(self):
        merged = MergeSource(SequenceSource([]), SequenceSource(make([1])))
        assert [r.time for r in merged] == [1]
        assert merged.exhausted

    def test_needs_at_least_one_input(self):
        with pytest.raises(RunConfigurationError):
            MergeSource()

    def test_rejects_out_of_order_input(self):
        merged = MergeSource(SequenceSource(make([2, 1])))
        with pytest.raises(InvalidInteractionError):
            merged.poll(10)

    def test_stalls_while_live_input_is_quiet(self, tmp_path):
        # One eager input, one live (following) input with nothing buffered:
        # the merge must emit nothing rather than risk breaking time order.
        path = tmp_path / "live.csv"
        path.write_text("")
        live = CsvTailSource(path, follow=True, idle_timeout=60)
        merged = MergeSource(SequenceSource(make([5, 6])), live)
        assert merged.poll(10) == []
        assert not merged.exhausted
        with path.open("a") as handle:
            handle.write("x,y,1.0,1.0\nx,y,7.0,1.0\n")
        assert [r.time for r in merged.poll(10)] == [1.0, 5.0, 6.0, 7.0]
        live.close()
        assert merged.poll(10) == []
        assert merged.exhausted

    def test_close_closes_all_inputs(self):
        inputs = [SequenceSource(make([1])), SequenceSource(make([2]))]
        MergeSource(*inputs).close()
        assert all(source.exhausted for source in inputs)
