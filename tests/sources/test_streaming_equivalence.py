"""Acceptance tests of the streaming subsystem: bit-identical to eager runs.

The equivalence bar of the source/scheduler refactor: a streaming run over
ANY source — sequence-wrapped, CSV-tailed, merged — must produce origin
sets identical (float for float) to the eager run on the same interaction
sequence, for EVERY registered policy, on the dict store and on the SQLite
spill store.  Resumed runs must land on the same provenance as uninterrupted
ones.
"""

from __future__ import annotations

import pytest

from repro.core.checkpoint import load_engine
from repro.datasets.catalog import load_preset
from repro.datasets.io import write_interactions_csv
from repro.policies.registry import available_policies
from repro.runtime import RunConfig, Runner
from repro.sources import (
    CsvTailSource,
    GeneratorSource,
    MergeSource,
    MicroBatchScheduler,
    SequenceSource,
)
from repro.stores import StoreSpec

#: Structural parameters for the policies whose constructors require them.
STRUCTURAL_OPTIONS = {
    "proportional-budget": {"capacity": 20},
    "proportional-windowed": {"window": 150},
    "proportional-time-windowed": {"window": 50.0},
}

#: A tiny hot capacity forces heavy spilling, so the sqlite leg genuinely
#: exercises fault-in/spill during scheduled execution.
STORES = {
    "dict": None,
    "sqlite": StoreSpec("sqlite", {"hot_capacity": 8}),
}


@pytest.fixture(scope="module")
def network():
    return load_preset("taxis", scale=0.05)


def snapshot_dict(result):
    snapshot = result.snapshot()
    return {vertex: snapshot[vertex].as_dict() for vertex in snapshot}


def run_config(network, policy_name, store, **extra):
    return RunConfig(
        dataset=network,
        policy=policy_name,
        policy_options=STRUCTURAL_OPTIONS.get(policy_name, {}),
        store=STORES[store],
        **extra,
    )


@pytest.mark.parametrize("store", sorted(STORES))
@pytest.mark.parametrize("policy_name", available_policies())
def test_scheduled_run_identical_to_eager(network, policy_name, store):
    eager = Runner(run_config(network, policy_name, store, batch_size=1)).run()
    scheduled = Runner(run_config(
        network, policy_name, store, micro_batch=61, max_in_flight=200
    )).run()
    assert eager.statistics.interactions == scheduled.statistics.interactions
    assert snapshot_dict(eager) == snapshot_dict(scheduled)
    assert scheduled.scheduler_stats is not None
    assert scheduled.scheduler_stats["interactions"] == eager.statistics.interactions
    assert scheduled.scheduler_stats["peak_in_flight"] <= 200


@pytest.mark.parametrize("store", sorted(STORES))
def test_csv_tail_source_identical_to_eager(network, store, tmp_path):
    path = tmp_path / "feed.csv"
    write_interactions_csv(network.interactions, path)
    eager = Runner(run_config(network, "fifo", store)).run()
    tailed = Runner(RunConfig(
        source=CsvTailSource(path, vertex_type=int),
        policy="fifo",
        store=STORES[store],
        micro_batch=64,
    )).run()
    assert snapshot_dict(eager) == snapshot_dict(tailed)


@pytest.mark.parametrize("store", sorted(STORES))
def test_merge_source_reassembles_split_stream(network, store):
    # Split the stream round-robin into 3 time-ordered sub-streams and merge
    # them back: the merged run must equal the eager run on the whole stream.
    interactions = network.interactions
    parts = [interactions[i::3] for i in range(3)]
    merged = MergeSource(*(SequenceSource(part) for part in parts))
    eager = Runner(run_config(network, "fifo", store)).run()
    streamed = Runner(RunConfig(
        source=merged, policy="fifo", store=STORES[store], micro_batch=32
    )).run()
    assert streamed.statistics.interactions == len(interactions)
    assert snapshot_dict(eager) == snapshot_dict(streamed)


def test_merge_source_split_preserves_exact_order(network):
    # The reassembled sequence itself must be the original one (stability on
    # equal timestamps), independent of any policy.
    interactions = network.interactions
    parts = [interactions[i::3] for i in range(3)]
    merged = list(MergeSource(*(SequenceSource(part) for part in parts)))
    assert [r.time for r in merged] == [r.time for r in interactions]


def test_generator_source_identical_to_eager(network):
    eager = Runner(run_config(network, "lrb", "dict")).run()
    replayed = Runner(RunConfig(
        source=GeneratorSource(network.interactions),
        policy="lrb",
        micro_batch=50,
    )).run()
    assert snapshot_dict(eager) == snapshot_dict(replayed)


@pytest.mark.parametrize("store", sorted(STORES))
@pytest.mark.parametrize("policy_name", ["fifo", "proportional-sparse"])
def test_resumed_run_identical_to_uninterrupted(
    network, policy_name, store, tmp_path
):
    checkpoint = tmp_path / "resume.ckpt"
    eager = Runner(run_config(network, policy_name, store)).run()
    half = len(network.interactions) // 2
    interrupted = Runner(run_config(
        network, policy_name, store,
        micro_batch=64,
        limit=half,
        checkpoint_path=checkpoint,
        checkpoint_every=100,
    )).run()
    assert interrupted.statistics.interactions == half
    resumed = Runner(run_config(
        network, policy_name, store,
        micro_batch=64,
        resume_from=checkpoint,
    )).run()
    assert resumed.statistics.interactions == len(network.interactions) - half
    assert resumed.engine.interactions_processed == len(network.interactions)
    assert snapshot_dict(eager) == snapshot_dict(resumed)


def test_engine_checkpoints_fire_on_the_per_interaction_path(network):
    # checkpoint_every/on_checkpoint must never be a silent no-op: the
    # per-interaction path (default batch_size) honours them through the
    # observer mechanism.
    from repro.core.engine import ProvenanceEngine
    from repro.policies.registry import make_policy

    offsets = []
    engine = ProvenanceEngine(make_policy("fifo"))
    engine.run(
        network.interactions[:10],
        checkpoint_every=2,
        on_checkpoint=lambda _engine, processed: offsets.append(processed),
    )
    assert offsets == [2, 4, 6, 8, 10]


def test_periodic_streaming_checkpoints_land_on_exact_offsets(network, tmp_path):
    checkpoint = tmp_path / "periodic.ckpt"
    offsets = []

    class Recorder:
        def __call__(self, engine, processed):
            offsets.append(processed)

    from repro.core.engine import ProvenanceEngine
    from repro.policies.registry import make_policy

    engine = ProvenanceEngine(make_policy("fifo"))
    scheduler = MicroBatchScheduler(
        SequenceSource(network.interactions), micro_batch=64
    )
    engine.run(
        network, scheduler=scheduler, checkpoint_every=150,
        on_checkpoint=Recorder(),
    )
    assert offsets == list(range(150, len(network.interactions) + 1, 150))


def test_streaming_checkpoint_file_restores_runnable_engine(network, tmp_path):
    checkpoint = tmp_path / "mid.ckpt"
    Runner(run_config(
        network, "fifo", "dict",
        micro_batch=64,
        limit=300,
        checkpoint_path=checkpoint,
        checkpoint_every=64,
    )).run()
    engine = load_engine(checkpoint)
    assert engine.interactions_processed == 300
    # the restored engine keeps running
    engine.run(network.interactions[300:400], reset=False, batch_size=32)
    assert engine.interactions_processed == 400


def test_checkpoints_still_written_under_memory_ceiling(network, tmp_path):
    # A memory ceiling registers an engine observer, which forces the
    # per-interaction path — periodic checkpointing must then fall back to
    # the observer mechanism instead of being silently disabled.  The run
    # aborts on the tiny ceiling before any end-of-run save, so the
    # checkpoint on disk can only come from the periodic mechanism.
    checkpoint = tmp_path / "ceiling.ckpt"
    result = Runner(RunConfig(
        dataset=network,
        policy="fifo",
        micro_batch=64,                # scheduler knob set: the bug's trigger
        checkpoint_path=checkpoint,
        checkpoint_every=50,
        memory_ceiling_bytes=1_000,    # trips at the first periodic check
        memory_check_every=200,
    )).run()
    assert not result.feasible
    assert checkpoint.exists(), "periodic checkpointing was silently disabled"
    engine = load_engine(checkpoint)
    assert engine.interactions_processed >= 50
    assert engine.interactions_processed % 50 == 0


def test_observer_run_with_scheduler_knobs_checkpoints_periodically(network, tmp_path):
    # Explicit observers also force per-interaction stepping; periodic
    # checkpoints must keep firing there even when scheduler knobs are set.
    checkpoint = tmp_path / "mid.ckpt"
    positions = []

    def observer(engine, interaction, position):
        positions.append(position)

    result = Runner(RunConfig(
        dataset=network,
        policy="fifo",
        micro_batch=64,
        observers=[observer],
        checkpoint_path=checkpoint,
        checkpoint_every=100,
        limit=250,
    )).run()
    assert result.statistics.interactions == 250
    assert len(positions) == 250       # the per-interaction path really ran
    assert checkpoint.exists()


@pytest.mark.parametrize("store", sorted(STORES))
def test_scheduled_sampling_matches_eager_positions(network, store):
    eager = Runner(run_config(
        network, "fifo", store, batch_size=1, sample_every=100
    )).run()
    scheduled = Runner(run_config(
        network, "fifo", store, micro_batch=97, sample_every=100
    )).run()
    assert eager.statistics.samples == scheduled.statistics.samples
    assert (
        eager.statistics.sampled_entry_counts
        == scheduled.statistics.sampled_entry_counts
    )


def test_sharded_runs_report_scheduler_batches(network):
    # Sharded engines drive the same scheduled loop per shard.
    result = Runner(RunConfig(dataset=network, policy="fifo", shards=2)).run()
    assert result.statistics.interactions == len(network.interactions)
