"""Unit tests for the micro-batch scheduler: flush triggers, backpressure."""

from __future__ import annotations

import pytest

from repro.core.interaction import Interaction
from repro.exceptions import RunConfigurationError
from repro.sources import InteractionSource, MicroBatchScheduler, SequenceSource


def make(times):
    return [Interaction("a", "b", float(t), 1.0) for t in times]


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class ScriptedSource(InteractionSource):
    """Hands out pre-scripted poll results, then exhausts.

    Each entry of ``script`` is what one ``poll`` call returns (an empty
    list simulates a quiet live feed); sizes are clamped to the caller's
    ``max_items`` so backpressure-driven polls behave like a real source.
    """

    def __init__(self, script):
        super().__init__()
        self._script = list(script)
        self.poll_sizes = []

    def poll(self, max_items):
        self.poll_sizes.append(max_items)
        if not self._script:
            return []
        batch = self._script[0][:max_items]
        self._script[0] = self._script[0][len(batch):]
        if not self._script[0]:
            self._script.pop(0)
        return self._emit(batch)

    @property
    def exhausted(self):
        return not self._script


class TestFlushTriggers:
    def test_size_flush_and_final_flush(self):
        scheduler = MicroBatchScheduler(SequenceSource(make(range(10))), micro_batch=4)
        batches = [[r.time for r in batch] for batch in scheduler]
        assert batches == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        stats = scheduler.stats()
        assert stats["flushes"]["size"] == 2
        assert stats["flushes"]["final"] == 1
        assert stats["interactions"] == 10

    def test_next_batch_respects_max_items_clipping(self):
        scheduler = MicroBatchScheduler(SequenceSource(make(range(10))), micro_batch=8)
        assert len(scheduler.next_batch(3)) == 3  # clipped below micro_batch
        assert len(scheduler.next_batch()) == 7
        assert scheduler.next_batch() is None

    def test_wall_clock_flush_on_slow_feed(self):
        clock = FakeClock()
        sleeps = []

        def sleep(seconds):
            sleeps.append(seconds)
            clock.advance(seconds)

        source = ScriptedSource([make([1, 2]), [], [], [], make([3])])
        scheduler = MicroBatchScheduler(
            source, micro_batch=100, flush_interval=0.05,
            poll_interval=0.02, clock=clock, sleep=sleep,
        )
        batch = scheduler.next_batch()
        # two interactions arrived, then the feed went quiet: the timer
        # flushes the partial batch instead of waiting for 100
        assert [r.time for r in batch] == [1, 2]
        assert scheduler.stats()["flushes"]["timer"] == 1
        assert sleeps  # it actually waited between polls
        assert [r.time for r in scheduler.next_batch()] == [3]
        assert scheduler.next_batch() is None

    def test_event_time_window_bounds_every_batch_span(self):
        # Interactions spanning 190 stream-time units with a 10-unit window:
        # every emitted batch must cover at most one window of stream time.
        times = [0, 3, 8, 50, 55, 120, 190]
        scheduler = MicroBatchScheduler(
            SequenceSource(make(times)), micro_batch=100, event_time_window=10,
        )
        batches = [[r.time for r in batch] for batch in scheduler]
        assert batches == [[0, 3, 8], [50, 55], [120], [190]]
        for batch in batches:
            assert batch[-1] - batch[0] <= 10
        assert scheduler.stats()["flushes"]["window"] == 3

    def test_event_time_window_bounds_size_triggered_flushes_too(self):
        # Even when enough items are pending for a size flush, the emitted
        # batch must not span more than the window.
        times = [0, 1, 2, 100, 101, 102]
        scheduler = MicroBatchScheduler(
            SequenceSource(make(times)), micro_batch=4, event_time_window=10,
        )
        batches = [[r.time for r in batch] for batch in scheduler]
        assert batches == [[0, 1, 2], [100, 101, 102]]

    def test_partial_flush_keeps_oldest_arrival_stamp(self):
        # A clipped flush that leaves items pending must not reset the
        # latency clock: leftovers flush within one flush_interval of the
        # ORIGINAL arrival, not of the previous flush.
        clock = FakeClock()
        source = ScriptedSource([make(range(10))] + [[]] * 50)
        scheduler = MicroBatchScheduler(
            source, micro_batch=100, max_in_flight=200, flush_interval=1.0,
            poll_interval=0.1, clock=clock,
            sleep=lambda seconds: clock.advance(seconds),
        )
        first = scheduler.next_batch(6)   # arrives at t=0; clipped flush
        assert len(first) == 6
        clock.advance(0.9)
        # The 4 leftovers arrived at t=0: the timer must fire around t=1.0
        # (arrival + interval), not t=1.9 (previous flush + interval).
        second = scheduler.next_batch()
        assert len(second) == 4
        assert clock.now <= 1.2

    def test_empty_source_returns_none_immediately(self):
        scheduler = MicroBatchScheduler(SequenceSource([]), micro_batch=4)
        assert scheduler.next_batch() is None


class TestBackpressure:
    def test_never_buffers_more_than_max_in_flight(self):
        source = ScriptedSource([make(range(1000))])
        scheduler = MicroBatchScheduler(source, micro_batch=8, max_in_flight=16)
        for batch in scheduler:
            assert scheduler.pending <= 16
        assert scheduler.stats()["peak_in_flight"] <= 16
        assert scheduler.stats()["interactions"] == 1000

    def test_reads_ahead_up_to_max_in_flight(self):
        # The knob buys bounded read-ahead: a bursty source is drained past
        # the next micro-batch, up to the in-flight bound — not merely up to
        # the batch shortfall.
        source = ScriptedSource([make(range(1000))])
        scheduler = MicroBatchScheduler(source, micro_batch=8, max_in_flight=32)
        scheduler.next_batch()
        assert scheduler.stats()["peak_in_flight"] == 32
        assert scheduler.pending == 24  # 32 pulled, 8 flushed

    def test_polls_are_clamped_to_remaining_room(self):
        source = ScriptedSource([make(range(100))])
        scheduler = MicroBatchScheduler(source, micro_batch=8, max_in_flight=16)
        list(scheduler)
        assert max(source.poll_sizes) <= 16

    def test_default_max_in_flight_scales_with_micro_batch(self):
        scheduler = MicroBatchScheduler(SequenceSource([]), micro_batch=32)
        assert scheduler.max_in_flight == 128

    def test_rejects_inconsistent_bounds(self):
        with pytest.raises(RunConfigurationError):
            MicroBatchScheduler(SequenceSource([]), micro_batch=16, max_in_flight=8)
        with pytest.raises(RunConfigurationError):
            MicroBatchScheduler(SequenceSource([]), micro_batch=0)
        with pytest.raises(RunConfigurationError):
            MicroBatchScheduler(SequenceSource([]), flush_interval=0)
        with pytest.raises(RunConfigurationError):
            MicroBatchScheduler(SequenceSource([]), event_time_window=-1)


class TestConsumptionBounds:
    def test_engine_clamps_caller_scheduler_to_limit(self):
        # engine.run(scheduler, limit=N) must not let read-ahead drain the
        # source past N: the remainder stays available for continuation.
        from repro.core.engine import ProvenanceEngine
        from repro.policies.registry import make_policy

        source = SequenceSource(make(range(1000)))
        scheduler = MicroBatchScheduler(source, micro_batch=16)
        engine = ProvenanceEngine(make_policy("fifo"))
        statistics = engine.run(scheduler, limit=10)
        assert statistics.interactions == 10
        assert scheduler.pulled == 10
        assert len(source.poll(2000)) == 990  # nothing lost to read-ahead

    def test_limit_clamp_is_restored_for_continuation_runs(self):
        # The engine's limit clamp must not permanently cap the scheduler:
        # a reset=False continuation on the same scheduler keeps consuming.
        from repro.core.engine import ProvenanceEngine
        from repro.policies.registry import make_policy

        source = SequenceSource(make(range(100)))
        scheduler = MicroBatchScheduler(source, micro_batch=8)
        engine = ProvenanceEngine(make_policy("fifo"))
        assert engine.run(scheduler, limit=5).interactions == 5
        assert scheduler.max_pull is None  # clamp restored
        assert engine.run(scheduler, reset=False, limit=50).interactions == 50
        assert engine.run(scheduler, reset=False).interactions == 45
        assert engine.interactions_processed == 100

    def test_per_interaction_path_respects_the_limit_too(self):
        # The observer/per-interaction path must not drain a source past
        # the limit either (iter_limited, not chunked iteration).
        from repro.core.engine import ProvenanceEngine
        from repro.policies.registry import make_policy

        source = SequenceSource(make(range(1000)))
        engine = ProvenanceEngine(make_policy("fifo"))
        statistics = engine.run(source, limit=10, batch_size=1)
        assert statistics.interactions == 10
        assert source.interactions_emitted == 10
        continuation = engine.run(source, reset=False, limit=20)
        assert continuation.interactions == 20
        assert source.interactions_emitted == 30

    def test_max_pull_bounds_source_consumption(self):
        source = SequenceSource(make(range(100)))
        scheduler = MicroBatchScheduler(source, micro_batch=8, max_pull=20)
        batches = list(scheduler)
        assert sum(len(batch) for batch in batches) == 20
        assert len(source.poll(200)) == 80


class TestOrderPreservation:
    def test_concatenated_batches_equal_the_input_stream(self):
        times = list(range(257))
        scheduler = MicroBatchScheduler(
            SequenceSource(make(times)), micro_batch=7, max_in_flight=21
        )
        replayed = [r.time for batch in scheduler for r in batch]
        assert replayed == [float(t) for t in times]
