"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.dataset == "taxis"
        assert args.policy == "fifo"

    def test_experiment_choices_cover_all_paper_experiments(self):
        expected = {
            "table6", "table7", "table8", "table9", "table10",
            "figure2", "figure5", "figure6", "figure7", "figure8", "figure9",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "nope"])


class TestCommands:
    def test_policies_command(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "fifo" in out and "proportional-sparse" in out

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "taxis" in out and "bitcoin" in out

    def test_run_on_preset(self, capsys):
        assert main(["run", "--dataset", "taxis", "--scale", "0.02", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "processed" in out
        assert "top 3 buffers" in out

    def test_run_with_budget_policy(self, capsys):
        exit_code = main(
            [
                "run",
                "--dataset", "taxis",
                "--scale", "0.02",
                "--policy", "proportional-budget",
                "--budget", "5",
            ]
        )
        assert exit_code == 0

    def test_run_with_selective_policy(self, capsys):
        exit_code = main(
            [
                "run",
                "--dataset", "taxis",
                "--scale", "0.02",
                "--policy", "proportional-selective",
                "--top", "3",
            ]
        )
        assert exit_code == 0

    def test_run_on_csv_file(self, tmp_path, capsys):
        from repro.datasets.io import write_interactions_csv
        from repro.core.interaction import Interaction

        path = tmp_path / "net.csv"
        write_interactions_csv(
            [Interaction("a", "b", 1.0, 2.0), Interaction("b", "c", 2.0, 1.0)], path
        )
        assert main(["run", "--dataset", str(path)]) == 0

    def test_run_on_missing_csv_reports_error(self, capsys):
        assert main(["run", "--dataset", "/does/not/exist.csv"]) == 2
        assert "error" in capsys.readouterr().err

    def test_experiment_command(self, capsys):
        assert main(["experiment", "table6", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "table6" in out
        assert "bitcoin" in out


class TestStreamingFlags:
    def _write_feed(self, tmp_path):
        from repro.core.interaction import Interaction
        from repro.datasets.io import write_interactions_csv

        path = tmp_path / "feed.csv"
        write_interactions_csv(
            [
                Interaction("a", "b", 1.0, 2.0),
                Interaction("b", "c", 2.0, 1.0),
                Interaction("a", "c", 3.0, 4.0),
            ],
            path,
        )
        return path

    def test_streaming_flags_parse(self):
        args = build_parser().parse_args([
            "run", "--follow", "--micro-batch", "64", "--max-in-flight", "256",
            "--flush-interval", "0.5", "--idle-timeout", "2",
        ])
        assert args.follow is True
        assert args.micro_batch == 64
        assert args.max_in_flight == 256
        assert args.flush_interval == 0.5
        assert args.idle_timeout == 2.0

    def test_follow_run_with_idle_timeout_terminates(self, tmp_path, capsys):
        path = self._write_feed(tmp_path)
        exit_code = main([
            "run", "--dataset", str(path), "--follow", "--idle-timeout", "0.2",
            "--micro-batch", "2",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "processed 3 interactions" in out
        assert "micro-batched" in out

    def test_micro_batch_run_reports_scheduler_line(self, capsys):
        assert main([
            "run", "--dataset", "taxis", "--scale", "0.02",
            "--micro-batch", "32", "--max-in-flight", "64",
        ]) == 0
        out = capsys.readouterr().out
        assert "micro-batched" in out
        assert "peak in-flight" in out

    def test_checkpoint_and_resume_roundtrip(self, tmp_path, capsys):
        path = self._write_feed(tmp_path)
        checkpoint = tmp_path / "run.ckpt"
        assert main([
            "run", "--dataset", str(path), "--stream", "--micro-batch", "2",
            "--limit", "2", "--checkpoint", str(checkpoint),
        ]) == 0
        assert checkpoint.exists()
        assert main([
            "run", "--dataset", str(path), "--stream", "--micro-batch", "2",
            "--resume-from", str(checkpoint),
        ]) == 0
        out = capsys.readouterr().out
        assert "processed 1 interactions" in out  # only the remainder

    def test_follow_on_preset_is_rejected(self, capsys):
        assert main(["run", "--dataset", "taxis", "--follow"]) == 2
        assert "error" in capsys.readouterr().err

    def test_hot_bytes_flag_requires_sqlite_store(self, capsys, monkeypatch):
        # force the dict default so the test is independent of the
        # REPRO_DEFAULT_STORE CI matrix leg
        monkeypatch.delenv("REPRO_DEFAULT_STORE", raising=False)
        assert main([
            "run", "--dataset", "taxis", "--scale", "0.02", "--hot-bytes", "1024",
        ]) == 2
        assert "error" in capsys.readouterr().err

    def test_hot_bytes_flag_with_sqlite_store(self, capsys):
        assert main([
            "run", "--dataset", "taxis", "--scale", "0.02",
            "--store", "sqlite", "--hot-capacity", "8",
            "--hot-bytes", "4096", "--spill-batch", "4",
        ]) == 0
        assert "store backend 'sqlite'" in capsys.readouterr().out
