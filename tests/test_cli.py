"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.dataset == "taxis"
        assert args.policy == "fifo"

    def test_experiment_choices_cover_all_paper_experiments(self):
        expected = {
            "table6", "table7", "table8", "table9", "table10",
            "figure2", "figure5", "figure6", "figure7", "figure8", "figure9",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "nope"])


class TestCommands:
    def test_policies_command(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "fifo" in out and "proportional-sparse" in out

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "taxis" in out and "bitcoin" in out

    def test_run_on_preset(self, capsys):
        assert main(["run", "--dataset", "taxis", "--scale", "0.02", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "processed" in out
        assert "top 3 buffers" in out

    def test_run_with_budget_policy(self, capsys):
        exit_code = main(
            [
                "run",
                "--dataset", "taxis",
                "--scale", "0.02",
                "--policy", "proportional-budget",
                "--budget", "5",
            ]
        )
        assert exit_code == 0

    def test_run_with_selective_policy(self, capsys):
        exit_code = main(
            [
                "run",
                "--dataset", "taxis",
                "--scale", "0.02",
                "--policy", "proportional-selective",
                "--top", "3",
            ]
        )
        assert exit_code == 0

    def test_run_on_csv_file(self, tmp_path, capsys):
        from repro.datasets.io import write_interactions_csv
        from repro.core.interaction import Interaction

        path = tmp_path / "net.csv"
        write_interactions_csv(
            [Interaction("a", "b", 1.0, 2.0), Interaction("b", "c", 2.0, 1.0)], path
        )
        assert main(["run", "--dataset", str(path)]) == 0

    def test_run_on_missing_csv_reports_error(self, capsys):
        assert main(["run", "--dataset", "/does/not/exist.csv"]) == 2
        assert "error" in capsys.readouterr().err

    def test_experiment_command(self, capsys):
        assert main(["experiment", "table6", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "table6" in out
        assert "bitcoin" in out
