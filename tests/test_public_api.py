"""Tests of the public API surface exposed by ``import repro``."""

from __future__ import annotations

import pytest

import repro


class TestPublicApi:
    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    def test_policy_classes_exported(self):
        policies = [
            repro.NoProvenancePolicy,
            repro.LeastRecentlyBornPolicy,
            repro.MostRecentlyBornPolicy,
            repro.FifoPolicy,
            repro.LifoPolicy,
            repro.ProportionalDensePolicy,
            repro.ProportionalSparsePolicy,
            repro.SelectiveProportionalPolicy,
            repro.GroupedProportionalPolicy,
            repro.WindowedProportionalPolicy,
            repro.BudgetProportionalPolicy,
            repro.ReplayProvenance,
        ]
        for policy_class in policies:
            assert issubclass(policy_class, repro.SelectionPolicy)

    def test_subpackages_reachable(self):
        assert hasattr(repro.datasets, "load_preset")
        assert hasattr(repro.analysis, "top_contributors")
        assert hasattr(repro.metrics, "deep_sizeof")
        assert hasattr(repro.paths, "PathProvenance")
        assert hasattr(repro.lazy, "ReplayProvenance")

    def test_exceptions_form_hierarchy(self):
        for exception in (
            repro.InvalidInteractionError,
            repro.UnknownVertexError,
            repro.PolicyConfigurationError,
            repro.PolicyNotRegisteredError,
            repro.DatasetError,
            repro.MemoryBudgetExceededError,
        ):
            assert issubclass(exception, repro.ReproError)

    def test_registry_covers_exported_policy_names(self):
        names = set(repro.available_policies())
        for expected in ("fifo", "lifo", "lrb", "mrb", "noprov", "proportional-sparse"):
            assert expected in names

    def test_make_policy_round_trip(self):
        policy = repro.make_policy("lifo", track_paths=True)
        assert isinstance(policy, repro.LifoPolicy)


class TestDocstrings:
    """Every public module and class carries a docstring (documentation gate)."""

    def test_package_docstring(self):
        assert repro.__doc__ and "provenance" in repro.__doc__.lower()

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.core.interaction",
            "repro.core.network",
            "repro.core.buffer",
            "repro.core.provenance",
            "repro.core.engine",
            "repro.core.stream",
            "repro.core.serialization",
            "repro.policies.base",
            "repro.policies.no_provenance",
            "repro.policies.generation_time",
            "repro.policies.receipt_order",
            "repro.policies.proportional",
            "repro.policies.registry",
            "repro.scalable.selective",
            "repro.scalable.grouped",
            "repro.scalable.windowing",
            "repro.scalable.budget",
            "repro.paths.tracker",
            "repro.lazy.replay",
            "repro.datasets.schema",
            "repro.datasets.synthetic",
            "repro.datasets.catalog",
            "repro.datasets.io",
            "repro.analysis.distribution",
            "repro.analysis.alerts",
            "repro.analysis.grouping",
            "repro.analysis.contributors",
            "repro.analysis.flow",
            "repro.metrics.memory",
            "repro.metrics.timing",
            "repro.metrics.tables",
            "repro.bench.harness",
            "repro.bench.experiments",
            "repro.cli",
        ],
    )
    def test_module_docstrings(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    def test_policy_class_docstrings(self):
        for policy_class in (
            repro.NoProvenancePolicy,
            repro.FifoPolicy,
            repro.LifoPolicy,
            repro.LeastRecentlyBornPolicy,
            repro.MostRecentlyBornPolicy,
            repro.ProportionalDensePolicy,
            repro.ProportionalSparsePolicy,
            repro.SelectiveProportionalPolicy,
            repro.GroupedProportionalPolicy,
            repro.WindowedProportionalPolicy,
            repro.BudgetProportionalPolicy,
            repro.ReplayProvenance,
        ):
            assert policy_class.__doc__
