"""Integration tests: every paper experiment runs end-to-end at tiny scale.

These tests do not check absolute numbers (that is EXPERIMENTS.md's job);
they check that each experiment produces rows with the right columns, that
infeasible configurations are reported as such, and that the qualitative
relationships the paper highlights hold (e.g. NoProv is the fastest policy,
memory grows with k / C / W).
"""

from __future__ import annotations

import pytest

from repro.bench import experiments
from repro.bench.harness import clear_network_cache

#: A tiny scale so the whole module runs in a few seconds.
SCALE = 0.02
LARGE = ("bitcoin", "ctu", "prosper")
ALL = ("bitcoin", "ctu", "prosper", "flights", "taxis")


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_network_cache()
    yield
    clear_network_cache()


class TestTable6:
    def test_rows_and_columns(self):
        result = experiments.table6_datasets(ALL, scale=SCALE)
        assert len(result.rows) == 5
        for row in result.rows:
            assert {"dataset", "nodes", "interactions", "avg_quantity"} <= set(row)
            assert row["interactions"] > 0


class TestTables7And8:
    def test_policy_comparison_shapes(self):
        results = experiments.policy_comparison(("taxis", "flights"), scale=SCALE)
        # 7 policies x 2 datasets.
        assert len(results) == 14
        table7 = experiments.table7_runtime(results=results)
        table8 = experiments.table8_memory(results=results)
        assert len(table7.rows) == 2
        assert len(table8.rows) == 2
        policy_columns = set(table7.rows[0]) - {"dataset"}
        assert "no-provenance" in policy_columns
        assert "proportional-sparse" in policy_columns

    def test_noprov_is_fastest(self):
        results = experiments.policy_comparison(("taxis",), scale=SCALE)
        by_policy = {r.policy: r for r in results}
        noprov = by_policy["no-provenance"].runtime_seconds
        for label, result in by_policy.items():
            if label != "no-provenance" and result.feasible:
                assert noprov <= result.runtime_seconds * 1.5

    def test_noprov_uses_least_memory(self):
        results = experiments.policy_comparison(("taxis",), scale=SCALE)
        by_policy = {r.policy: r for r in results}
        noprov = by_policy["no-provenance"].memory_bytes
        for label, result in by_policy.items():
            if label != "no-provenance" and result.feasible:
                assert noprov <= result.memory_bytes

    def test_memory_ceiling_reports_infeasible(self):
        results = experiments.policy_comparison(
            ("taxis",), scale=SCALE, memory_ceiling_bytes=1024
        )
        assert any(not result.feasible for result in results)
        table7 = experiments.table7_runtime(results=results)
        assert any(value is None for value in table7.rows[0].values() if value != "taxis")


class TestFigure5:
    def test_runtime_and_memory_grow_with_k(self):
        result = experiments.figure5_selective_grouped(
            ("prosper",), k_values=(2, 30), scale=SCALE
        )
        assert len(result.rows) == 2
        small_k, large_k = result.rows
        assert large_k["selective_memory_mb"] >= small_k["selective_memory_mb"]
        assert large_k["grouped_memory_mb"] >= small_k["grouped_memory_mb"]


class TestFigure6:
    def test_cumulative_series_monotone(self):
        result = experiments.figure6_cumulative(("prosper",), num_checkpoints=4, scale=SCALE)
        series = next(iter(result.series.values()))
        assert len(series) >= 2
        seconds = [row["cumulative_s"] for row in series]
        assert seconds == sorted(seconds)
        interactions = [row["interactions"] for row in series]
        assert interactions == sorted(interactions)


class TestFigure7:
    def test_memory_grows_with_window(self):
        result = experiments.figure7_windowing(
            ("prosper",), window_sizes=(50, 400), scale=SCALE
        )
        small_w, large_w = result.rows
        assert large_w["memory_mb"] >= small_w["memory_mb"] * 0.5
        assert small_w["resets"] > large_w["resets"]


class TestFigure8AndTable9:
    def test_memory_grows_with_budget(self):
        result = experiments.figure8_budget(("prosper",), budgets=(2, 100), scale=SCALE)
        small_c, large_c = result.rows
        assert large_c["memory_mb"] >= small_c["memory_mb"]

    def test_shrinks_decrease_with_budget(self):
        result = experiments.table9_shrinking(("prosper",), budgets=(2, 100), scale=SCALE)
        small_c, large_c = result.rows
        assert small_c["avg_shrinks"] >= large_c["avg_shrinks"]
        assert 0 <= small_c["pct_vertices_shrunk"] <= 100
        assert 0 <= large_c["pct_vertices_shrunk"] <= 100


class TestTable10:
    def test_path_tracking_overhead_columns(self):
        result = experiments.table10_paths(("taxis",), scale=SCALE)
        row = result.rows[0]
        assert row["total_mem_mb"] >= row["mem_entries_mb"]
        assert row["mem_paths_mb"] >= 0
        assert row["avg_path_length"] >= 0
        assert row["runtime_s"] > 0


class TestFigure2:
    def test_accumulation_rows(self):
        result = experiments.figure2_accumulation("taxis", scale=SCALE, max_points=10)
        assert len(result.rows) >= 1
        for row in result.rows:
            assert row["buffered_quantity"] >= 0
            assert 0 <= row["top_origin_share"] <= 1 + 1e-9
        summary = result.series["summary"][0]
        assert summary["deliveries"] >= len(result.rows)


class TestFigure9:
    def test_alert_summary(self):
        result = experiments.figure9_alerts("bitcoin", scale=SCALE)
        summary = result.series["summary"][0]
        assert summary["alerts"] == summary["few_contributor_alerts"] + summary[
            "many_contributor_alerts"
        ]
        assert summary["quantity_threshold"] > 0


class TestAblations:
    def test_buffer_structure_ablation(self):
        result = experiments.ablation_buffer_structures("taxis", scale=SCALE)
        assert len(result.rows) == 4
        assert all(row["runtime_s"] > 0 for row in result.rows)

    def test_dense_vs_sparse_ablation(self):
        result = experiments.ablation_dense_vs_sparse(("taxis",), scale=SCALE)
        row = result.rows[0]
        assert row["dense_runtime_s"] > 0
        assert row["sparse_runtime_s"] > 0

    def test_budget_criteria_ablation(self):
        result = experiments.ablation_budget_policies("taxis", capacity=5, scale=SCALE)
        assert len(result.rows) == 2
        for row in result.rows:
            assert 0 <= row["avg_known_fraction"] <= 1 + 1e-9
