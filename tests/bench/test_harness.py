"""Unit tests for the benchmark harness."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    ExperimentResult,
    PolicyRunResult,
    clear_network_cache,
    load_network_cached,
    run_policy,
)
from repro.policies.proportional import ProportionalSparsePolicy
from repro.policies.receipt_order import FifoPolicy


class TestNetworkCache:
    def test_cache_returns_same_object(self):
        clear_network_cache()
        first = load_network_cached("taxis", scale=0.02)
        second = load_network_cached("taxis", scale=0.02)
        assert first is second

    def test_cache_distinguishes_scales(self):
        clear_network_cache()
        small = load_network_cached("taxis", scale=0.02)
        larger = load_network_cached("taxis", scale=0.04)
        assert small is not larger
        assert larger.num_interactions > small.num_interactions

    def test_clear_cache(self):
        first = load_network_cached("taxis", scale=0.02)
        clear_network_cache()
        second = load_network_cached("taxis", scale=0.02)
        assert first is not second


class TestRunPolicy:
    def test_feasible_run_collects_metrics(self, small_network):
        result = run_policy(small_network, FifoPolicy())
        assert result.feasible
        assert result.runtime_seconds is not None and result.runtime_seconds >= 0
        assert result.memory_bytes > 0
        assert result.interactions == small_network.num_interactions
        assert result.entry_count > 0

    def test_memory_ceiling_marks_infeasible(self, small_network):
        result = run_policy(
            small_network,
            ProportionalSparsePolicy(),
            memory_ceiling_bytes=1,
            memory_check_every=10,
        )
        assert not result.feasible
        assert result.runtime_seconds is None
        assert "exceeds" in result.note

    def test_as_row_marks_infeasible_with_none(self, small_network):
        result = run_policy(
            small_network, FifoPolicy(), memory_ceiling_bytes=1, memory_check_every=10
        )
        row = result.as_row()
        assert row["runtime_s"] is None
        assert row["memory_bytes"] is None

    def test_as_row_feasible(self, small_network):
        row = run_policy(small_network, FifoPolicy()).as_row()
        assert row["dataset"] == "small"
        assert row["runtime_s"] is not None

    def test_limit_restricts_interactions(self, small_network):
        result = run_policy(small_network, FifoPolicy(), limit=50)
        assert result.interactions == 50

    def test_sampling_collects_series(self, small_network):
        result = run_policy(small_network, FifoPolicy(), sample_every=100)
        assert result.statistics is not None
        assert len(result.statistics.samples) >= 1


class TestExperimentResult:
    def test_to_text_renders_rows_and_series(self):
        result = ExperimentResult(
            experiment_id="tableX",
            title="Example",
            rows=[{"dataset": "taxis", "runtime_s": 0.5}],
            series={"extra": [{"k": 1, "value": 2.0}]},
        )
        text = result.to_text()
        assert "tableX: Example" in text
        assert "taxis" in text
        assert "extra" in text
        assert "value" in text

    def test_policy_run_result_defaults(self):
        result = PolicyRunResult(dataset="d", policy="p", feasible=True)
        assert result.interactions == 0
        assert result.note == ""
