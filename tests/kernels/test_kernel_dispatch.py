"""Backend resolution, fallback and verification gates of the kernel seam.

Compiled backends are a pure acceleration: every resolution outcome —
numba, cc, or nothing at all — must leave results bit-identical, and every
failure (missing compiler, broken build, bit-identity mismatch, explicit
``REPRO_JIT=0``) must demote silently to the next tier rather than error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import kernels
from repro.core.kernels import _reference, cc_backend, numba_backend
from repro.datasets.catalog import load_preset
from repro.runtime import RunConfig, Runner


@pytest.fixture(autouse=True)
def fresh_resolution():
    """Each test resolves from scratch and leaves no cached monkeypatched
    handles behind (the .so cache makes re-resolution cheap)."""
    kernels.reset()
    yield
    kernels.reset()


@pytest.fixture(scope="module")
def network():
    return load_preset("taxis", scale=0.05)


def snapshot_dict(result):
    snapshot = result.snapshot()
    return {vertex: snapshot[vertex].as_dict() for vertex in snapshot}


def fused_run(network, policy_name):
    return Runner(RunConfig(
        dataset=network, policy=policy_name, columnar=True, kernel="fused"
    )).run()


# ----------------------------------------------------------------------
# resolution
# ----------------------------------------------------------------------
def test_unknown_kernel_name_raises():
    with pytest.raises(KeyError):
        kernels.get_kernel("bogus")


def test_resolution_is_cached(monkeypatch):
    first = kernels.get_kernel("noprov")
    calls = []
    monkeypatch.setattr(
        kernels, "_build", lambda name: calls.append(name)
    )
    assert kernels.get_kernel("noprov") is first
    assert calls == []


def test_compile_seconds_accumulates():
    before = kernels.compile_seconds()
    handle = kernels.get_kernel("noprov")
    if handle is not None:
        assert kernels.compile_seconds() > before


def test_backend_of_labels():
    backend = kernels.backend_of("noprov")
    assert backend in (None, "numba", "cc")


# ----------------------------------------------------------------------
# the REPRO_JIT escape hatch
# ----------------------------------------------------------------------
@pytest.mark.parametrize("value", ["0", "false", "off", "no", " OFF "])
def test_repro_jit_disables_compiled_backends(monkeypatch, value):
    monkeypatch.setenv("REPRO_JIT", value)
    kernels.reset()
    assert not kernels.jit_enabled()
    assert kernels.get_kernel("noprov") is None
    assert kernels.get_kernel("proportional-dense") is None


def test_repro_jit_run_is_identical(monkeypatch, network):
    compiled = {
        name: fused_run(network, name)
        for name in ("noprov", "proportional-dense")
    }
    monkeypatch.setenv("REPRO_JIT", "0")
    kernels.reset()
    for name, reference in compiled.items():
        pure = fused_run(network, name)
        assert pure.kernel_stats["backend"] == "numpy"
        assert pure.kernel_stats["compile_seconds"] == 0.0
        assert snapshot_dict(reference) == snapshot_dict(pure)
        assert dict(reference.buffer_totals()) == dict(pure.buffer_totals())


# ----------------------------------------------------------------------
# backend fallback ladder
# ----------------------------------------------------------------------
def test_numba_missing_falls_back_to_cc(monkeypatch):
    monkeypatch.setenv("REPRO_JIT", "1")  # the ladder, not the escape hatch
    monkeypatch.setattr(numba_backend, "available", lambda: False)
    handle = kernels.get_kernel("noprov")
    if cc_backend.available():
        assert handle is not None and handle.backend == "cc"
    else:
        assert handle is None


def test_no_backends_fall_back_to_pure(monkeypatch, network):
    monkeypatch.setattr(numba_backend, "available", lambda: False)
    monkeypatch.setattr(cc_backend, "available", lambda: False)
    assert kernels.get_kernel("noprov") is None
    result = fused_run(network, "noprov")
    assert result.kernel_stats["mode"] == "fused"
    assert result.kernel_stats["backend"] == "numpy"


def test_build_failure_demotes_and_logs(monkeypatch, network):
    def broken_build(name):
        raise RuntimeError("compiler exploded")

    monkeypatch.setenv("REPRO_JIT", "1")
    monkeypatch.setattr(numba_backend, "available", lambda: True)
    monkeypatch.setattr(numba_backend, "build", broken_build)
    monkeypatch.setattr(cc_backend, "available", lambda: True)
    monkeypatch.setattr(cc_backend, "build", broken_build)
    assert kernels.get_kernel("noprov") is None
    # Both ladder rungs were tried and both rejections were logged.
    assert "numba:noprov" in kernels.backend_failures()
    assert "cc:noprov" in kernels.backend_failures()
    assert "compiler exploded" in kernels.backend_failures()["cc:noprov"]
    # The run still succeeds on the pure fused tier.
    result = fused_run(network, "noprov")
    assert result.kernel_stats["backend"] == "numpy"


def test_bit_identity_gate_rejects_wrong_kernels(monkeypatch):
    """A backend whose output deviates from the pure reference never ships."""

    def wrong_noprov(src, dst, qty, buffers, generated, gen_order):
        # Plausible but wrong: drops the generated-quantity bookkeeping.
        for i in range(len(src)):
            buffers[dst[i]] += qty[i]
            buffers[src[i]] = max(0.0, buffers[src[i]] - qty[i])
        return 0

    monkeypatch.setenv("REPRO_JIT", "1")
    monkeypatch.setattr(numba_backend, "available", lambda: False)
    monkeypatch.setattr(cc_backend, "available", lambda: True)
    monkeypatch.setattr(cc_backend, "build", lambda name: wrong_noprov)
    assert kernels.get_kernel("noprov") is None
    assert "cc:noprov" in kernels.backend_failures()


def test_numba_serves_propdense_when_installed():
    """The arena layout fits nopython mode: with numba installed, the
    proportional-dense kernel must resolve to the numba backend (the old
    pointer-table demotion to cc is gone) and pass the bit-identity gate
    with no failure logged."""
    if not numba_backend.available():
        pytest.skip("numba not installed")
    fn = numba_backend.build("proportional-dense")
    _reference.verify("proportional-dense", fn)
    assert kernels.backend_of("proportional-dense") == "numba"
    assert "numba:proportional-dense" not in kernels.backend_failures()


# ----------------------------------------------------------------------
# reference implementations agree with the policies
# ----------------------------------------------------------------------
def test_reference_verify_accepts_references():
    _reference.verify("noprov", _reference.noprov_reference)
    _reference.verify("proportional-dense", _reference.propdense_reference)


def test_resolved_backends_verified_on_this_host():
    """Whatever resolves here passed the build-time bit-identity gate."""
    for name in kernels.KERNEL_NAMES:
        handle = kernels.get_kernel(name)
        if handle is not None:
            _reference.verify(name, handle.fn)
