"""Acceptance suite of the fused kernel tier: bit-identical to batched runs.

The equivalence bar of the fused-kernel refactor: a run driven through
whole-run kernels (``kernel="fused"`` — compiled backend when one resolves,
pure-numpy fused otherwise) must produce origin sets, buffer totals,
entry-count samples and peaks identical (float for float, position for
position) to the batched columnar run AND the per-interaction object run on
the same stream, for EVERY registered policy, on the dict store and on the
dense store, across eager, streaming, sharded and resume-from-checkpoint
drive paths.  Chunk boundaries exist only at exact sample/peak/checkpoint
clip offsets, which is what keeps the statistics identical.
"""

from __future__ import annotations

import pytest

from repro.datasets.catalog import load_preset
from repro.datasets.io import write_interactions_csv
from repro.policies.registry import available_policies
from repro.runtime import RunConfig, Runner
from repro.stores import StoreSpec

#: Structural parameters for the policies whose constructors require them.
STRUCTURAL_OPTIONS = {
    "proportional-budget": {"capacity": 20},
    "proportional-windowed": {"window": 150},
    "proportional-time-windowed": {"window": 50.0},
}

#: The dense backend applies to fixed-dimension vector roles and falls back
#: to dicts elsewhere, so it is safe for every policy; on proportional-dense
#: it is the layout the compiled kernel's pointer table indexes into.
STORES = {
    "dict": None,
    "dense": StoreSpec("dense"),
}


@pytest.fixture(scope="module")
def network():
    # Crosses the 1024-interaction peak-check boundary, so fused runs must
    # clip there to match batched peak statistics.
    return load_preset("taxis", scale=0.05)


def snapshot_dict(result):
    snapshot = result.snapshot()
    return {vertex: snapshot[vertex].as_dict() for vertex in snapshot}


def run_config(network, policy_name, store, **extra):
    return RunConfig(
        dataset=network,
        policy=policy_name,
        policy_options=STRUCTURAL_OPTIONS.get(policy_name, {}),
        store=STORES[store],
        **extra,
    )


def assert_equivalent(reference, fused, *, check_samples=True):
    assert reference.statistics.interactions == fused.statistics.interactions
    assert snapshot_dict(reference) == snapshot_dict(fused)
    assert dict(reference.buffer_totals()) == dict(fused.buffer_totals())
    assert (
        reference.statistics.final_entry_count
        == fused.statistics.final_entry_count
    )
    if check_samples:
        assert reference.statistics.samples == fused.statistics.samples
        assert (
            reference.statistics.sampled_entry_counts
            == fused.statistics.sampled_entry_counts
        )
        assert (
            reference.statistics.peak_entry_count
            == fused.statistics.peak_entry_count
        )


# ----------------------------------------------------------------------
# eager: fused == batched == per-interaction, every policy x both stores
# ----------------------------------------------------------------------
@pytest.mark.parametrize("store", sorted(STORES))
@pytest.mark.parametrize("policy_name", available_policies())
def test_eager_fused_identical_to_batched_and_object(network, policy_name, store):
    object_run = Runner(run_config(
        network, policy_name, store, columnar=False, sample_every=97
    )).run()
    batched = Runner(run_config(
        network, policy_name, store, columnar=True, kernel="batch",
        sample_every=97,
    )).run()
    fused = Runner(run_config(
        network, policy_name, store, columnar=True, kernel="fused",
        sample_every=97,
    )).run()
    assert_equivalent(object_run, fused)
    assert_equivalent(batched, fused)
    assert fused.kernel_stats is not None
    assert fused.kernel_stats["mode"] == "fused"
    assert batched.kernel_stats["mode"] == "batch"
    assert object_run.kernel_stats is None


@pytest.mark.parametrize("policy_name", available_policies())
def test_peak_tracking_clips_match_batched(network, policy_name):
    """With sampling off, peaks are probed at the 1024/2048/... doubling
    positions; fused runs must cut chunks there to see identical peaks."""
    batched = Runner(run_config(
        network, policy_name, "dict", columnar=True, kernel="batch"
    )).run()
    fused = Runner(run_config(
        network, policy_name, "dict", columnar=True, kernel="fused"
    )).run()
    assert_equivalent(batched, fused)
    assert (
        batched.statistics.peak_entry_count == fused.statistics.peak_entry_count
    )
    # The whole run is a handful of peak-clip spans, not per-4096 batches.
    assert fused.kernel_stats["chunks"] <= 4


# ----------------------------------------------------------------------
# streaming: the scheduler path flushes through process_run
# ----------------------------------------------------------------------
@pytest.mark.parametrize("store", sorted(STORES))
@pytest.mark.parametrize("policy_name", available_policies())
def test_streaming_fused_identical_to_batched(network, policy_name, store):
    batched = Runner(run_config(
        network, policy_name, store, columnar=True, kernel="batch",
        micro_batch=61,
    )).run()
    fused = Runner(run_config(
        network, policy_name, store, columnar=True, kernel="fused",
        micro_batch=61,
    )).run()
    assert_equivalent(batched, fused)
    assert fused.kernel_stats["mode"] == "fused"
    assert fused.columnar_stats["mode"] == "stream"


# ----------------------------------------------------------------------
# sharded: every shard engine routes through the fused tier
# ----------------------------------------------------------------------
@pytest.mark.parametrize("store", sorted(STORES))
@pytest.mark.parametrize("policy_name", available_policies())
def test_sharded_fused_identical_to_batched(network, policy_name, store):
    batched = Runner(run_config(
        network, policy_name, store, columnar=True, kernel="batch",
        shards=3, shard_by="hash",
    )).run()
    fused = Runner(run_config(
        network, policy_name, store, columnar=True, kernel="fused",
        shards=3, shard_by="hash",
    )).run()
    assert_equivalent(batched, fused, check_samples=False)
    assert fused.kernel_stats is not None
    assert fused.kernel_stats["mode"] == "fused"
    # Merged accounting: chunks summed over shards.
    assert fused.kernel_stats["chunks"] >= 3


def test_shm_fabric_fused_identical_to_pickled(network):
    """The zero-copy fabric workers honour kernel= and report stats back."""
    for policy_name in ("noprov", "proportional-dense"):
        pickled = Runner(run_config(
            network, policy_name, "dense", columnar=True, kernel="fused",
            shards=2, shard_by="hash", shard_executor="processes",
        )).run()
        fabric = Runner(run_config(
            network, policy_name, "dense", columnar=True, kernel="fused",
            shards=2, shard_by="hash", shard_executor="processes",
            shared_memory=True,
        )).run()
        assert_equivalent(pickled, fabric, check_samples=False)
        assert fabric.kernel_stats is not None
        assert fabric.kernel_stats["mode"] == "fused"


# ----------------------------------------------------------------------
# resume-from-checkpoint: fused runs checkpoint/resume bit-identically
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy_name", available_policies())
def test_fused_resume_identical_to_uninterrupted(network, policy_name, tmp_path):
    checkpoint = tmp_path / "fused.ckpt"
    uninterrupted = Runner(run_config(
        network, policy_name, "dict", columnar=True, kernel="fused",
        micro_batch=64,
    )).run()
    Runner(run_config(
        network, policy_name, "dict", columnar=True, kernel="fused",
        micro_batch=64, limit=network.num_interactions // 2,
        checkpoint_path=checkpoint,
    )).run()
    resumed = Runner(run_config(
        network, policy_name, "dict", columnar=True, kernel="fused",
        micro_batch=64, resume_from=checkpoint,
    )).run()
    assert snapshot_dict(uninterrupted) == snapshot_dict(resumed)
    assert dict(uninterrupted.buffer_totals()) == dict(resumed.buffer_totals())


def test_fused_resume_crosses_kernel_modes(network, tmp_path):
    """A checkpoint written by a fused run resumes identically under batch
    mode and vice versa — kernel routing is not part of the state."""
    checkpoint = tmp_path / "cross.ckpt"
    for first, second in (("fused", "batch"), ("batch", "fused")):
        uninterrupted = Runner(run_config(
            network, "proportional-dense", "dense", columnar=True,
            kernel=second, micro_batch=64,
        )).run()
        Runner(run_config(
            network, "proportional-dense", "dense", columnar=True,
            kernel=first, micro_batch=64,
            limit=network.num_interactions // 2, checkpoint_path=checkpoint,
        )).run()
        resumed = Runner(run_config(
            network, "proportional-dense", "dense", columnar=True,
            kernel=second, micro_batch=64, resume_from=checkpoint,
        )).run()
        assert snapshot_dict(uninterrupted) == snapshot_dict(resumed)
        assert dict(uninterrupted.buffer_totals()) == dict(resumed.buffer_totals())


def test_fused_periodic_checkpoints_clip_exactly(network, tmp_path):
    """checkpoint_every forces chunk boundaries at exact multiples, so the
    mid-run save observes the same prefix state as a batched run's save."""
    from repro.core.checkpoint import load_engine

    path = tmp_path / "stream.csv"
    write_interactions_csv(network.interactions, path)
    states = {}
    for mode in ("batch", "fused"):
        checkpoint = tmp_path / f"{mode}.ckpt"
        Runner(RunConfig(
            dataset=str(path), vertex_type=int, policy="noprov",
            columnar=True, kernel=mode, checkpoint_every=100,
            checkpoint_path=checkpoint, limit=150, batch_size=64,
        )).run()
        restored = load_engine(checkpoint)
        assert restored.interactions_processed == 150
        states[mode] = {
            vertex: restored.policy.buffer_total(vertex)
            for vertex in restored.policy.tracked_vertices()
        }
    assert states["batch"] == states["fused"]


# ----------------------------------------------------------------------
# kernel routing knobs and reporting
# ----------------------------------------------------------------------
def test_auto_kernel_is_fused(network):
    """kernel='auto' (the default) routes columnar runs through the fused
    tier — and stays bit-identical to an explicit batch run."""
    auto = Runner(run_config(network, "noprov", "dict", columnar=True)).run()
    batched = Runner(run_config(
        network, "noprov", "dict", columnar=True, kernel="batch"
    )).run()
    assert auto.kernel_stats["mode"] == "fused"
    assert_equivalent(batched, auto)


def test_kernel_stats_shape(network):
    fused = Runner(run_config(
        network, "noprov", "dict", columnar=True, kernel="fused",
        sample_every=97,
    )).run()
    stats = fused.kernel_stats
    assert set(stats) == {"mode", "backend", "chunks", "compile_seconds"}
    assert stats["backend"] in ("numba", "cc", "numpy")
    # sample_every=97 over the whole run forces one clip per sample point.
    assert stats["chunks"] >= 10
    assert stats["compile_seconds"] >= 0.0
    payload = fused.to_dict()["kernel"]
    assert payload["enabled"] is True
    assert payload["mode"] == "fused"


def test_sharded_kernel_stats_merge_and_timing_rows(network):
    fused = Runner(run_config(
        network, "noprov", "dict", columnar=True, kernel="fused",
        shards=3, shard_by="hash",
    )).run()
    merged = fused.kernel_stats
    rows = fused.to_dict()["sharding"]["shards"]
    per_shard = [row["kernel"] for row in rows]
    assert merged["chunks"] == sum(stats["chunks"] for stats in per_shard)
    assert all(stats["mode"] == "fused" for stats in per_shard)


def test_object_policies_fuse_through_process_run(network):
    """Policies without a columnar kernel (here: state spilled to sqlite,
    carried by the materialising adapter) still run whole clip spans and
    report the 'object' backend."""
    config = RunConfig(
        dataset=network, policy="fifo",
        store=StoreSpec("sqlite", {"hot_capacity": 8}),
        columnar=True, kernel="fused",
    )
    fused = Runner(config).run()
    assert fused.kernel_stats["mode"] == "fused"
    assert fused.kernel_stats["backend"] == "object"


def test_fused_respects_subclass_process_block_overrides(network):
    """A subclass shipping its own process_block kernel is never bypassed
    by the inherited compiled whole-run kernel."""
    from repro.policies.no_provenance import NoProvenancePolicy

    calls = []

    class CountingNoProv(NoProvenancePolicy):
        def process_block(self, block):
            calls.append(len(block))
            super().process_block(block)

    policy = CountingNoProv()
    result = Runner(RunConfig(
        dataset=network, policy=policy, columnar=True, kernel="fused"
    )).run()
    assert sum(calls) == network.num_interactions
    reference = Runner(run_config(network, "noprov", "dict", columnar=True)).run()
    assert dict(reference.buffer_totals()) == dict(result.buffer_totals())


def test_kernel_config_validation(network):
    from repro.exceptions import RunConfigurationError

    with pytest.raises(RunConfigurationError):
        RunConfig(dataset=network, policy="noprov", kernel="turbo")
    with pytest.raises(RunConfigurationError):
        RunConfig(dataset=network, policy="noprov", kernel="fused", columnar=False)
    # batch kernel with columnar=False is fine (it is the object path).
    RunConfig(dataset=network, policy="noprov", kernel="batch", columnar=False)


def test_engine_rejects_unknown_kernel(network):
    from repro.core.engine import ProvenanceEngine
    from repro.policies.registry import make_policy

    policy = make_policy("noprov")
    policy.reset(network.vertices)
    with pytest.raises(ValueError):
        ProvenanceEngine(policy).run(network.to_block(), kernel="turbo")


def test_cli_kernel_flag(capsys):
    from repro.cli import main

    assert main([
        "run", "--dataset", "taxis", "--scale", "0.02",
        "--policy", "noprov", "--kernel", "fused",
    ]) == 0
    out = capsys.readouterr().out
    assert "kernel fused: backend" in out
    assert main([
        "run", "--dataset", "taxis", "--scale", "0.02",
        "--policy", "noprov", "--kernel", "batch",
    ]) == 0
    assert "kernel batch" in capsys.readouterr().out
