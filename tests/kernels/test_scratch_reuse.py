"""Scratch-buffer reuse: the dense split path stops allocating per chunk.

The proportional split stages its moved amounts in one reusable row —
store-owned on :class:`DenseNumpyStore`, policy-owned elsewhere — so a
whole run touches a single scratch allocation no matter how many chunks
or interactions it processes.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.datasets.catalog import load_preset
from repro.policies.proportional import ProportionalDensePolicy
from repro.stores import StoreSpec
from repro.stores.dense import DenseNumpyStore


@pytest.fixture(scope="module")
def network():
    return load_preset("taxis", scale=0.05)


def test_dense_store_scratch_row_is_reused():
    store = DenseNumpyStore(8)
    scratch = store.scratch_row()
    assert scratch.shape == (8,)
    assert scratch.dtype == np.float64
    assert store.scratch_row() is scratch
    store.clear()
    assert store.scratch_row() is not scratch


def test_dense_store_pickle_drops_scratch():
    store = DenseNumpyStore(4)
    store.scratch_row()[:] = 123.0
    clone = pickle.loads(pickle.dumps(store))
    assert clone._scratch is None
    # Two pickles of stores with differently-garbaged scratch are identical.
    other = DenseNumpyStore(4)
    other.scratch_row()[:] = -7.0
    assert pickle.dumps(store) == pickle.dumps(other)


@pytest.mark.parametrize("store_spec", [None, StoreSpec("dense")],
                         ids=["dict-store", "dense-store"])
def test_no_per_chunk_scratch_growth(network, store_spec):
    """Processing the run in many chunks reuses ONE scratch row throughout:
    the split path performs no per-chunk (let alone per-interaction)
    scratch allocation."""
    policy = ProportionalDensePolicy(store=store_spec)
    policy.reset(network.vertices)

    scratch_ids = set()
    interactions = network.interactions
    for start in range(0, len(interactions), 64):
        policy.process_many(interactions[start:start + 64])
        scratch_ids.add(id(policy._split_scratch()))
    assert len(scratch_ids) == 1

    if store_spec is not None:
        # Store-owned on the dense backend: no shadow policy copy exists.
        assert policy._split_scratch() is policy._vectors.scratch_row()
        assert policy._moved_scratch is None


def test_policy_scratch_survives_but_never_pickles(network):
    policy = ProportionalDensePolicy(store=None)
    policy.reset(network.vertices)
    policy.process_many(network.interactions[:200])
    assert policy._moved_scratch is not None
    state = policy.__getstate__()
    assert state["_moved_scratch"] is None
    clone = pickle.loads(pickle.dumps(policy))
    assert clone._moved_scratch is None
    # The clone keeps producing identical results after rehydration.
    clone.process_many(network.interactions[200:400])
    policy.process_many(network.interactions[200:400])
    for vertex in policy.tracked_vertices():
        assert policy.buffer_total(vertex) == clone.buffer_total(vertex)


def test_scratch_never_aliases_stored_rows(network):
    policy = ProportionalDensePolicy(store=StoreSpec("dense"))
    policy.reset(network.vertices)
    policy.process_many(network.interactions[:500])
    scratch = policy._split_scratch()
    store = policy._vectors
    for _, row in store.items():
        assert row.base is not scratch
        assert not np.shares_memory(row, scratch)
